"""Vector-clock happens-before race detection over the fork/join task graph.

The paper's safety argument (§3) rests on two structural properties of data
inside WARD regions: no cross-thread read-after-write (condition 1) and
order-insensitive ("apathetic") write-after-write (condition 2).  This module
checks those properties *semantically*, at task granularity, instead of the
hardware-thread spot checks :class:`~repro.verify.ward_checker.WardChecker`
performs:

* Every task carries a vector clock over task ids, maintained FastTrack-style
  at the runtime's fork/join hooks: a fork copies the parent's clock into each
  child (plus a fresh component for the child) and bumps the parent; the join
  of the last outstanding child merges all children back into the parent and
  bumps it again.  Two accesses are *concurrent* iff neither task's clock
  component at its access is covered by the other task's clock.
* The detector keeps its own **logical** region table, fed by the runtime at
  the same mark/unmark sites the hardware uses under the FULL marking policy
  — page regions at allocation, construct regions over library-primitive
  outputs, both dropped at forks/joins.  Classification is therefore
  protocol-independent: the same program run under MESI and WARDen yields the
  same verdicts.  Logical construct regions span the whole array (the
  program-level WARD claim); the hardware's block-rounding is a conservative
  *restriction* of that span, so any access the hardware relaxes is inside
  the logical region too.

Every concurrent conflicting pair is classified:

=============================  ========================================
pair                           verdict
=============================  ========================================
read/write (either order)      **race** (breaks WARD condition 1 when a
                               shared region epoch covers it; breaks
                               determinacy everywhere else)
write/write in a shared
region epoch                   **benign WAW** (condition 2 — recorded,
                               counted, never raised)
write/write outside            **race**
RMW/RMW                        **atomic** (commutative update; counted)
=============================  ========================================

Races surface as :class:`repro.common.errors.RaceError` with a source-level
diagnostic: benchmark, both task paths in the spawn tree (``root.1.0`` is the
first child of the second child of the root), per-task op indices, hardware
threads, and the region ids involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import RaceError
from repro.common.types import AccessType
from repro.coherence.regions import RegionTable


# ----------------------------------------------------------------------
# Vector-clock primitives (dict-backed, sparse over task ids)
# ----------------------------------------------------------------------

def vc_join(into: Dict[int, int], other: Dict[int, int]) -> Dict[int, int]:
    """Pointwise max of two clocks, merged *into* the first (returned)."""
    get = into.get
    for tid, clock in other.items():
        if get(tid, 0) < clock:
            into[tid] = clock
    return into


def happens_before(epoch: Tuple[int, int], vc: Dict[int, int]) -> bool:
    """True when the access epoch ``(clock, task_id)`` is ordered before
    every current/future access of a task whose clock is ``vc``."""
    clock, tid = epoch
    return clock <= vc.get(tid, 0)


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AccessInfo:
    """One side of a reported pair, with its source-level coordinates."""

    task_id: int
    task_path: str
    thread: int
    op_index: int
    atype: str
    region_ids: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"{self.atype} by task {self.task_path} "
            f"(op {self.op_index}, thread {self.thread})"
        )


@dataclass(frozen=True)
class RaceFinding:
    """One classified concurrent pair (race or benign WAW)."""

    kind: str  #: ``raw`` | ``war`` | ``waw`` | ``benign-waw`` | ``atomic``
    addr: int
    prior: AccessInfo
    current: AccessInfo
    #: region epochs covering BOTH accesses (the WARD pairing, if any)
    region_ids: Tuple[int, ...]
    benchmark: str = ""

    @property
    def is_race(self) -> bool:
        return self.kind in ("raw", "war", "waw")

    def describe(self) -> str:
        where = (
            f"inside WARD region {', '.join(map(str, self.region_ids))}"
            if self.region_ids
            else "outside any WARD region"
        )
        bench = f" [benchmark {self.benchmark}]" if self.benchmark else ""
        return (
            f"{self.kind} on address {self.addr:#x}: {self.prior.describe()} "
            f"is concurrent with {self.current.describe()} {where}{bench}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "addr": self.addr,
            "benchmark": self.benchmark,
            "region_ids": list(self.region_ids),
            "prior": vars(self.prior) | {"region_ids": list(self.prior.region_ids)},
            "current": vars(self.current)
            | {"region_ids": list(self.current.region_ids)},
        }


@dataclass
class RegionLog:
    """The in-region access stream of one region epoch (oracle replay)."""

    region_id: int
    start: int
    end: int
    #: ``(atype_name, task_id, addr)`` in observation order
    entries: List[Tuple[str, int, int]] = field(default_factory=list)
    truncated: bool = False


class _TaskState:
    __slots__ = ("task_id", "path", "vc", "ops")

    def __init__(self, task_id: int, path: str, vc: Dict[int, int]) -> None:
        self.task_id = task_id
        self.path = path
        self.vc = vc
        self.ops = 0


# ----------------------------------------------------------------------
# The detector
# ----------------------------------------------------------------------

class RaceDetector:
    """Happens-before determinacy-race detector for fork/join programs.

    Driven by :class:`repro.hlpl.runtime.Runtime` through five hooks —
    :meth:`on_root`, :meth:`on_fork`, :meth:`on_join`, :meth:`region_begin` /
    :meth:`region_end`, and :meth:`on_access` — or directly by unit tests.

    With ``raise_on_race=True`` (default) the first true race raises
    :class:`RaceError`; otherwise findings accumulate in :attr:`races`.
    ``record_regions=True`` additionally logs every in-region access per
    region epoch (see :class:`RegionLog`) for value-level oracle replay
    through :class:`~repro.verify.coherence_checker.WardMemoryModel`; logs
    longer than ``max_region_log`` entries are truncated and flagged.
    ``sink`` mirrors every finding to an obs-bus sink as
    :class:`repro.obs.tracer.RaceEvent`.
    """

    def __init__(
        self,
        benchmark: str = "",
        raise_on_race: bool = True,
        sink=None,
        record_regions: bool = False,
        max_region_log: int = 200_000,
    ) -> None:
        self.benchmark = benchmark
        self.raise_on_race = raise_on_race
        self.sink = sink
        self.record_regions = record_regions
        self.max_region_log = max_region_log
        #: logical (software-side) region table — unbounded on purpose
        self.regions = RegionTable(capacity=None)
        self._tasks: Dict[int, _TaskState] = {}
        #: addr -> (clock, task_id, AccessInfo) of the last write
        self._writes: Dict[int, Tuple[int, int, AccessInfo]] = {}
        #: addr -> {task_id: (clock, AccessInfo)} reads since the last write
        self._reads: Dict[int, Dict[int, Tuple[int, AccessInfo]]] = {}
        self.races: List[RaceFinding] = []
        self.benign_waws: List[RaceFinding] = []
        self.atomic_updates = 0
        self.checked_accesses = 0
        self.tasks_tracked = 0
        self.region_epochs = 0
        self._open_logs: Dict[int, RegionLog] = {}
        self.region_logs: List[RegionLog] = []

    # ------------------------------------------------------------------
    # Spawn-tree hooks
    # ------------------------------------------------------------------
    def on_root(self, task) -> None:
        """Register the root task (clock ``{root: 1}``, path ``root``)."""
        self._tasks[task.task_id] = _TaskState(
            task.task_id, "root", {task.task_id: 1}
        )
        self.tasks_tracked += 1

    def on_fork(self, parent, children) -> None:
        """Fork: each child inherits the parent clock + a fresh component;
        the parent's own component advances so later parent work is
        concurrent with the children."""
        ps = self._tasks[parent.task_id]
        for index, child in enumerate(children):
            vc = dict(ps.vc)
            vc[child.task_id] = 1
            self._tasks[child.task_id] = _TaskState(
                child.task_id, f"{ps.path}.{index}", vc
            )
        self.tasks_tracked += len(children)
        ps.vc[parent.task_id] = ps.vc.get(parent.task_id, 0) + 1

    def on_join(self, parent, children) -> None:
        """Join of the last outstanding child: merge every child clock into
        the parent and advance the parent's component."""
        ps = self._tasks[parent.task_id]
        for child in children:
            cs = self._tasks.pop(child.task_id, None)
            if cs is not None:
                vc_join(ps.vc, cs.vc)
        ps.vc[parent.task_id] = ps.vc.get(parent.task_id, 0) + 1

    def clock_of(self, task) -> Dict[int, int]:
        """A copy of the task's current vector clock (tests/diagnostics)."""
        return dict(self._tasks[task.task_id].vc)

    def path_of(self, task) -> str:
        return self._tasks[task.task_id].path

    # ------------------------------------------------------------------
    # Logical region bookkeeping (runtime mark/unmark mirror)
    # ------------------------------------------------------------------
    def region_begin(self, start: int, end: int):
        region = self.regions.add(start, end)
        self.region_epochs += 1
        if self.record_regions:
            self._open_logs[region.region_id] = RegionLog(
                region.region_id, start, end
            )
        return region

    def region_end(self, region) -> None:
        self.regions.remove(region)
        log = self._open_logs.pop(region.region_id, None)
        if log is not None:
            self.region_logs.append(log)

    # ------------------------------------------------------------------
    # Access classification
    # ------------------------------------------------------------------
    def on_access(
        self,
        task,
        thread: int,
        addr: int,
        size: int,
        atype: AccessType,
        clock: int = 0,
    ) -> None:
        st = self._tasks.get(task.task_id)
        if st is None:  # task finished its join already (cannot happen live)
            return
        st.ops += 1
        self.checked_accesses += 1
        covering = self.regions.regions_containing(addr)
        active = tuple(r.region_id for r in covering)
        if self._open_logs:
            name = atype.name
            for rid in active:
                log = self._open_logs.get(rid)
                if log is None:
                    continue
                if len(log.entries) >= self.max_region_log:
                    log.truncated = True
                else:
                    log.entries.append((name, task.task_id, addr))
        acc = AccessInfo(task.task_id, st.path, thread, st.ops, atype.name, active)
        vc = st.vc
        own_id = task.task_id

        if atype is AccessType.LOAD:
            write = self._writes.get(addr)
            if write is not None:
                wclock, wtid, wacc = write
                if wtid != own_id and wclock > vc.get(wtid, 0):
                    self._report("raw", addr, wacc, acc, active, clock)
            reads = self._reads.get(addr)
            if reads is None:
                reads = self._reads[addr] = {}
            reads[own_id] = (vc[own_id], acc)
            return

        # STORE / RMW
        write = self._writes.get(addr)
        if write is not None:
            wclock, wtid, wacc = write
            if wtid != own_id and wclock > vc.get(wtid, 0):
                shared = tuple(r for r in wacc.region_ids if r in active)
                if atype is AccessType.RMW and wacc.atype == "RMW":
                    self.atomic_updates += 1
                    self._record(
                        RaceFinding("atomic", addr, wacc, acc, shared,
                                    self.benchmark),
                        clock,
                    )
                elif shared:
                    finding = RaceFinding(
                        "benign-waw", addr, wacc, acc, shared, self.benchmark
                    )
                    self.benign_waws.append(finding)
                    self._emit(finding, clock)
                else:
                    self._report("waw", addr, wacc, acc, active, clock)
        reads = self._reads.get(addr)
        if reads:
            for rtid, (rclock, racc) in reads.items():
                if rtid != own_id and rclock > vc.get(rtid, 0):
                    self._report("war", addr, racc, acc, active, clock)
            self._reads[addr] = {}
        self._writes[addr] = (vc[own_id], own_id, acc)

    # ------------------------------------------------------------------
    def _report(
        self,
        kind: str,
        addr: int,
        prior: AccessInfo,
        current: AccessInfo,
        active: Tuple[int, ...],
        clock: int,
    ) -> None:
        shared = tuple(r for r in prior.region_ids if r in active)
        finding = RaceFinding(kind, addr, prior, current, shared, self.benchmark)
        self.races.append(finding)
        self._emit(finding, clock)
        if self.raise_on_race:
            raise RaceError(f"race detected: {finding.describe()}", finding)

    def _record(self, finding: RaceFinding, clock: int) -> None:
        self._emit(finding, clock)

    def _emit(self, finding: RaceFinding, clock: int) -> None:
        if self.sink is None:
            return
        from repro.obs.tracer import RaceEvent

        self.sink.emit(
            RaceEvent(
                cycle=clock,
                action="race" if finding.is_race else finding.kind,
                race_kind=finding.kind,
                addr=finding.addr,
                task_a=finding.prior.task_path,
                task_b=finding.current.task_path,
                region_ids=",".join(map(str, finding.region_ids)),
            )
        )

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.races

    def summary(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "checked_accesses": self.checked_accesses,
            "tasks_tracked": self.tasks_tracked,
            "region_epochs": self.region_epochs,
            "races": len(self.races),
            "benign_waws": len(self.benign_waws),
            "atomic_updates": self.atomic_updates,
        }
