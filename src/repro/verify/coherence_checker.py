"""Functional (value-level) models of WARD semantics.

These models track actual byte values to demonstrate the paper's central
correctness claims independently of the timing simulator:

* :class:`ReconciliationModel` — per-core write buffers merged sector-by-
  sector in an arbitrary order.  For WARD-compliant access patterns
  (no cross-thread RAW; WAWs resolvable in any order) the merged result
  equals a sequentially consistent reference, **whatever** merge order the
  directory picks (§5.2's "pick the value processed last" is safe).
* :class:`WardMemoryModel` — a load/store interpreter with per-thread
  incoherent views inside a region; used by property-based tests to show
  that WARD-compliant programs cannot observe the incoherence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class ReconciliationModel:
    """Sector-merge semantics of §5.2/§6.1 over one cache block.

    Each core's copy is ``(values, written_mask)`` where ``values`` is a
    sequence of per-sector values and ``written_mask`` has bit *i* set when
    the core wrote sector *i*.
    """

    def __init__(self, num_sectors: int, initial: Optional[Sequence] = None):
        self.num_sectors = num_sectors
        self.home: List = (
            list(initial) if initial is not None else [0] * num_sectors
        )
        if len(self.home) != num_sectors:
            raise ValueError("initial image has the wrong sector count")

    def merge(self, copies: Sequence[Tuple[Sequence, int]]) -> List:
        """Flush ``copies`` into the home image in the given order."""
        for values, mask in copies:
            if len(values) != self.num_sectors:
                raise ValueError("copy has the wrong sector count")
            for sector in range(self.num_sectors):
                if mask & (1 << sector):
                    self.home[sector] = values[sector]
        return list(self.home)

    @staticmethod
    def is_false_sharing(copies: Sequence[Tuple[Sequence, int]]) -> bool:
        """True when written sectors are pairwise disjoint (§5.2)."""
        seen = 0
        for _, mask in copies:
            if mask & seen:
                return False
            seen |= mask
        return len([m for _, m in copies if m]) > 1


class WardMemoryModel:
    """A value-level interpreter of WARD-region memory.

    Inside a region each hardware thread sees its own incoherent copy of
    the region's words (seeded from the global image at first touch).  At
    ``end_region`` all per-thread writes are merged in an arbitrary caller-
    chosen order.  Outside regions, memory is sequentially consistent.
    """

    def __init__(self) -> None:
        self.memory: Dict[int, object] = {}
        self._region: Optional[Tuple[int, int]] = None
        #: per-thread private views: thread -> {addr: value}
        self._views: Dict[int, Dict[int, object]] = {}
        #: per-thread write sets: thread -> {addr: value}
        self._writes: Dict[int, Dict[int, object]] = {}

    # ------------------------------------------------------------------
    def begin_region(self, start: int, end: int) -> None:
        if self._region is not None:
            raise RuntimeError("model supports one region at a time")
        self._region = (start, end)
        self._views = {}
        self._writes = {}

    def end_region(self, merge_order: Optional[Sequence[int]] = None) -> None:
        if self._region is None:
            raise RuntimeError("no active region")
        threads = list(self._writes)
        if merge_order is None:
            merge_order = sorted(threads)
        else:
            if sorted(merge_order) != sorted(threads):
                raise ValueError("merge_order must be a permutation of writers")
        for thread in merge_order:
            self.memory.update(self._writes[thread])
        self._region = None
        self._views = {}
        self._writes = {}

    def _in_region(self, addr: int) -> bool:
        return self._region is not None and self._region[0] <= addr < self._region[1]

    # ------------------------------------------------------------------
    def store(self, thread: int, addr: int, value) -> None:
        if self._in_region(addr):
            self._views.setdefault(thread, {})[addr] = value
            self._writes.setdefault(thread, {})[addr] = value
        else:
            self.memory[addr] = value

    def load(self, thread: int, addr: int):
        if self._in_region(addr):
            view = self._views.setdefault(thread, {})
            if addr not in view:
                view[addr] = self.memory.get(addr, 0)
            return view[addr]
        return self.memory.get(addr, 0)
