"""Dynamic checkers for the memory-discipline properties the paper relies on."""

from repro.verify.coherence_checker import ReconciliationModel, WardMemoryModel
from repro.verify.race import (
    AccessInfo,
    RaceDetector,
    RaceFinding,
    RegionLog,
    happens_before,
    vc_join,
)
from repro.verify.ward_checker import WardChecker, WardViolation

__all__ = [
    "AccessInfo",
    "RaceDetector",
    "RaceFinding",
    "ReconciliationModel",
    "RegionLog",
    "WardChecker",
    "WardMemoryModel",
    "WardViolation",
    "happens_before",
    "vc_join",
]
