"""Dynamic checkers for the memory-discipline properties the paper relies on."""

from repro.verify.coherence_checker import ReconciliationModel, WardMemoryModel
from repro.verify.ward_checker import WardChecker

__all__ = ["ReconciliationModel", "WardChecker", "WardMemoryModel"]
