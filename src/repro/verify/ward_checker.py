"""Dynamic WARD-property checker (paper §3.1).

Attached as the runtime's ``access_monitor``, it watches every memory access
and verifies condition 1 of the WARD definition for every active region: no
read-after-write between distinct hardware threads at any covered address.
WAW dependencies (condition 2) cannot be checked for "apathy" mechanically —
they are *recorded* so tests can assert they only occur where the algorithm
tolerates them (e.g. the prime sieve's constant stores).

The checker works against either a live :class:`WARDenProtocol` region table
(so regions added/removed by the runtime are tracked automatically) or its
own region bookkeeping via :meth:`region_added` / :meth:`region_removed`
(for trace-replay unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.common.errors import WardViolationError
from repro.common.types import AccessType
from repro.coherence.regions import RegionTable


@dataclass(frozen=True)
class WardViolation:
    """One structured condition-1 violation record.

    ``writer_regions`` are the region ids covering the address when the
    write landed; ``reader_regions`` those active at the offending read;
    ``shared_regions`` (their intersection) identifies the region epoch(s)
    the RAW pair actually shares.
    """

    addr: int
    writer: int
    reader: int
    writer_regions: Tuple[int, ...]
    reader_regions: Tuple[int, ...]

    @property
    def shared_regions(self) -> Tuple[int, ...]:
        return tuple(r for r in self.writer_regions if r in self.reader_regions)

    def to_dict(self) -> dict:
        return {
            "addr": self.addr,
            "writer": self.writer,
            "reader": self.reader,
            "writer_regions": list(self.writer_regions),
            "reader_regions": list(self.reader_regions),
            "shared_regions": list(self.shared_regions),
        }


class WardChecker:
    """Monitors an access stream for WARD violations inside active regions."""

    def __init__(
        self,
        region_table: Optional[RegionTable] = None,
        raise_on_violation: bool = True,
    ) -> None:
        #: live region table (shared with a WARDenProtocol) or a private one
        self.region_table = region_table if region_table is not None else RegionTable()
        self.raise_on_violation = raise_on_violation
        #: addr -> (writer_thread, ids of the regions covering the addr at
        #: write time).  Region ids are never recycled, so a recorded id
        #: identifies one region *epoch*: the write and a later access share
        #: an epoch iff a recorded id is still active.
        self._writers: Dict[int, Tuple[int, FrozenSet[int]]] = {}
        #: structured :class:`WardViolation` records (non-raising mode keeps
        #: accumulating them; raising mode records the first, then raises)
        self.violations: List[WardViolation] = []
        #: cross-thread WAW events observed inside regions (condition 2)
        self.waw_events = 0
        self.checked_accesses = 0

    # ------------------------------------------------------------------
    # Region bookkeeping for standalone (trace-replay) use
    # ------------------------------------------------------------------
    def region_added(self, start: int, end: int):
        return self.region_table.add(start, end)

    def region_removed(self, region) -> None:
        self.region_table.remove(region)
        self._purge_epoch(region.region_id)

    def _purge_epoch(self, region_id: int) -> None:
        """Drop writer records that belonged only to the removed epoch.

        Hygiene, not correctness: a stale region id can never match a live
        region again (ids are monotonic), so lazy filtering in
        :meth:`on_access` already gives the right answer — this just keeps
        the write log from growing across many epochs in standalone use.
        """
        dead = [
            addr
            for addr, (_, rids) in self._writers.items()
            if region_id in rids and len(rids) == 1
        ]
        for addr in dead:
            del self._writers[addr]

    # ------------------------------------------------------------------
    def on_access(
        self,
        thread: int,
        addr: int,
        size: int,
        atype: AccessType,
        clock: int = 0,
    ) -> None:
        """Runtime access-monitor entry point."""
        self.checked_accesses += 1
        regions = self.region_table.regions_containing(addr)
        if not regions:
            return
        # With nested/overlapping regions an address can sit in several
        # epochs at once; a RAW (or WAW) pairs with the write iff *any*
        # region active at write time is still active now.
        active = frozenset(r.region_id for r in regions)
        if atype is AccessType.LOAD:
            entry = self._writers.get(addr)
            if entry is not None:
                writer, writer_rids = entry
                if writer != thread and not writer_rids.isdisjoint(active):
                    violation = WardViolation(
                        addr,
                        writer,
                        thread,
                        tuple(sorted(writer_rids)),
                        tuple(sorted(active)),
                    )
                    self.violations.append(violation)
                    if self.raise_on_violation:
                        raise WardViolationError(
                            addr, writer, thread, violation=violation
                        )
            return
        # Stores and atomics: record the writer; count cross-thread WAWs.
        entry = self._writers.get(addr)
        if (
            entry is not None
            and entry[0] != thread
            and not entry[1].isdisjoint(active)
        ):
            self.waw_events += 1
        self._writers[addr] = (thread, active)

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations
