"""Dynamic WARD-property checker (paper §3.1).

Attached as the runtime's ``access_monitor``, it watches every memory access
and verifies condition 1 of the WARD definition for every active region: no
read-after-write between distinct hardware threads at any covered address.
WAW dependencies (condition 2) cannot be checked for "apathy" mechanically —
they are *recorded* so tests can assert they only occur where the algorithm
tolerates them (e.g. the prime sieve's constant stores).

The checker works against either a live :class:`WARDenProtocol` region table
(so regions added/removed by the runtime are tracked automatically) or its
own region bookkeeping via :meth:`region_added` / :meth:`region_removed`
(for trace-replay unit tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import WardViolationError
from repro.common.types import AccessType
from repro.coherence.regions import RegionTable


class WardChecker:
    """Monitors an access stream for WARD violations inside active regions."""

    def __init__(
        self,
        region_table: Optional[RegionTable] = None,
        raise_on_violation: bool = True,
    ) -> None:
        #: live region table (shared with a WARDenProtocol) or a private one
        self.region_table = region_table if region_table is not None else RegionTable()
        self.raise_on_violation = raise_on_violation
        #: addr -> (writer_thread, region_id) for the current region epoch
        self._writers: Dict[int, Tuple[int, int]] = {}
        self.violations: List[WardViolationError] = []
        #: cross-thread WAW events observed inside regions (condition 2)
        self.waw_events = 0
        self.checked_accesses = 0

    # ------------------------------------------------------------------
    # Region bookkeeping for standalone (trace-replay) use
    # ------------------------------------------------------------------
    def region_added(self, start: int, end: int):
        return self.region_table.add(start, end)

    def region_removed(self, region) -> None:
        self.region_table.remove(region)

    # ------------------------------------------------------------------
    def on_access(
        self,
        thread: int,
        addr: int,
        size: int,
        atype: AccessType,
        clock: int = 0,
    ) -> None:
        """Runtime access-monitor entry point."""
        self.checked_accesses += 1
        region = self.region_table.lookup(addr)
        if region is None:
            return
        rid = region.region_id
        if atype is AccessType.LOAD:
            entry = self._writers.get(addr)
            if entry is not None:
                writer, writer_rid = entry
                if writer_rid == rid and writer != thread:
                    violation = WardViolationError(addr, writer, thread)
                    self.violations.append(violation)
                    if self.raise_on_violation:
                        raise violation
            return
        # Stores and atomics: record the writer; count cross-thread WAWs.
        entry = self._writers.get(addr)
        if entry is not None and entry[1] == rid and entry[0] != thread:
            self.waw_events += 1
        self._writers[addr] = (thread, rid)

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations
