"""The simulated machine: cores + coherence protocol + address space."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.common.stats import RunStats
from repro.common.types import AccessType
from repro.coherence.registry import protocol_class, protocol_map
from repro.obs.tracer import Tracer
from repro.sim.core import CoreModel

#: Base of the simulated physical address space handed out by sbrk.
ADDRESS_SPACE_BASE = 0x1_0000


class Machine:
    """Cores, caches, directory, and a bump allocator for simulated memory."""

    def __init__(
        self,
        config: MachineConfig,
        protocol: Union[str, type] = "mesi",
    ) -> None:
        self.config = config
        if isinstance(protocol, str):
            try:
                protocol_cls = protocol_class(protocol)
            except KeyError:
                raise ConfigError(
                    f"unknown protocol {protocol!r}; "
                    f"choose from {sorted(protocol_map())}"
                ) from None
        else:
            protocol_cls = protocol
        self.run_stats = RunStats(
            protocol=protocol_cls.name,
            machine=config.name,
            num_threads=config.num_threads,
        )
        #: shared event bus; disabled (one attribute check per hot-path
        #: site) until a sink is installed via ``machine.tracer.install``
        self.tracer = Tracer()
        self.protocol = protocol_cls(
            config, self.run_stats.coherence, tracer=self.tracer
        )
        self.cores: List[CoreModel] = [
            CoreModel(config, t, tracer=self.tracer)
            for t in range(config.num_threads)
        ]
        #: thread -> physical core, precomputed for the access hot path
        self._core_of: tuple = tuple(
            config.core_of_thread(t) for t in range(config.num_threads)
        )
        self._brk = ADDRESS_SPACE_BASE

    # ------------------------------------------------------------------
    # Address space
    # ------------------------------------------------------------------
    def sbrk(self, nbytes: int, align: Optional[int] = None) -> int:
        """Allocate ``nbytes`` of simulated memory; returns the base address."""
        if nbytes <= 0:
            raise ValueError("sbrk needs a positive size")
        align = align or self.config.block_size
        self._brk = (self._brk + align - 1) // align * align
        base = self._brk
        self._brk += nbytes
        return base

    # ------------------------------------------------------------------
    # Memory accesses (charged to the issuing hardware thread)
    # ------------------------------------------------------------------
    def access(
        self,
        thread: int,
        addr: int,
        size: int,
        atype: AccessType,
        spin: bool = False,
    ) -> int:
        cm = self.cores[thread]
        tracer = self.tracer
        if tracer.enabled:
            # Stamp the emission context so protocol-internal events carry
            # the issuing thread's clock without any plumbing of their own.
            start = cm.clock
            tracer.cycle = start
            tracer.thread = thread
        latency = self.protocol.access(self._core_of[thread], addr, size, atype)
        if atype is AccessType.LOAD:
            cm.load(latency, spin=spin)
        elif atype is AccessType.STORE:
            cm.store(latency)
        else:
            cm.rmw(latency)
        if tracer.enabled:
            tracer.access(start, thread, atype.value, addr, size, latency)
        return latency

    def fast_access(
        self,
        thread: int,
        addr: int,
        size: int,
        atype: AccessType,
        spin: bool = False,
    ) -> Optional[int]:
        """Epoch fast path: resolve a private-cache hit and charge the core.

        Returns the latency, or None when the full :meth:`access`
        transaction is required (the core is then left untouched).  Emits
        no tracer events — callers must only take this path while the
        tracer is disabled (the epoch engine falls back to per-op stepping
        whenever a sink is installed).
        """
        latency = self.protocol.try_fast_access(
            self._core_of[thread], addr, size, atype
        )
        if latency is None:
            return None
        cm = self.cores[thread]
        if atype is AccessType.LOAD:
            cm.load(latency, spin=spin)
        else:
            # try_fast_access never resolves RMWs, so this is a store.
            cm.store(latency)
        return latency

    def compute(self, thread: int, instrs: int) -> None:
        self.cores[thread].compute(instrs)

    def place(self, addr: int, size: int, thread: int) -> None:
        """NUMA first-touch: home the pages of ``[addr, addr+size)`` on the
        allocating thread's socket."""
        socket = self.config.socket_of_thread(thread)
        self.protocol.set_page_home(addr, size, socket)

    def llc_warm_fill(self, addr: int, thread: int = 0) -> None:
        """Warm one block into its home LLC slice without a simulated access.

        Used by input loaders: the data was just written by (unmeasured)
        input I/O, so the kernel starts LLC-warm.  ``thread`` carries no
        timing effect; it identifies the issuing thread for recorders."""
        self.protocol._llc_fill(addr)

    # ------------------------------------------------------------------
    # WARD region interface (the Add/Remove Region instructions of §6.1)
    # ------------------------------------------------------------------
    @property
    def supports_ward(self) -> bool:
        return self.protocol.supports_ward

    def add_ward_region(self, thread: int, start: int, end: int):
        """Execute an Add-Region instruction on ``thread``; returns a region
        handle (None when unsupported or the region CAM is full)."""
        if not self.protocol.supports_ward:
            return None
        self.cores[thread].compute(1)  # the new instruction itself
        self._stamp_tracer(thread)
        return self.protocol.add_region(start, end)

    def remove_ward_region(self, thread: int, region) -> None:
        """Execute a Remove-Region instruction; reconciliation happens at the
        directory and is overlapped with execution (§6.1), so only the
        instruction cost lands on the issuing thread."""
        if region is None or not self.protocol.supports_ward:
            return
        self.cores[thread].compute(1)
        self._stamp_tracer(thread)
        self.protocol.remove_region(region)

    def _stamp_tracer(self, thread: int) -> None:
        """Refresh the tracer's emission context to ``thread``'s clock."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.cycle = self.cores[thread].clock
            tracer.thread = thread

    # ------------------------------------------------------------------
    def finalize(self, makespan: Optional[int] = None) -> RunStats:
        """Aggregate per-thread counters into the RunStats and return it."""
        stats = self.run_stats
        stats.cores = type(stats.cores)()
        for cm in self.cores:
            stats.cores.merge(cm.stats)
        stats.coherence.l1_accesses = sum(
            c.hits + c.misses for c in self.protocol.l1
        )
        stats.coherence.l2_accesses = sum(
            c.hits + c.misses for c in self.protocol.l2
        )
        if makespan is None:
            makespan = max((cm.clock for cm in self.cores), default=0)
        stats.cycles = makespan
        return stats
