"""Per-hardware-thread timing model.

Loads are blocking (they pause dependent computation), stores retire through
a finite TSO store buffer and only stall when it fills, and atomics block for
their full round trip.  This asymmetry is load-bearing for the paper's
Fig. 10/11 analysis: downgrades (load side) hurt, invalidations (store side)
are mostly hidden.
"""

from __future__ import annotations

from collections import deque

from repro.common.config import MachineConfig
from repro.common.stats import CoreStats


class CoreModel:
    """Clock + store buffer + instruction counters for one hardware thread."""

    def __init__(self, config: MachineConfig, thread: int, tracer=None) -> None:
        self.config = config
        self.thread = thread
        self.clock = 0
        self.stats = CoreStats()
        #: optional :class:`repro.obs.tracer.Tracer` (store-buffer events)
        self.tracer = tracer
        self._store_buffer: deque = deque()
        self._sb_capacity = config.store_buffer_entries
        self._l1_latency = config.l1.latency
        self._last_completion = 0

    # ------------------------------------------------------------------
    def _drain_store_buffer(self) -> None:
        buf = self._store_buffer
        while buf and buf[0] <= self.clock:
            buf.popleft()

    # ------------------------------------------------------------------
    def load(self, latency: int, spin: bool = False) -> None:
        self.clock += latency
        stats = self.stats
        stats.loads += 1
        if spin:
            stats.spin_loads += 1
        l1_latency = self._l1_latency
        if latency > l1_latency:
            stats.load_stall_cycles += latency - l1_latency

    def store(self, latency: int) -> None:
        """Issue a store: 1 cycle to enter the buffer; drain in background."""
        self._drain_store_buffer()
        if len(self._store_buffer) >= self._sb_capacity:
            stall = self._store_buffer[0] - self.clock
            if stall > 0:
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.store_buffer(
                        self.clock, self.thread, "full", stall,
                        len(self._store_buffer),
                    )
                self.clock += stall
                self.stats.store_buffer_stall_cycles += stall
            self._drain_store_buffer()
        self.clock += 1
        completion = max(self.clock + latency, self._last_completion)
        self._last_completion = completion
        self._store_buffer.append(completion)
        self.stats.stores += 1

    def rmw(self, latency: int) -> None:
        """Atomics drain the store buffer (TSO fence) and block fully."""
        if self._store_buffer:
            last = self._store_buffer[-1]
            if last > self.clock:
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.store_buffer(
                        self.clock, self.thread, "fence",
                        last - self.clock, len(self._store_buffer),
                    )
                self.stats.store_buffer_stall_cycles += last - self.clock
                self.clock = last
            self._store_buffer.clear()
        self.clock += latency
        self.stats.rmws += 1

    def store_buffer_depth(self) -> int:
        """Stores still in flight at the current clock (test/debug helper;
        drains completed entries first, like the issue paths do)."""
        self._drain_store_buffer()
        return len(self._store_buffer)

    def compute(self, instrs: int) -> None:
        self.clock += instrs
        self.stats.compute_instrs += instrs

    def advance(self, cycles: int) -> None:
        """Advance time without retiring instructions (backoff, overhead)."""
        self.clock += cycles
