"""Machine model and discrete execution engine."""

from repro.sim.core import CoreModel
from repro.sim.engine import Engine, Strand, Worker
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp, ForkOp, LoadOp, RmwOp, StoreOp

__all__ = [
    "ComputeOp",
    "CoreModel",
    "Engine",
    "ForkOp",
    "LoadOp",
    "Machine",
    "RmwOp",
    "StoreOp",
    "Strand",
    "Worker",
]
