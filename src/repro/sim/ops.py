"""Operations yielded by simulated strands (tasks/kernels).

Benchmark code is written as Python generators.  Each ``yield`` hands one of
these operations to the engine, which charges latency on the issuing
hardware thread and performs the coherence transaction.  Functional effects
(actual values) happen inside the generators themselves — the ops carry only
what the timing model needs.
"""

from __future__ import annotations

from typing import Callable, Sequence


class LoadOp:
    """A data load of ``size`` bytes at ``addr`` (must not cross a block)."""

    __slots__ = ("addr", "size", "heap", "spin")

    def __init__(self, addr: int, size: int = 8, heap=None, spin: bool = False):
        self.addr = addr
        self.size = size
        self.heap = heap
        self.spin = spin


class StoreOp:
    """A data store of ``size`` bytes at ``addr``."""

    __slots__ = ("addr", "size", "heap")

    def __init__(self, addr: int, size: int = 8, heap=None):
        self.addr = addr
        self.size = size
        self.heap = heap


class RmwOp:
    """An atomic read-modify-write (CAS/fetch-add); blocking, never WARD."""

    __slots__ = ("addr", "size", "heap")

    def __init__(self, addr: int, size: int = 8, heap=None):
        self.addr = addr
        self.size = size
        self.heap = heap


class ComputeOp:
    """``instrs`` cycles of purely local computation (1 instr/cycle)."""

    __slots__ = ("instrs",)

    def __init__(self, instrs: int):
        self.instrs = instrs


class ForkOp:
    """A fork point: suspend the current task, spawn one child per thunk.

    ``thunks`` are callables ``(ctx) -> generator`` — each receives a fresh
    :class:`~repro.hlpl.api.TaskContext` for the spawned child.  The engine
    delegates handling to the runtime's fork handler; the suspended parent is
    resumed with the list of child results once all children join.
    """

    __slots__ = ("ctx", "thunks")

    def __init__(self, ctx, thunks: Sequence[Callable]):
        self.ctx = ctx
        self.thunks = list(thunks)
