"""Operations yielded by simulated strands (tasks/kernels).

Benchmark code is written as Python generators.  Each ``yield`` hands one of
these operations to the engine, which charges latency on the issuing
hardware thread and performs the coherence transaction.  Functional effects
(actual values) happen inside the generators themselves — the ops carry only
what the timing model needs.
"""

from __future__ import annotations

from typing import Callable, Sequence


class LoadOp:
    """A data load of ``size`` bytes at ``addr`` (must not cross a block)."""

    __slots__ = ("addr", "size", "heap", "spin")

    def __init__(self, addr: int, size: int = 8, heap=None, spin: bool = False):
        self.addr = addr
        self.size = size
        self.heap = heap
        self.spin = spin


class StoreOp:
    """A data store of ``size`` bytes at ``addr``."""

    __slots__ = ("addr", "size", "heap")

    def __init__(self, addr: int, size: int = 8, heap=None):
        self.addr = addr
        self.size = size
        self.heap = heap


class RmwOp:
    """An atomic read-modify-write (CAS/fetch-add); blocking, never WARD."""

    __slots__ = ("addr", "size", "heap")

    def __init__(self, addr: int, size: int = 8, heap=None):
        self.addr = addr
        self.size = size
        self.heap = heap


class ComputeOp:
    """``instrs`` cycles of purely local computation (1 instr/cycle)."""

    __slots__ = ("instrs",)

    def __init__(self, instrs: int):
        self.instrs = instrs


class ComputeBatchOp:
    """``count`` back-to-back :class:`ComputeOp`-equivalents of ``instrs``.

    Semantically identical to yielding ``count`` separate ComputeOps — the
    engine retires one element per step — but costs one allocation and one
    generator resume for the whole run.
    """

    __slots__ = ("instrs", "count")

    def __init__(self, instrs: int, count: int):
        self.instrs = instrs
        self.count = count


class LoadBatchOp:
    """``count`` strided loads: ``addr, addr+stride, ...`` of ``size`` bytes.

    With ``instrs`` each element also performs that much local compute —
    after the load by default, before it when ``compute_first`` is set — so
    the common ``[LoadOp, ComputeOp]`` / ``[ComputeOp, LoadOp]`` per-element
    loops coalesce without changing the op stream the machine observes.
    The engine expands the batch one micro-op per step (access hooks and the
    tracer see every element individually); the generator is resumed once,
    with the summed latency.
    """

    __slots__ = ("addr", "stride", "count", "size", "heap", "spin",
                 "instrs", "compute_first")

    def __init__(
        self,
        addr: int,
        stride: int,
        count: int,
        size: int = 8,
        heap=None,
        spin: bool = False,
        instrs: int = 0,
        compute_first: bool = False,
    ):
        self.addr = addr
        self.stride = stride
        self.count = count
        self.size = size
        self.heap = heap
        self.spin = spin
        self.instrs = instrs
        self.compute_first = compute_first


class StoreBatchOp:
    """``count`` strided stores; see :class:`LoadBatchOp` for the contract."""

    __slots__ = ("addr", "stride", "count", "size", "heap",
                 "instrs", "compute_first")

    def __init__(
        self,
        addr: int,
        stride: int,
        count: int,
        size: int = 8,
        heap=None,
        instrs: int = 0,
        compute_first: bool = False,
    ):
        self.addr = addr
        self.stride = stride
        self.count = count
        self.size = size
        self.heap = heap
        self.instrs = instrs
        self.compute_first = compute_first


class GatherBatchOp:
    """``count`` elements, each retiring the micro-op ``pattern`` in order.

    Generalizes :class:`LoadBatchOp`/:class:`StoreBatchOp` to per-element
    bodies that touch several arrays — the dense ``[Load, ..., Compute,
    Store]`` loops of tabulate-style combinators.  ``pattern`` is a tuple of
    micro-op descriptors, applied to element indices ``start, start+1, ...``:

    * ``(0, base, stride, size, heap)`` — load of ``size`` bytes at
      ``base + i * stride`` for element ``i``,
    * ``(1, base, stride, size, heap)`` — store, same addressing,
    * ``(2, instrs, 0, 0, None)`` — local compute.

    The engine retires one micro-op per step (hooks and step counting see
    every element exactly as if the loop had yielded scalar ops); the
    generator resumes once with the summed access latency.
    """

    __slots__ = ("start", "count", "pattern")

    def __init__(self, start: int, count: int, pattern):
        self.start = start
        self.count = count
        self.pattern = pattern


class ForkOp:
    """A fork point: suspend the current task, spawn one child per thunk.

    ``thunks`` are callables ``(ctx) -> generator`` — each receives a fresh
    :class:`~repro.hlpl.api.TaskContext` for the spawned child.  The engine
    delegates handling to the runtime's fork handler; the suspended parent is
    resumed with the list of child results once all children join.
    """

    __slots__ = ("ctx", "thunks")

    def __init__(self, ctx, thunks: Sequence[Callable]):
        self.ctx = ctx
        self.thunks = list(thunks)
