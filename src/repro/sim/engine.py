"""Conservative min-clock discrete execution engine.

Every hardware thread owns a cycle clock (its :class:`CoreModel`).  The
engine repeatedly picks the runnable worker with the globally smallest clock
and executes exactly one yielded operation, so coherence transactions are
processed in a globally consistent time order — the "simplified cycle-sim"
substitute for Sniper's interval simulation.

Two usage modes:

* **Pinned** — strands are pinned to hardware threads with :meth:`Engine.pin`
  and run to completion (used by the Table-1 validation microbenchmark).
* **Scheduled** — a scheduler object (the HLPL work-stealing runtime) is
  installed; the engine consults it for idle workers and for termination.

Epoch batching
--------------

Most retired ops are private-cache hits that no other core can observe, so
paying a heap interaction per op is pure overhead.  When enabled (the
default; ``REPRO_EPOCH_BATCH=0`` disables it), the engine lets the worker it
just popped as the global minimum retire a *run* of consecutive ops in a
tight loop (:meth:`Engine._retire_run`) — without re-touching the heap — for
as long as the run provably cannot change the schedule:

* the worker's clock keeps it the worker the strict min-clock scan would
  pick anyway (strictly below the next-best heap entry, or equal with a
  smaller thread id — the heap's exact tie-break), and
* each op is *epoch-safe*: purely local compute, or a load/store the
  protocol resolves as a private-cache hit with no directory or interconnect
  message (``protocol.try_fast_access``).

Epoch-safe ops mutate nothing any other worker can observe (only this
core's clock, private caches, and counters), so the batched schedule is the
*same* schedule the per-op engine produces and RunStats stay bit-identical
(asserted in ``tests/test_epoch.py``).  The first op that needs the slow
path runs once in full, then the run ends and the worker re-enters the
heap.  The fast path is bypassed entirely while a tracer sink is installed
(per-op event visibility); access hooks are invoked per element inside the
run, preserving checker semantics.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Callable, Optional

from repro.common.errors import SimulationError
from repro.common.types import AccessType
from repro.sim.machine import Machine
from repro.sim.ops import (
    ComputeBatchOp,
    ComputeOp,
    ForkOp,
    GatherBatchOp,
    LoadBatchOp,
    LoadOp,
    RmwOp,
    StoreBatchOp,
    StoreOp,
)

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE
_RMW = AccessType.RMW

#: micro-op stages of one batch element (compute-before / access / compute-after)
_STAGE_PRE = 0
_STAGE_ACCESS = 1
_STAGE_POST = 2


class _BatchCursor:
    """Progress through a partially-retired batch op.

    The cursor snapshots the batch op's fields at install time (workloads
    may therefore reuse batch-op instances across yields) and owns a scratch
    scalar op handed to access hooks, so checkers see every element exactly
    as if the batch had been yielded one scalar op at a time.
    """

    __slots__ = (
        "op",
        "atype",
        "addr",
        "stride",
        "left",
        "instrs",
        "compute_first",
        "stage",
        "latency_sum",
        # gather-pattern cursors (op is None, pattern is not)
        "pattern",
        "plen",
        "pos",
        "idx",
        "scratch",
    )

    def __init__(self, op, atype, addr, stride, left, instrs, compute_first):
        self.op = op
        self.atype = atype
        self.addr = addr
        self.stride = stride
        self.left = left
        self.instrs = instrs
        self.compute_first = compute_first
        self.stage = _STAGE_PRE if (instrs and compute_first) else _STAGE_ACCESS
        self.latency_sum = 0
        self.pattern = None


class Strand:
    """One runnable generator plus its (optional) spawn-tree task."""

    __slots__ = ("gen", "task", "on_done", "resume_value", "ready_clock", "batch")

    def __init__(self, gen, task=None, on_done: Optional[Callable] = None):
        self.gen = gen
        self.task = task
        self.on_done = on_done
        self.resume_value = None
        #: cycle at which this strand became runnable (steal causality)
        self.ready_clock = 0
        #: in-flight :class:`_BatchCursor` (a batch op survives reschedules)
        self.batch: Optional[_BatchCursor] = None


class Worker:
    """A hardware thread as seen by the engine."""

    __slots__ = ("thread", "strand")

    def __init__(self, thread: int):
        self.thread = thread
        self.strand: Optional[Strand] = None


class Engine:
    def __init__(self, machine: Machine):
        self.machine = machine
        self.workers = [Worker(t) for t in range(machine.config.num_threads)]
        #: callable(worker, ForkOp) installed by the HLPL runtime
        self.fork_handler: Optional[Callable] = None
        #: scheduler with .finished, .has_work_for(worker), .on_idle(worker)
        self.scheduler = None
        #: callable(worker, op, AccessType) for dynamic checkers
        self.access_hook: Optional[Callable] = None
        self.steps = 0
        #: optional runaway guard (SimulationError when exceeded)
        self.max_steps: Optional[int] = None
        #: the worker currently being stepped (used by the runtime to charge
        #: internal work such as region instructions to the right thread)
        self.current_worker: Optional[Worker] = None
        #: epoch-batched stepping (escape hatch: REPRO_EPOCH_BATCH=0).
        #: A machine may demand pure per-op stepping (``record_per_op``):
        #: the trace recorder needs every access to flow through
        #: ``Machine.access`` so the protocol-visible stream is complete.
        self.epoch_batch = (
            os.environ.get("REPRO_EPOCH_BATCH", "1") != "0"
            and not getattr(machine, "record_per_op", False)
        )

    # ------------------------------------------------------------------
    def pin(self, thread: int, gen, on_done: Optional[Callable] = None) -> Strand:
        """Pin a raw generator to a hardware thread (validation mode)."""
        worker = self.workers[thread]
        if worker.strand is not None:
            raise SimulationError(f"thread {thread} already has a strand")
        strand = Strand(gen, on_done=on_done)
        worker.strand = strand
        return strand

    # ------------------------------------------------------------------
    def run(self) -> None:
        machine_cores = self.machine.cores
        workers = self.workers
        scheduler = self.scheduler
        step = self.step
        retire_run = self._retire_run
        tracer = self.machine.tracer
        epoch_batch = self.epoch_batch
        # Lazily-repaired min-heap over worker clocks, replacing the
        # per-step O(num_threads) scan.  Only the worker being stepped can
        # advance its own clock, so entries are normally exact; the staleness
        # check below repairs any entry whose clock moved underneath it
        # (robust against schedulers that touch other cores).  Ties break on
        # the thread id, matching the old first-lowest-thread scan order.
        if scheduler is None:
            heap = [
                (machine_cores[w.thread].clock, w.thread)
                for w in workers
                if w.strand is not None
            ]
        else:
            heap = [(machine_cores[w.thread].clock, w.thread) for w in workers]
        heapify(heap)
        #: idle workers the scheduler had no work for; re-armed on progress
        parked = []
        while True:
            if scheduler is not None and scheduler.finished:
                return
            if not heap:
                if scheduler is None:
                    return  # pinned mode: everything ran to completion
                raise SimulationError(
                    "deadlock: scheduler not finished but no worker is runnable"
                )
            entry = heappop(heap)
            clock, thread = entry
            core = machine_cores[thread]
            if clock != core.clock:
                heappush(heap, (core.clock, thread))  # stale: repair
                continue
            worker = workers[thread]
            if worker.strand is None:
                if scheduler is None:
                    continue  # pinned strand finished: retire the worker
                if not scheduler.has_work_for(worker):
                    parked.append(entry)
                    continue
                scheduler.on_idle(worker)
                if epoch_batch and not tracer.enabled:
                    # Idle-spin epoch: while this worker stays strictly
                    # min-clock (same tie-break as the heap pop) and found
                    # no work, the per-op engine would pop it straight back
                    # — so keep spinning it without re-touching the heap.
                    # on_idle only advances this worker's own clock, so the
                    # schedule (and every spin access) is bit-identical.
                    if heap:
                        next_clock, next_thread = heap[0]
                        while (
                            worker.strand is None
                            and not scheduler.finished
                            and (
                                core.clock < next_clock
                                or (core.clock == next_clock
                                    and thread < next_thread)
                            )
                            and scheduler.has_work_for(worker)
                        ):
                            scheduler.on_idle(worker)
                    else:
                        while (
                            worker.strand is None
                            and not scheduler.finished
                            and scheduler.has_work_for(worker)
                        ):
                            scheduler.on_idle(worker)
            elif epoch_batch and not tracer.enabled:
                if heap:
                    next_clock, next_thread = heap[0]
                else:
                    next_clock, next_thread = None, -1
                retire_run(worker, next_clock, next_thread)
            else:
                step(worker)
            heappush(heap, (core.clock, thread))
            if parked:
                # Progress was made; parked workers may have work again.
                for stale in parked:
                    heappush(heap, stale)
                parked.clear()

    # ------------------------------------------------------------------
    def _finish_strand(self, worker: Worker, strand: Strand, stop) -> None:
        worker.strand = None
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.strand(
                self.machine.cores[worker.thread].clock,
                worker.thread,
                "finish",
                getattr(strand.task, "task_id", -1),
            )
        if strand.on_done is not None:
            strand.on_done(getattr(stop, "value", None), worker)

    # ------------------------------------------------------------------
    def _install_batch(self, strand: Strand, op, cls) -> _BatchCursor:
        count = op.count
        if count < 1:
            raise SimulationError(f"batch op needs count >= 1, got {count}")
        if cls is ComputeBatchOp:
            cursor = _BatchCursor(None, None, 0, 0, count, op.instrs, False)
        elif cls is GatherBatchOp:
            cursor = _BatchCursor(None, None, 0, 0, count, 0, False)
            cursor.pattern = op.pattern
            cursor.plen = len(op.pattern)
            cursor.pos = 0
            cursor.idx = op.start
            cursor.scratch = LoadOp(0)
        elif cls is LoadBatchOp:
            scratch = LoadOp(op.addr, op.size, heap=op.heap, spin=op.spin)
            cursor = _BatchCursor(
                scratch, _LOAD, op.addr, op.stride, count,
                op.instrs, op.compute_first,
            )
        else:
            scratch = StoreOp(op.addr, op.size, heap=op.heap)
            cursor = _BatchCursor(
                scratch, _STORE, op.addr, op.stride, count,
                op.instrs, op.compute_first,
            )
        strand.batch = cursor
        return cursor

    def _advance_batch(self, strand: Strand, cursor: _BatchCursor) -> None:
        """Finish one element: move to the next or resume the generator."""
        cursor.left -= 1
        if cursor.left == 0:
            strand.resume_value = cursor.latency_sum
            strand.batch = None
            return
        cursor.addr += cursor.stride
        cursor.stage = (
            _STAGE_PRE if (cursor.instrs and cursor.compute_first)
            else _STAGE_ACCESS
        )

    def _batch_micro(
        self, worker: Worker, strand: Strand, cursor: _BatchCursor, use_fast: bool
    ) -> bool:
        """Execute one micro-op of the active batch cursor.

        Returns True when the micro-op was epoch-safe (local compute or a
        private-cache hit) — the epoch loop may then keep running this
        worker without re-touching the scheduler heap.
        """
        machine = self.machine
        thread = worker.thread
        op = cursor.op
        if op is None:
            if cursor.pattern is not None:
                return self._gather_micro(worker, strand, cursor, use_fast)
            # compute-only batch
            machine.cores[thread].compute(cursor.instrs)
            cursor.left -= 1
            if cursor.left == 0:
                strand.resume_value = None
                strand.batch = None
            return True
        stage = cursor.stage
        if stage != _STAGE_ACCESS:
            machine.cores[thread].compute(cursor.instrs)
            if stage == _STAGE_PRE:
                cursor.stage = _STAGE_ACCESS
            else:
                self._advance_batch(strand, cursor)
            return True
        addr = cursor.addr
        op.addr = addr
        atype = cursor.atype
        hook = self.access_hook
        if hook is not None:
            hook(worker, op, atype)
        fast = False
        if use_fast:
            latency = machine.protocol.try_fast_access(
                machine._core_of[thread], addr, op.size, atype
            )
            fast = latency is not None
        if fast:
            core = machine.cores[thread]
            if atype is _LOAD:
                core.load(latency, spin=op.spin)
            else:
                core.store(latency)
        elif atype is _LOAD:
            latency = machine.access(thread, addr, op.size, _LOAD, spin=op.spin)
        else:
            latency = machine.access(thread, addr, op.size, _STORE)
        cursor.latency_sum += latency
        if cursor.instrs and not cursor.compute_first:
            cursor.stage = _STAGE_POST
        else:
            self._advance_batch(strand, cursor)
        return fast

    def _gather_micro(
        self, worker: Worker, strand: Strand, cursor: _BatchCursor, use_fast: bool
    ) -> bool:
        """One micro-op of a :class:`GatherBatchOp` pattern cursor."""
        machine = self.machine
        thread = worker.thread
        micro = cursor.pattern[cursor.pos]
        kind = micro[0]
        fast = True
        if kind == 2:  # compute
            machine.cores[thread].compute(micro[1])
        else:
            addr = micro[1] + cursor.idx * micro[2]
            size = micro[3]
            atype = _LOAD if kind == 0 else _STORE
            hook = self.access_hook
            if hook is not None:
                scratch = cursor.scratch
                scratch.addr = addr
                scratch.size = size
                scratch.heap = micro[4]
                hook(worker, scratch, atype)
            latency = None
            if use_fast:
                latency = machine.protocol.try_fast_access(
                    machine._core_of[thread], addr, size, atype
                )
            if latency is None:
                fast = False
                latency = machine.access(thread, addr, size, atype)
            else:
                core = machine.cores[thread]
                if kind == 0:
                    core.load(latency)
                else:
                    core.store(latency)
            cursor.latency_sum += latency
        pos = cursor.pos + 1
        if pos != cursor.plen:
            cursor.pos = pos
        else:
            cursor.pos = 0
            cursor.idx += 1
            cursor.left -= 1
            if cursor.left == 0:
                strand.resume_value = cursor.latency_sum
                strand.batch = None
        return fast

    # ------------------------------------------------------------------
    def step(self, worker: Worker) -> None:
        """Execute one operation element of the worker's current strand.

        Batch ops retire one micro-op per call — the engine's semantics are
        identical whether a workload yields N scalar ops or one batch of N,
        so ``steps`` uniformly counts retired (micro-)ops.
        """
        strand = worker.strand
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise SimulationError(f"engine exceeded max_steps={self.max_steps}")
        self.current_worker = worker
        cursor = strand.batch
        if cursor is not None:
            self._batch_micro(worker, strand, cursor, False)
            return
        try:
            op = strand.gen.send(strand.resume_value)
        except StopIteration as stop:
            self._finish_strand(worker, strand, stop)
            return
        strand.resume_value = None

        cls = op.__class__
        thread = worker.thread
        machine = self.machine
        access_hook = self.access_hook
        if cls is ComputeOp:
            machine.compute(thread, op.instrs)
        elif cls is LoadOp:
            if access_hook is not None:
                access_hook(worker, op, _LOAD)
            strand.resume_value = machine.access(
                thread, op.addr, op.size, _LOAD, spin=op.spin
            )
        elif cls is StoreOp:
            if access_hook is not None:
                access_hook(worker, op, _STORE)
            strand.resume_value = machine.access(
                thread, op.addr, op.size, _STORE
            )
        elif cls is RmwOp:
            if access_hook is not None:
                access_hook(worker, op, _RMW)
            strand.resume_value = machine.access(
                thread, op.addr, op.size, _RMW
            )
        elif (
            cls is ComputeBatchOp
            or cls is LoadBatchOp
            or cls is StoreBatchOp
            or cls is GatherBatchOp
        ):
            self._batch_micro(
                worker, strand, self._install_batch(strand, op, cls), False
            )
        elif cls is ForkOp:
            if self.fork_handler is None:
                raise SimulationError("ForkOp yielded but no fork handler installed")
            self.fork_handler(worker, op)
        else:
            raise SimulationError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    def _retire_run(
        self, worker: Worker, next_clock: Optional[int], next_thread: int
    ) -> None:
        """Retire a run of consecutive epoch-safe ops on one worker.

        ``worker`` was just popped as the global min-clock choice;
        ``(next_clock, next_thread)`` is the best remaining heap entry
        (``next_clock=None`` when the heap is empty).  The loop keeps
        retiring while the worker would be re-picked by the strict per-op
        scan anyway — stale heap entries only make that stop condition
        fire *early* (the entry's recorded clock is never above the real
        one), which is conservative and preserves the exact schedule.
        The first op needing the slow path (coherence traffic, RmwOp,
        ForkOp, StopIteration) executes once in full and ends the run.
        """
        strand = worker.strand
        thread = worker.thread
        machine = self.machine
        core = machine.cores[thread]
        try_fast = machine.protocol.try_fast_access
        pcore = machine._core_of[thread]
        access_hook = self.access_hook
        max_steps = self.max_steps
        self.current_worker = worker
        while True:
            self.steps += 1
            if max_steps is not None and self.steps > max_steps:
                raise SimulationError(f"engine exceeded max_steps={max_steps}")
            cursor = strand.batch
            if cursor is not None:
                if not self._batch_micro(worker, strand, cursor, True):
                    return
            else:
                try:
                    op = strand.gen.send(strand.resume_value)
                except StopIteration as stop:
                    self._finish_strand(worker, strand, stop)
                    return
                strand.resume_value = None
                cls = op.__class__
                if cls is ComputeOp:
                    core.compute(op.instrs)
                elif cls is LoadOp:
                    if access_hook is not None:
                        access_hook(worker, op, _LOAD)
                    latency = try_fast(pcore, op.addr, op.size, _LOAD)
                    if latency is None:
                        strand.resume_value = machine.access(
                            thread, op.addr, op.size, _LOAD, spin=op.spin
                        )
                        return
                    core.load(latency, spin=op.spin)
                    strand.resume_value = latency
                elif cls is StoreOp:
                    if access_hook is not None:
                        access_hook(worker, op, _STORE)
                    latency = try_fast(pcore, op.addr, op.size, _STORE)
                    if latency is None:
                        strand.resume_value = machine.access(
                            thread, op.addr, op.size, _STORE
                        )
                        return
                    core.store(latency)
                    strand.resume_value = latency
                elif (
                    cls is ComputeBatchOp
                    or cls is LoadBatchOp
                    or cls is StoreBatchOp
                    or cls is GatherBatchOp
                ):
                    cursor = self._install_batch(strand, op, cls)
                    if not self._batch_micro(worker, strand, cursor, True):
                        return
                elif cls is RmwOp:
                    if access_hook is not None:
                        access_hook(worker, op, _RMW)
                    strand.resume_value = machine.access(
                        thread, op.addr, op.size, _RMW
                    )
                    return
                elif cls is ForkOp:
                    if self.fork_handler is None:
                        raise SimulationError(
                            "ForkOp yielded but no fork handler installed"
                        )
                    self.fork_handler(worker, op)
                    return
                else:
                    raise SimulationError(f"unknown operation {op!r}")
            if next_clock is not None:
                c = core.clock
                if c > next_clock or (c == next_clock and thread > next_thread):
                    return
