"""Conservative min-clock discrete execution engine.

Every hardware thread owns a cycle clock (its :class:`CoreModel`).  The
engine repeatedly picks the runnable worker with the globally smallest clock
and executes exactly one yielded operation, so coherence transactions are
processed in a globally consistent time order — the "simplified cycle-sim"
substitute for Sniper's interval simulation.

Two usage modes:

* **Pinned** — strands are pinned to hardware threads with :meth:`Engine.pin`
  and run to completion (used by the Table-1 validation microbenchmark).
* **Scheduled** — a scheduler object (the HLPL work-stealing runtime) is
  installed; the engine consults it for idle workers and for termination.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Optional

from repro.common.errors import SimulationError
from repro.common.types import AccessType
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp, ForkOp, LoadOp, RmwOp, StoreOp

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE
_RMW = AccessType.RMW


class Strand:
    """One runnable generator plus its (optional) spawn-tree task."""

    __slots__ = ("gen", "task", "on_done", "resume_value", "ready_clock")

    def __init__(self, gen, task=None, on_done: Optional[Callable] = None):
        self.gen = gen
        self.task = task
        self.on_done = on_done
        self.resume_value = None
        #: cycle at which this strand became runnable (steal causality)
        self.ready_clock = 0


class Worker:
    """A hardware thread as seen by the engine."""

    __slots__ = ("thread", "strand")

    def __init__(self, thread: int):
        self.thread = thread
        self.strand: Optional[Strand] = None


class Engine:
    def __init__(self, machine: Machine):
        self.machine = machine
        self.workers = [Worker(t) for t in range(machine.config.num_threads)]
        #: callable(worker, ForkOp) installed by the HLPL runtime
        self.fork_handler: Optional[Callable] = None
        #: scheduler with .finished, .has_work_for(worker), .on_idle(worker)
        self.scheduler = None
        #: callable(worker, op, AccessType) for dynamic checkers
        self.access_hook: Optional[Callable] = None
        self.steps = 0
        #: optional runaway guard (SimulationError when exceeded)
        self.max_steps: Optional[int] = None
        #: the worker currently being stepped (used by the runtime to charge
        #: internal work such as region instructions to the right thread)
        self.current_worker: Optional[Worker] = None

    # ------------------------------------------------------------------
    def pin(self, thread: int, gen, on_done: Optional[Callable] = None) -> Strand:
        """Pin a raw generator to a hardware thread (validation mode)."""
        worker = self.workers[thread]
        if worker.strand is not None:
            raise SimulationError(f"thread {thread} already has a strand")
        strand = Strand(gen, on_done=on_done)
        worker.strand = strand
        return strand

    # ------------------------------------------------------------------
    def run(self) -> None:
        machine_cores = self.machine.cores
        workers = self.workers
        scheduler = self.scheduler
        step = self.step
        # Lazily-repaired min-heap over worker clocks, replacing the
        # per-step O(num_threads) scan.  Only the worker being stepped can
        # advance its own clock, so entries are normally exact; the staleness
        # check below repairs any entry whose clock moved underneath it
        # (robust against schedulers that touch other cores).  Ties break on
        # the thread id, matching the old first-lowest-thread scan order.
        if scheduler is None:
            heap = [
                (machine_cores[w.thread].clock, w.thread)
                for w in workers
                if w.strand is not None
            ]
        else:
            heap = [(machine_cores[w.thread].clock, w.thread) for w in workers]
        heapify(heap)
        #: idle workers the scheduler had no work for; re-armed on progress
        parked = []
        while True:
            if scheduler is not None and scheduler.finished:
                return
            if not heap:
                if scheduler is None:
                    return  # pinned mode: everything ran to completion
                raise SimulationError(
                    "deadlock: scheduler not finished but no worker is runnable"
                )
            entry = heappop(heap)
            clock, thread = entry
            core = machine_cores[thread]
            if clock != core.clock:
                heappush(heap, (core.clock, thread))  # stale: repair
                continue
            worker = workers[thread]
            if worker.strand is None:
                if scheduler is None:
                    continue  # pinned strand finished: retire the worker
                if not scheduler.has_work_for(worker):
                    parked.append(entry)
                    continue
                scheduler.on_idle(worker)
            else:
                step(worker)
            heappush(heap, (core.clock, thread))
            if parked:
                # Progress was made; parked workers may have work again.
                for stale in parked:
                    heappush(heap, stale)
                parked.clear()

    # ------------------------------------------------------------------
    def step(self, worker: Worker) -> None:
        """Execute one yielded operation of the worker's current strand."""
        strand = worker.strand
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise SimulationError(f"engine exceeded max_steps={self.max_steps}")
        self.current_worker = worker
        try:
            op = strand.gen.send(strand.resume_value)
        except StopIteration as stop:
            worker.strand = None
            tracer = self.machine.tracer
            if tracer.enabled:
                tracer.strand(
                    self.machine.cores[worker.thread].clock,
                    worker.thread,
                    "finish",
                    getattr(strand.task, "task_id", -1),
                )
            if strand.on_done is not None:
                strand.on_done(getattr(stop, "value", None), worker)
            return
        strand.resume_value = None

        cls = op.__class__
        thread = worker.thread
        machine = self.machine
        access_hook = self.access_hook
        if cls is ComputeOp:
            machine.compute(thread, op.instrs)
        elif cls is LoadOp:
            if access_hook is not None:
                access_hook(worker, op, _LOAD)
            strand.resume_value = machine.access(
                thread, op.addr, op.size, _LOAD, spin=op.spin
            )
        elif cls is StoreOp:
            if access_hook is not None:
                access_hook(worker, op, _STORE)
            strand.resume_value = machine.access(
                thread, op.addr, op.size, _STORE
            )
        elif cls is RmwOp:
            if access_hook is not None:
                access_hook(worker, op, _RMW)
            strand.resume_value = machine.access(
                thread, op.addr, op.size, _RMW
            )
        elif cls is ForkOp:
            if self.fork_handler is None:
                raise SimulationError("ForkOp yielded but no fork handler installed")
            self.fork_handler(worker, op)
        else:
            raise SimulationError(f"unknown operation {op!r}")
