"""Workload front ends: external trace ingestion + synthetic generators.

Two ways into the simulator beyond the 14 built-in paper kernels:

* ``trace:<path>`` — any text memory trace in the common ``thread op
  address [size]`` format, parsed by :mod:`repro.workloads.memtrace`
  and adapted into a standard benchmark;
* ``synth-*`` — seeded synthetic service workloads from
  :mod:`repro.workloads.synth` (Zipfian, rw-mix, rings, false sharing,
  phase shifts).

:func:`resolve_workload` is the single name-resolution entry point the
benchmark machinery (``repro.bench.get_benchmark``) delegates to.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.workloads.adapter import (
    TRACE_ADDR_BASE,
    benchmark_from_trace,
    trace_root_task,
)
from repro.workloads.memtrace import (
    MemTrace,
    TraceFormatError,
    load_trace_file,
    parse_trace_text,
)
from repro.workloads.synth import (
    GENERATORS,
    GOLDEN_SYNTH,
    SYNTH_WORKLOADS,
    make_trace,
)

#: prefix selecting the external-trace front end in any benchmark-name slot
TRACE_PREFIX = "trace:"


def workload_names():
    """Registered synthetic workload names, sorted."""
    return sorted(SYNTH_WORKLOADS)


def is_workload_name(name: str) -> bool:
    """True when ``name`` resolves through this package, not BENCHMARKS."""
    return name in SYNTH_WORKLOADS or name.startswith(TRACE_PREFIX)


def resolve_workload(name: str):
    """Resolve a workload name to a :class:`~repro.bench.common.Benchmark`.

    Accepts registered synthetic names (``synth-zipf``, ...) and
    ``trace:<path>`` external trace files (parsed on resolution, so a
    malformed file surfaces as :class:`TraceFormatError` — an
    operational :class:`~repro.common.errors.ReproError`, CLI exit 2).
    """
    if name in SYNTH_WORKLOADS:
        return SYNTH_WORKLOADS[name]
    if name.startswith(TRACE_PREFIX):
        path = name[len(TRACE_PREFIX):]
        if not path:
            raise ConfigError("empty trace path in workload name 'trace:'")
        trace = load_trace_file(path)
        return benchmark_from_trace(trace, name)
    raise ConfigError(
        f"unknown workload {name!r}; expected one of {workload_names()} "
        f"or '{TRACE_PREFIX}<path>'"
    )


__all__ = [
    "GENERATORS",
    "GOLDEN_SYNTH",
    "MemTrace",
    "SYNTH_WORKLOADS",
    "TRACE_ADDR_BASE",
    "TRACE_PREFIX",
    "TraceFormatError",
    "benchmark_from_trace",
    "is_workload_name",
    "load_trace_file",
    "make_trace",
    "parse_trace_text",
    "resolve_workload",
    "trace_root_task",
    "workload_names",
]
