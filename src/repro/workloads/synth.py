"""Seeded synthetic service workloads emitted as memory traces.

Each generator models one service-shaped traffic regime the 14 paper
kernels cannot express, as a deterministic function of ``(rng, scale,
knobs)`` — same seed, same knobs ⇒ byte-identical trace text ⇒
bit-identical RunStats on both the engine and replay paths:

* ``zipf`` — key-value cache with Zipfian key popularity: hot keys are
  read (and occasionally written) by every thread, so raising ``skew``
  concentrates traffic on a few blocks and drives sharing/invalidation
  traffic up.
* ``rwmix`` — uniform key access with a tunable write fraction: the
  knob for write-invalidate cost sweeps (``write_frac`` up ⇒
  invalidations up).
* ``ring`` — producer/consumer rings: thread ``t`` writes items +
  bumps a tail counter (RMW), thread ``t+1`` drains them — the classic
  migratory/communication pattern.
* ``falseshare`` — per-thread counters deliberately packed into shared
  cache lines (``slots_per_line`` > 1): pure false-sharing stress with a
  private-line control knob.
* ``phase`` — phase-shifting working sets: each phase moves every
  thread to a fresh mostly-private window with a small shared overlap,
  modelling request batches churning a cache.

``SYNTH_WORKLOADS`` registers one ready-made :class:`Benchmark` per
regime (names ``synth-*``); :func:`make_trace` builds a raw trace for
arbitrary knob settings (the CLI ``synth`` subcommand's entry point).
"""

from __future__ import annotations

import bisect
import random
from typing import Callable, Dict, List

from repro.bench.common import Benchmark
from repro.common.errors import ConfigError
from repro.workloads.adapter import trace_root_task
from repro.workloads.memtrace import K_LOAD, K_RMW, K_STORE, MemTrace

#: one cache line in every generator's address arithmetic; matches the
#: machine presets (traces remain valid at other block sizes, the
#: sharing patterns are simply sharper at <=64B lines).
LINE = 64

#: ops per thread at each named size.  "default" is deliberately far
#: beyond the built-in kernels' inputs — the replay kernel is the
#: intended substrate at that scale.
SCALES = {"test": 150, "small": 1200, "default": 25000}


def _zipf_cdf(keys: int, skew: float) -> List[float]:
    """Cumulative weights for ranks ``1..keys`` under ``1/rank**skew``."""
    weights = [1.0 / ((rank + 1) ** skew) for rank in range(keys)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def _pick_zipf(rng: random.Random, cdf: List[float]) -> int:
    return bisect.bisect_left(cdf, rng.random())


def gen_zipf(
    rng: random.Random,
    ops_per_thread: int,
    threads: int = 8,
    keys: int = 64,
    skew: float = 1.2,
    read_frac: float = 0.9,
) -> MemTrace:
    """Zipfian key-popularity cache traffic (rank ``r`` lives at block ``r``)."""
    trace = MemTrace(name=f"zipf(skew={skew},read_frac={read_frac})")
    cdf = _zipf_cdf(keys, skew)
    for _ in range(ops_per_thread):
        for thread in range(threads):
            key = _pick_zipf(rng, cdf)
            kind = K_LOAD if rng.random() < read_frac else K_STORE
            trace.append(thread, kind, key * LINE, 8)
    return trace


def gen_rwmix(
    rng: random.Random,
    ops_per_thread: int,
    threads: int = 8,
    keys: int = 48,
    write_frac: float = 0.3,
) -> MemTrace:
    """Uniform key access with a tunable write fraction."""
    trace = MemTrace(name=f"rwmix(write_frac={write_frac})")
    for _ in range(ops_per_thread):
        for thread in range(threads):
            key = rng.randrange(keys)
            kind = K_STORE if rng.random() < write_frac else K_LOAD
            trace.append(thread, kind, key * LINE, 8)
    return trace


def gen_ring(
    rng: random.Random,
    ops_per_thread: int,
    threads: int = 8,
    slots: int = 16,
) -> MemTrace:
    """Producer/consumer rings: ``t`` produces, ``t+1`` consumes.

    Ring ``t`` occupies ``slots`` item lines plus one counter line
    (head and tail packed 8 bytes apart — deliberately, as real SPSC
    queues often do).  Each logical item is 4 ops: produce = store item
    + RMW tail; consume = RMW head + load item.
    """
    trace = MemTrace(name=f"ring(slots={slots})")
    ring_span = (slots + 1) * LINE
    items = max(1, ops_per_thread // 4)
    for i in range(items):
        for thread in range(threads):
            ring = thread  # thread t produces into ring t
            base = ring * ring_span
            # seed-dependent payload offset within the slot line (the
            # consumer reads exactly what the producer wrote)
            item = base + (i % slots) * LINE + 8 * rng.randrange(8)
            trace.append(thread, K_STORE, item, 8)
            trace.append(thread, K_RMW, base + slots * LINE, 8)  # tail
            consumer = (thread + 1) % threads
            trace.append(consumer, K_RMW, base + slots * LINE + 8, 8)  # head
            trace.append(consumer, K_LOAD, item, 8)
    return trace


def gen_falseshare(
    rng: random.Random,
    ops_per_thread: int,
    threads: int = 8,
    slots_per_line: int = 8,
    read_frac: float = 0.25,
) -> MemTrace:
    """Per-thread counters packed ``slots_per_line`` to a cache line.

    At ``slots_per_line=1`` every counter has a private line (the fixed
    version of the bug); at 8 all eight threads fight over one line.
    """
    trace = MemTrace(name=f"falseshare(slots_per_line={slots_per_line})")
    slot_stride = LINE // slots_per_line
    for _ in range(ops_per_thread):
        for thread in range(threads):
            line = thread // slots_per_line
            slot = thread % slots_per_line
            addr = line * LINE + slot * slot_stride
            kind = K_LOAD if rng.random() < read_frac else K_STORE
            trace.append(thread, kind, addr, min(8, slot_stride))
    return trace


def gen_phase(
    rng: random.Random,
    ops_per_thread: int,
    threads: int = 8,
    phases: int = 4,
    window_lines: int = 16,
    shared_frac: float = 0.2,
) -> MemTrace:
    """Phase-shifting working sets with a small shared overlap.

    Each phase, thread ``t`` works a fresh private window of
    ``window_lines`` lines; a ``shared_frac`` slice of its accesses hits
    that phase's common window instead (write-mostly, so phase churn
    generates real coherence turnover, not just capacity misses).
    """
    trace = MemTrace(name=f"phase(phases={phases})")
    per_phase = max(1, ops_per_thread // phases)
    shared_base_line = threads * phases * window_lines
    for phase in range(phases):
        for _ in range(per_phase):
            for thread in range(threads):
                if rng.random() < shared_frac:
                    line = shared_base_line + phase * window_lines \
                        + rng.randrange(window_lines)
                    kind = K_STORE if rng.random() < 0.5 else K_LOAD
                else:
                    line = (thread * phases + phase) * window_lines \
                        + rng.randrange(window_lines)
                    kind = K_STORE if rng.random() < 0.3 else K_LOAD
                trace.append(thread, kind, line * LINE, 8)
    return trace


#: generator registry: kind -> callable(rng, ops_per_thread, **knobs)
GENERATORS: Dict[str, Callable[..., MemTrace]] = {
    "zipf": gen_zipf,
    "rwmix": gen_rwmix,
    "ring": gen_ring,
    "falseshare": gen_falseshare,
    "phase": gen_phase,
}


def make_trace(
    kind: str, seed: int = 42, ops_per_thread: int = SCALES["test"], **knobs
) -> MemTrace:
    """Build one synthetic trace with explicit knobs (CLI ``synth`` path).

    Unknown kinds and unknown knob names raise :class:`ConfigError`
    (operational error, CLI exit 2).
    """
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown synthetic workload {kind!r}; "
            f"choose from {sorted(GENERATORS)}"
        ) from None
    try:
        return generator(random.Random(seed), ops_per_thread, **knobs)
    except TypeError as exc:
        raise ConfigError(
            f"bad knob for synthetic workload {kind!r}: {exc}"
        ) from None


def _synth_benchmark(kind: str, description: str, **knobs) -> Benchmark:
    generator = GENERATORS[kind]

    def build(rng: random.Random, scale: int) -> MemTrace:
        return generator(rng, scale, **knobs)

    return Benchmark(
        name=f"synth-{kind}",
        build=build,
        root_task=trace_root_task,
        reference=lambda workload: workload.checksum(),
        scales=dict(SCALES),
        description=description,
    )


#: the registered synthetic benchmarks — standard Benchmark objects that
#: run/bench/verify/record/replay accept exactly like the paper kernels.
SYNTH_WORKLOADS: Dict[str, Benchmark] = {
    bench.name: bench
    for bench in (
        _synth_benchmark(
            "zipf", "Zipfian key-popularity cache traffic (skew 1.2)"
        ),
        _synth_benchmark(
            "rwmix", "uniform keys, 30% writes (rw-mix sweep anchor)"
        ),
        _synth_benchmark(
            "ring", "producer/consumer rings with RMW head/tail counters"
        ),
        _synth_benchmark(
            "falseshare", "8 threads' counters packed into shared lines"
        ),
        _synth_benchmark(
            "phase", "phase-shifting working sets with shared overlap"
        ),
    )
}

#: the subset pinned in the golden digest corpus (4 x all protocols)
GOLDEN_SYNTH = ("synth-zipf", "synth-rwmix", "synth-ring", "synth-falseshare")
