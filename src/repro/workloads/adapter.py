"""Run any :class:`MemTrace` through the simulator as a standard benchmark.

The adapter turns a logical memory trace into the same ``Benchmark``
object the 14 paper kernels use, so every existing consumer —
``run_benchmark``, the conformance harness, ``record``/``replay``,
``bench``, the golden corpus — accepts it unchanged:

* one simulated task is forked per distinct trace thread (via
  ``ctx.par``, i.e. the normal fork-join scheduler path);
* each task replays its thread's ops in program order as raw
  ``LoadOp``/``StoreOp``/``RmwOp`` accesses at ``TRACE_ADDR_BASE +
  addr`` (``heap=None``: trace addresses are foreign to the managed
  heap, so the disentanglement checker and race detector — which reason
  about HLPL heap objects — do not apply);
* accesses that span cache blocks are split at block boundaries (the
  engine contract is one block per scalar op), preserving the byte
  footprint exactly;
* the run "result" is the trace checksum, recomputed per-thread inside
  the simulated tasks and combined order-independently, so engine and
  replay paths agree bit-for-bit and ``reference`` is trivially the
  host-side checksum.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.common import Benchmark
from repro.sim.ops import LoadOp, RmwOp, StoreOp
from repro.workloads.memtrace import K_LOAD, K_STORE, MemTrace, _MASK64

#: trace addresses live far above any sbrk'd heap page (base 0x1_0000);
#: offsetting by 4 GiB guarantees external addresses never alias runtime
#: allocations regardless of workload size.
TRACE_ADDR_BASE = 1 << 32


def _thread_body(trace: MemTrace, thread: int):
    """Build the ``(ctx) -> generator`` thunk replaying one trace thread."""

    ops = trace.by_thread()[thread]

    def body(ctx):
        block_size = ctx.rt.machine.config.block_size
        for kind, addr, size in ops:
            base = TRACE_ADDR_BASE + addr
            remaining = max(size, 1)
            offset = 0
            while remaining > 0:
                at = base + offset
                chunk = min(remaining, block_size - at % block_size)
                if kind == K_LOAD:
                    yield LoadOp(at, chunk, heap=None)
                elif kind == K_STORE:
                    yield StoreOp(at, chunk, heap=None)
                else:
                    yield RmwOp(at, chunk, heap=None)
                offset += chunk
                remaining -= chunk
        return trace.thread_checksum(thread)
        yield  # pragma: no cover - keeps zero-op bodies generators

    return body


def trace_root_task(ctx, trace: MemTrace):
    """Fork-join root task replaying every thread of ``trace``."""
    threads = trace.threads()
    results = yield from ctx.par(
        *[_thread_body(trace, thread) for thread in threads]
    )
    total = 0
    for thread, digest in zip(threads, results):
        total = (total + (thread + 1) * digest) & _MASK64
    return total


def benchmark_from_trace(
    trace: MemTrace,
    name: str,
    description: str = "",
    scales: Optional[Dict[str, int]] = None,
) -> Benchmark:
    """Wrap a fixed ``MemTrace`` as a :class:`Benchmark`.

    External traces have one inherent size, so every named scale maps to
    the same workload; ``build`` ignores the rng — the trace *is* the
    input, already fully determined.
    """
    return Benchmark(
        name=name,
        build=lambda rng, scale: trace,
        root_task=trace_root_task,
        reference=lambda workload: workload.checksum(),
        scales=scales or {"test": 0, "small": 0, "default": 0},
        description=description or f"ingested trace ({len(trace)} ops)",
    )
