"""Logical memory-access traces: the common front-end representation.

A :class:`MemTrace` is a flat, ordered list of ``(thread, kind, addr,
size)`` rows — the protocol-agnostic description of a workload's memory
behaviour.  Both workload front ends produce one: the text-trace loader
(:func:`parse_trace_text` / :func:`load_trace_file`) and the synthetic
generators (:mod:`repro.workloads.synth`).  The adapter in
:mod:`repro.workloads.adapter` then runs any ``MemTrace`` through the
full simulator stack as a standard benchmark.

Text format (the ``thread op address [size]`` family used by
directory-protocol coursework and trace tools)::

    # comments run to end of line ('#' or '//'); blank lines are skipped
    0 R 0x10040        # thread 0 loads 8 bytes at 0x10040
    p1 W 65600 4       # thread 1 ('p'/'t'/'c' prefixes accepted) stores 4B
    2 RMW 0x100a0      # thread 2 atomic read-modify-write

* **thread** — non-negative decimal, optionally prefixed ``p``/``t``/``c``
  (processor/thread/core spellings); at most :data:`MAX_TRACE_THREADS`
  distinct ids.
* **op** — case-insensitive: ``R``/``L``/``LD``/``RD``/``READ``/``LOAD``
  for loads, ``W``/``S``/``ST``/``WR``/``WRITE``/``STORE`` for stores,
  ``A``/``RMW``/``ATOMIC`` for atomics.
* **address** — ``0x``-prefixed hex or plain decimal.  Mixed radix
  (decimal with hex digits, malformed hex) is rejected, never guessed.
* **size** — optional byte count in ``[1, MAX_ACCESS_SIZE]``; default 8.

Every rejection carries a ``file:line: reason`` diagnostic via
:class:`TraceFormatError` so CLI consumers can exit 2 with a pointer at
the offending line instead of a traceback.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ReproError

#: op-kind codes (match repro.replay.trace AT_* by design)
K_LOAD = 0
K_STORE = 1
K_RMW = 2

_KIND_NAMES = ("R", "W", "A")

#: accepted op mnemonics -> kind code
_OP_CODES = {
    "R": K_LOAD, "L": K_LOAD, "LD": K_LOAD, "RD": K_LOAD,
    "READ": K_LOAD, "LOAD": K_LOAD,
    "W": K_STORE, "S": K_STORE, "ST": K_STORE, "WR": K_STORE,
    "WRITE": K_STORE, "STORE": K_STORE,
    "A": K_RMW, "RMW": K_RMW, "ATOMIC": K_RMW,
}

#: hard caps keeping hostile/buggy inputs from exploding the simulator
MAX_TRACE_THREADS = 256
MAX_ACCESS_SIZE = 512

_MASK64 = (1 << 64) - 1


class TraceFormatError(ReproError):
    """A workload trace file (or text blob) failed to parse.

    ``str(exc)`` always reads ``<file>:<line>: <reason>`` so the CLI can
    surface the offending line directly (exit 2, never a traceback).
    """

    def __init__(self, source: str, lineno: int, reason: str) -> None:
        super().__init__(f"{source}:{lineno}: {reason}")
        self.source = source
        self.lineno = lineno
        self.reason = reason


class MemTrace:
    """One logical workload: ordered ``(thread, kind, addr, size)`` rows.

    Equality compares the op rows only — the ``name`` is a provenance
    label (source filename or generator id), not part of the workload.
    """

    __slots__ = ("ops", "name", "_by_thread")

    def __init__(
        self,
        ops: Optional[List[Tuple[int, int, int, int]]] = None,
        name: str = "trace",
    ) -> None:
        self.ops: List[Tuple[int, int, int, int]] = ops if ops is not None else []
        self.name = name
        self._by_thread: Optional[Dict[int, List[Tuple[int, int, int]]]] = None

    # ------------------------------------------------------------------
    def append(self, thread: int, kind: int, addr: int, size: int = 8) -> None:
        self.ops.append((thread, kind, addr, size))
        self._by_thread = None

    def __len__(self) -> int:
        return len(self.ops)

    def __eq__(self, other) -> bool:
        return isinstance(other, MemTrace) and self.ops == other.ops

    def __hash__(self):  # pragma: no cover - unhashable like a list
        raise TypeError("MemTrace is not hashable")

    # ------------------------------------------------------------------
    def threads(self) -> List[int]:
        """Distinct thread ids, ascending."""
        return sorted(self.by_thread())

    def by_thread(self) -> Dict[int, List[Tuple[int, int, int]]]:
        """``thread -> [(kind, addr, size), ...]`` preserving program order."""
        if self._by_thread is None:
            grouped: Dict[int, List[Tuple[int, int, int]]] = {}
            for thread, kind, addr, size in self.ops:
                grouped.setdefault(thread, []).append((kind, addr, size))
            self._by_thread = grouped
        return self._by_thread

    def counts(self) -> Tuple[int, int, int]:
        """``(loads, stores, rmws)`` over the whole trace."""
        loads = stores = rmws = 0
        for _, kind, _, _ in self.ops:
            if kind == K_LOAD:
                loads += 1
            elif kind == K_STORE:
                stores += 1
            else:
                rmws += 1
        return loads, stores, rmws

    def footprint(self, block_size: int = 64) -> Tuple[int, int]:
        """``(distinct blocks, shared blocks)`` at the given block size.

        A block is *shared* when more than one thread touches it — the
        headline number for how much coherence traffic to expect.
        """
        owners: Dict[int, int] = {}
        shared = set()
        for thread, _, addr, size in self.ops:
            lo = addr // block_size
            hi = (addr + max(size, 1) - 1) // block_size
            for block in range(lo, hi + 1):
                prev = owners.setdefault(block, thread)
                if prev != thread:
                    shared.add(block)
        return len(owners), len(shared)

    # ------------------------------------------------------------------
    def thread_checksum(self, thread: int) -> int:
        """Order-sensitive FNV-1a over one thread's op stream."""
        h = 0xCBF29CE484222325
        for kind, addr, size in self.by_thread().get(thread, ()):
            for word in (kind, addr, size):
                h = ((h ^ (word & _MASK64)) * 0x100000001B3) & _MASK64
        return h

    def checksum(self) -> int:
        """Deterministic workload checksum (the adapter's run "result").

        Combines per-thread stream hashes order-independently across
        threads, so the value never depends on scheduler interleaving.
        """
        total = 0
        for thread in self.threads():
            total = (total + (thread + 1) * self.thread_checksum(thread)) & _MASK64
        return total

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Canonical text serialisation; ``parse_trace_text`` round-trips it."""
        lines = [
            f"# warden-repro memory trace: {self.name}",
            f"# {len(self.ops)} ops, {len(self.threads())} threads",
        ]
        for thread, kind, addr, size in self.ops:
            lines.append(f"{thread} {_KIND_NAMES[kind]} {addr:#x} {size}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

def _parse_int(
    text: str, source: str, lineno: int, what: str, allow_hex: bool
) -> int:
    """Strict radix-aware integer parse with a located diagnostic."""
    raw = text
    negative = raw.startswith("-")
    if allow_hex and raw.lower().startswith("0x"):
        digits = raw[2:]
        if not digits or any(c not in "0123456789abcdefABCDEF" for c in digits):
            raise TraceFormatError(
                source, lineno, f"malformed hex {what} {raw!r}"
            )
        value = int(digits, 16)
    else:
        if not raw.isdigit():
            reason = (
                f"mixed-radix or malformed {what} {raw!r}"
                if any(c.isalpha() for c in raw) and not negative
                else f"malformed {what} {raw!r}"
            )
            raise TraceFormatError(source, lineno, reason)
        value = int(raw, 10)
    if negative or value < 0:  # isdigit() already rejects '-', belt+braces
        raise TraceFormatError(source, lineno, f"negative {what} {raw!r}")
    return value


def parse_trace_text(
    text: str, source: str = "<string>"
) -> MemTrace:
    """Parse the ``thread op address [size]`` text format into a trace.

    Raises :class:`TraceFormatError` (with ``source:line``) on the first
    malformed line; an empty trace (zero op rows) is also an error.
    """
    trace = MemTrace(name=source)
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) not in (3, 4):
            raise TraceFormatError(
                source, lineno,
                f"expected 'thread op address [size]', got {len(fields)} "
                f"field(s): {raw_line.strip()!r}",
            )
        thread_text = fields[0]
        if thread_text[:1] in ("p", "P", "t", "T", "c", "C") and thread_text[1:]:
            thread_text = thread_text[1:]
        thread = _parse_int(
            thread_text, source, lineno, "thread id", allow_hex=False
        )
        op = fields[1].upper()
        kind = _OP_CODES.get(op)
        if kind is None:
            raise TraceFormatError(
                source, lineno,
                f"unknown op {fields[1]!r} (expected one of "
                f"{'/'.join(sorted(set(_OP_CODES)))})",
            )
        addr = _parse_int(fields[2], source, lineno, "address", allow_hex=True)
        size = 8
        if len(fields) == 4:
            size = _parse_int(fields[3], source, lineno, "size", allow_hex=False)
            if not 1 <= size <= MAX_ACCESS_SIZE:
                raise TraceFormatError(
                    source, lineno,
                    f"size {size} outside [1, {MAX_ACCESS_SIZE}]",
                )
        trace.append(thread, kind, addr, size)
        if len(trace.by_thread()) > MAX_TRACE_THREADS:
            raise TraceFormatError(
                source, lineno,
                f"more than {MAX_TRACE_THREADS} distinct thread ids",
            )
    if not trace.ops:
        raise TraceFormatError(
            source, max(1, text.count("\n") + (0 if text.endswith("\n") or not text else 1)),
            "trace contains no memory operations",
        )
    return trace


def load_trace_file(path: str) -> MemTrace:
    """Read and parse one text trace file.

    Unreadable files surface as :class:`TraceFormatError` at line 0 so
    every ingestion failure funnels through one exception type.
    """
    try:
        with open(path, "r", encoding="utf-8", errors="strict") as handle:
            text = handle.read()
    except OSError as exc:
        raise TraceFormatError(str(path), 0, f"cannot read trace: {exc}") from None
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            str(path), 0, f"not a text trace (binary or non-UTF-8 data: {exc})"
        ) from None
    trace = parse_trace_text(text, source=str(path))
    return trace


def iter_lines(ops: Iterable[Tuple[int, int, int, int]]) -> Iterable[str]:
    """Render op rows as canonical text lines (no header) — test helper."""
    for thread, kind, addr, size in ops:
        yield f"{thread} {_KIND_NAMES[kind]} {addr:#x} {size}"
