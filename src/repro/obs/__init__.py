"""Observability: event tracing, collectors, and exporters.

``repro.obs`` is the event-level counterpart of :mod:`repro.common.stats`:
where the stats are end-of-run aggregates (what the paper's figures plot),
this subsystem records *when and where* coherence events happen — the
timeline needed to find and prove performance wins.

Typical use::

    from repro.obs import RingBufferSink, write_chrome_trace

    sink = RingBufferSink(capacity=500_000)
    machine.tracer.install(sink)
    ... run ...
    write_chrome_trace("trace.json", sink.events(), machine.config)
"""

from repro.obs.collect import (
    LatencyHistogram,
    MultiSink,
    PhaseHistogram,
    RegionProfile,
    RingBufferSink,
)
from repro.obs.export import (
    append_manifest,
    chrome_trace,
    chrome_trace_events,
    flame_summary,
    manifest_json,
    run_manifest,
    version_metadata,
    write_chrome_trace,
)
from repro.obs.tracer import (
    AccessEvent,
    EvictionEvent,
    EVENT_TYPES,
    ListSink,
    MatrixEvent,
    MessageEvent,
    NullSink,
    ReconcileEvent,
    RegionEvent,
    StealEvent,
    StoreBufferEvent,
    StrandEvent,
    Tracer,
    TransitionEvent,
)

__all__ = [
    "AccessEvent",
    "EVENT_TYPES",
    "EvictionEvent",
    "LatencyHistogram",
    "ListSink",
    "MatrixEvent",
    "MessageEvent",
    "MultiSink",
    "NullSink",
    "PhaseHistogram",
    "ReconcileEvent",
    "RegionEvent",
    "RegionProfile",
    "RingBufferSink",
    "StealEvent",
    "StoreBufferEvent",
    "StrandEvent",
    "Tracer",
    "TransitionEvent",
    "append_manifest",
    "chrome_trace",
    "chrome_trace_events",
    "flame_summary",
    "manifest_json",
    "run_manifest",
    "version_metadata",
    "write_chrome_trace",
]
