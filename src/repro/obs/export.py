"""Exporters: Chrome trace-event JSON, JSONL run manifests, flame summary.

* :func:`chrome_trace` converts a recorded event list into the Chrome
  trace-event format (the ``{"traceEvents": [...]}`` flavour), loadable in
  Perfetto / ``chrome://tracing``.  Layout: one track per hardware thread
  (process ``threads``) carrying access slices, store-buffer stalls and
  steal probes, plus a dedicated ``coherence`` track carrying protocol
  events (messages, transitions, reconciliations, WARD region slices).
  Timestamps are simulated cycles reported in the ``ts`` microsecond field
  (1 cycle == 1 "us"), which Perfetto renders fine for relative analysis.

* :func:`run_manifest` builds the structured JSONL manifest for one run:
  machine config + full ``RunStats.to_dict()`` + version metadata.  One
  manifest is one JSON object on one line (append-friendly).

* :func:`flame_summary` renders a folded-stack ("flame-style") text view of
  where simulated cycles went, from the recorded access events.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Optional

from repro.common.config import MachineConfig
from repro.obs.tracer import (
    AccessEvent,
    EvictionEvent,
    MessageEvent,
    ReconcileEvent,
    RegionEvent,
    StealEvent,
    StoreBufferEvent,
    StrandEvent,
    TransitionEvent,
)

#: synthetic process ids for the two track groups
PID_THREADS = 1
PID_COHERENCE = 2
#: the single coherence track's thread id
TID_COHERENCE = 0

MANIFEST_SCHEMA = "warden-repro/run-manifest/v1"


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def _metadata(events: List[dict], num_threads: int) -> None:
    events.append({
        "name": "process_name", "ph": "M", "ts": 0,
        "pid": PID_THREADS, "tid": 0, "args": {"name": "hardware threads"},
    })
    events.append({
        "name": "process_name", "ph": "M", "ts": 0,
        "pid": PID_COHERENCE, "tid": TID_COHERENCE,
        "args": {"name": "coherence"},
    })
    events.append({
        "name": "thread_name", "ph": "M", "ts": 0,
        "pid": PID_COHERENCE, "tid": TID_COHERENCE,
        "args": {"name": "protocol events"},
    })
    for t in range(num_threads):
        events.append({
            "name": "thread_name", "ph": "M", "ts": 0,
            "pid": PID_THREADS, "tid": t, "args": {"name": f"thread {t}"},
        })


def chrome_trace_events(
    events: Iterable, config: Optional[MachineConfig] = None
) -> List[dict]:
    """Convert tracer events into a list of Chrome trace-event dicts."""
    out: List[dict] = []
    threads_seen = set()
    #: region_id -> the "add" trace event's ts, for slice pairing
    region_opened: dict = {}
    for ev in events:
        cls = type(ev)
        if cls is AccessEvent:
            threads_seen.add(ev.thread)
            out.append({
                "name": ev.atype, "ph": "X", "ts": ev.cycle,
                "dur": max(ev.latency, 1), "pid": PID_THREADS,
                "tid": ev.thread,
                "args": {"addr": hex(ev.addr), "size": ev.size},
            })
        elif cls is MessageEvent:
            out.append({
                "name": f"msg:{ev.mtype}", "ph": "i", "s": "t",
                "ts": ev.cycle, "pid": PID_COHERENCE, "tid": TID_COHERENCE,
                "args": {"link": ev.link, "count": ev.count},
            })
        elif cls is TransitionEvent:
            out.append({
                "name": f"{ev.old}->{ev.new}", "ph": "i", "s": "t",
                "ts": ev.cycle, "pid": PID_COHERENCE, "tid": TID_COHERENCE,
                "args": {"site": ev.site, "addr": hex(ev.addr)},
            })
        elif cls is RegionEvent:
            if ev.action == "add":
                region_opened[ev.region_id] = ev.cycle
                continue
            if ev.action == "remove":
                start_ts = region_opened.pop(ev.region_id, ev.cycle)
                out.append({
                    "name": f"WARD region {ev.region_id}", "ph": "X",
                    "ts": start_ts, "dur": max(ev.cycle - start_ts, 1),
                    "pid": PID_COHERENCE, "tid": TID_COHERENCE,
                    "args": {
                        "start": hex(ev.start), "end": hex(ev.end),
                        "blocks_reconciled": ev.blocks,
                        "reconcile_cycles": ev.reconcile_cycles,
                    },
                })
            else:  # reject
                out.append({
                    "name": "WARD region rejected", "ph": "i", "s": "t",
                    "ts": ev.cycle, "pid": PID_COHERENCE,
                    "tid": TID_COHERENCE,
                    "args": {"start": hex(ev.start), "end": hex(ev.end)},
                })
        elif cls is ReconcileEvent:
            out.append({
                "name": "reconcile", "ph": "i", "s": "t", "ts": ev.cycle,
                "pid": PID_COHERENCE, "tid": TID_COHERENCE,
                "args": {
                    "addr": hex(ev.addr), "copies": ev.copies,
                    "true_sharing": ev.true_sharing,
                    "writebacks": ev.writebacks,
                },
            })
        elif cls is EvictionEvent:
            out.append({
                "name": f"evict:{ev.cache}", "ph": "i", "s": "t",
                "ts": ev.cycle, "pid": PID_COHERENCE, "tid": TID_COHERENCE,
                "args": {"addr": hex(ev.addr), "state": ev.state},
            })
        elif cls is StoreBufferEvent:
            threads_seen.add(ev.thread)
            out.append({
                "name": f"sb-{ev.cause}", "ph": "X", "ts": ev.cycle,
                "dur": max(ev.stall_cycles, 1), "pid": PID_THREADS,
                "tid": ev.thread, "args": {"occupancy": ev.occupancy},
            })
        elif cls is StealEvent:
            threads_seen.add(ev.thief)
            out.append({
                "name": "steal" if ev.success else "steal-miss",
                "ph": "i", "s": "t", "ts": ev.cycle, "pid": PID_THREADS,
                "tid": ev.thief, "args": {"victim": ev.victim},
            })
        elif cls is StrandEvent:
            threads_seen.add(ev.thread)
            out.append({
                "name": f"strand-{ev.action}", "ph": "i", "s": "t",
                "ts": ev.cycle, "pid": PID_THREADS, "tid": ev.thread,
                "args": {"task": ev.task_id},
            })
    # Regions still open when the trace ended: emit as instants.
    for region_id, ts in region_opened.items():
        out.append({
            "name": f"WARD region {region_id} (open)", "ph": "i", "s": "t",
            "ts": ts, "pid": PID_COHERENCE, "tid": TID_COHERENCE, "args": {},
        })
    num_threads = (
        config.num_threads if config is not None
        else (max(threads_seen) + 1 if threads_seen else 0)
    )
    meta: List[dict] = []
    _metadata(meta, num_threads)
    return meta + out


def chrome_trace(
    events: Iterable, config: Optional[MachineConfig] = None,
    extra: Optional[dict] = None,
) -> dict:
    """The full Chrome trace JSON object for a recorded event stream."""
    other = {"timeUnit": "cycles (1 cycle rendered as 1us)"}
    if extra:
        other.update(extra)
    return {
        "traceEvents": chrome_trace_events(events, config),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path, events: Iterable, config: Optional[MachineConfig] = None,
    extra: Optional[dict] = None,
) -> int:
    """Write the trace JSON to ``path``; returns the event count written."""
    trace = chrome_trace(events, config, extra)
    Path(path).write_text(json.dumps(trace), encoding="utf-8")
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# JSONL run manifests
# ----------------------------------------------------------------------

def _git_revision() -> Optional[str]:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if rev.returncode != 0:
        return None
    return rev.stdout.strip() or None


def version_metadata() -> dict:
    """Best-effort provenance block for manifests (never raises)."""
    try:
        from repro import __version__ as version
    except ImportError:  # pragma: no cover - repro is always importable here
        version = None
    return {
        "repro_version": version,
        "python": platform.python_version(),
        "platform": sys.platform,
        "git_revision": _git_revision(),
    }


def config_dict(config: MachineConfig) -> dict:
    return dataclasses.asdict(config)


def run_manifest(
    result,
    config: Optional[MachineConfig] = None,
    robustness: Optional[dict] = None,
) -> dict:
    """Structured manifest for one :class:`~repro.analysis.run.BenchResult`.

    ``robustness`` (typically ``MatrixReport.to_dict()``) records what the
    fault-tolerant run matrix had to survive to produce the result —
    retries, timeouts, pool respawns, serial fallback, resumed tasks.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "benchmark": result.benchmark,
        "protocol": result.protocol,
        "machine": result.machine,
        "size": result.size,
        "ward_checked": result.ward_checked,
        "stats": result.stats.to_dict(),
        "meta": version_metadata(),
    }
    if config is not None:
        manifest["config"] = config_dict(config)
    if robustness is not None:
        manifest["robustness"] = robustness
    return manifest


def manifest_json(manifest: dict) -> str:
    """One manifest as one JSON line (JSONL-append friendly)."""
    return json.dumps(manifest, sort_keys=True, default=str)


def append_manifest(path, manifest: dict) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(manifest_json(manifest) + "\n")


# ----------------------------------------------------------------------
# Flame-style text summary
# ----------------------------------------------------------------------

def _latency_class(latency: int, config: Optional[MachineConfig]) -> str:
    """Coarse classification of an access by its latency."""
    if config is None:
        return f"lat<{1 << latency.bit_length()}"
    private = config.l1.latency + config.l2.latency
    on_die = private + 2 * config.hop_intra_latency + config.l3.latency
    cross = config.cross_socket_latency()
    if latency <= private:
        return "private-hit"
    if latency < cross:
        return "on-die" if latency <= on_die + config.dram_latency else "on-die+dram"
    return "cross-socket"


def flame_summary(
    events: Iterable, config: Optional[MachineConfig] = None,
    width: int = 60,
) -> str:
    """Folded-stack summary of where simulated cycles went.

    Each line is ``stack;frames  cycles  count`` ordered by cycles spent,
    with a proportional bar — the text analogue of a flame graph.
    """
    cycles: Counter = Counter()
    counts: Counter = Counter()
    for ev in events:
        cls = type(ev)
        if cls is AccessEvent:
            stack = f"access;{ev.atype};{_latency_class(ev.latency, config)}"
            cycles[stack] += ev.latency
            counts[stack] += 1
        elif cls is StoreBufferEvent:
            stack = f"store-buffer;{ev.cause}"
            cycles[stack] += ev.stall_cycles
            counts[stack] += 1
        elif cls is StealEvent:
            stack = f"steal;{'hit' if ev.success else 'miss'}"
            counts[stack] += 1
        elif cls is MessageEvent:
            counts[f"message;{ev.link};{ev.mtype}"] += ev.count
        elif cls is ReconcileEvent:
            counts["reconcile"] += 1
    if not counts:
        return "flame summary: no events recorded"
    total = sum(cycles.values()) or 1
    lines = []
    ordered = sorted(
        counts, key=lambda s: (cycles.get(s, 0), counts[s]), reverse=True
    )
    stack_w = max(len(s) for s in ordered)
    for stack in ordered:
        cyc = cycles.get(stack, 0)
        bar = "#" * max(1, round(cyc / total * width)) if cyc else ""
        lines.append(
            f"{stack.ljust(stack_w)}  {cyc:>12} cyc  {counts[stack]:>10} ev  {bar}"
        )
    return "\n".join(lines)
