"""Typed coherence-event bus: zero overhead when no sink is installed.

The simulator's hot paths (every memory access, every coherence message)
carry a :class:`Tracer` reference.  With no sink installed the tracer is
*disabled* and every instrumentation site pays exactly one attribute check
(``if tracer.enabled:``) — no event objects are built, no calls are made.
Installing a sink (see :mod:`repro.obs.collect`) flips ``enabled`` and every
site starts emitting typed event objects into it.

Event taxonomy (mirroring what the paper measures):

* :class:`AccessEvent`        — one memory access with its latency
  (per-thread timeline; the Fig. 11 IPC story).
* :class:`TransitionEvent`    — a cache/directory block state change
  (the Fig. 5 FSA in motion: Inv, downgrades, W entries).
* :class:`MessageEvent`       — one coherence message by link class
  (the traffic behind the Fig. 7b/8b energy results).
* :class:`EvictionEvent`      — a private-cache eviction (capacity traffic).
* :class:`RegionEvent`        — WARD region add/remove/reject (§4.2/§6.1).
* :class:`ReconcileEvent`     — one W block reconciled at region removal
  (§5.2: no/false/true sharing classification).
* :class:`StoreBufferEvent`   — a TSO store-buffer stall or fence drain
  (the Fig. 10 "invalidations are hidden" mechanism).
* :class:`StealEvent`         — a work-stealing probe (scheduler traffic).
* :class:`StrandEvent`        — strand (task) completion on a worker.

Timestamps are core-clock cycles of the *issuing* hardware thread.  The
machine stamps the tracer's ``cycle``/``thread`` context at each access and
region instruction, so protocol-internal sites need no clock plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar


# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------

@dataclass(slots=True)
class AccessEvent:
    """One load/store/RMW: start cycle, issuing thread, and latency."""

    kind: ClassVar[str] = "access"
    cycle: int
    thread: int
    atype: str
    addr: int
    size: int
    latency: int


@dataclass(slots=True)
class TransitionEvent:
    """A block changed coherence state at ``site`` (``L2-3``, ``dir-0``…)."""

    kind: ClassVar[str] = "transition"
    cycle: int
    site: str
    addr: int
    old: str
    new: str


@dataclass(slots=True)
class MessageEvent:
    """One coherence message on the interconnect, by link class."""

    kind: ClassVar[str] = "message"
    cycle: int
    mtype: str
    link: str
    count: int


@dataclass(slots=True)
class EvictionEvent:
    """A (valid) block left a cache to make room."""

    kind: ClassVar[str] = "evict"
    cycle: int
    cache: str
    addr: int
    state: str


@dataclass(slots=True)
class RegionEvent:
    """A WARD region instruction: ``add``, ``remove``, or ``reject``."""

    kind: ClassVar[str] = "region"
    cycle: int
    thread: int
    action: str
    region_id: int
    start: int
    end: int
    #: blocks reconciled (``remove`` only)
    blocks: int = 0
    #: directory cycles spent reconciling (``remove`` only)
    reconcile_cycles: int = 0


@dataclass(slots=True)
class ReconcileEvent:
    """One W block merged back to MESI at region removal (§5.2)."""

    kind: ClassVar[str] = "reconcile"
    cycle: int
    addr: int
    region_id: int
    copies: int
    true_sharing: bool
    writebacks: int


@dataclass(slots=True)
class StoreBufferEvent:
    """The TSO store buffer stalled the thread (``full``) or drained at an
    atomic (``fence``)."""

    kind: ClassVar[str] = "store_buffer"
    cycle: int
    thread: int
    cause: str
    stall_cycles: int
    occupancy: int


@dataclass(slots=True)
class StealEvent:
    """One work-stealing probe by ``thief`` against ``victim``'s deque."""

    kind: ClassVar[str] = "steal"
    cycle: int
    thief: int
    victim: int
    success: bool


@dataclass(slots=True)
class StrandEvent:
    """A strand finished on ``thread`` (``action`` currently ``finish``)."""

    kind: ClassVar[str] = "strand"
    cycle: int
    thread: int
    action: str
    task_id: int


@dataclass(slots=True)
class MatrixEvent:
    """A run-matrix robustness event (host-side, not simulated time).

    ``action`` is one of ``retry``, ``timeout``, ``respawn``, ``fallback``,
    ``resume``, or ``fault``; ``task_index`` is the position in the matrix
    (-1 for matrix-wide events) and ``attempt`` the 0-based attempt number.
    ``cycle`` is always 0 — these events happen in wall-clock, outside any
    machine's simulated clock — but the field keeps the event shape uniform
    for collectors that bin by cycle.
    """

    kind: ClassVar[str] = "matrix"
    cycle: int
    action: str
    task_index: int
    attempt: int
    detail: str = ""


@dataclass(slots=True)
class ReplayEvent:
    """A trace record/replay lifecycle event (see :mod:`repro.replay`).

    ``action`` is ``record-start``/``record-done``/``trace-hit``/
    ``replay-start``/``replay-done``; ``events`` is the trace length (0
    while unknown).  ``cycle`` is always 0 — like :class:`MatrixEvent`,
    these are host-side events outside any machine's simulated clock, and
    the field only keeps the event shape uniform for collectors.
    """

    kind: ClassVar[str] = "replay"
    cycle: int
    action: str
    benchmark: str
    protocol: str
    events: int = 0
    detail: str = ""


@dataclass(slots=True)
class RaceEvent:
    """A happens-before detector finding (see :mod:`repro.verify.race`).

    ``action`` is ``race`` (true race), ``benign-waw`` (condition-2 pair
    inside a shared region epoch), or ``atomic`` (RMW/RMW).  ``race_kind``
    refines races into ``raw``/``war``/``waw``.  ``task_a``/``task_b`` are
    spawn-tree paths of the two concurrent tasks; ``region_ids`` the
    comma-joined logical region ids shared by the pair (empty outside).
    """

    kind: ClassVar[str] = "race"
    cycle: int
    action: str
    race_kind: str
    addr: int
    task_a: str
    task_b: str
    region_ids: str = ""


EVENT_TYPES = (
    AccessEvent,
    TransitionEvent,
    MessageEvent,
    EvictionEvent,
    RegionEvent,
    ReconcileEvent,
    StoreBufferEvent,
    StealEvent,
    StrandEvent,
    MatrixEvent,
    ReplayEvent,
    RaceEvent,
)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class NullSink:
    """Discards everything (the default; never actually called because
    instrumentation sites check ``tracer.enabled`` first)."""

    def emit(self, event) -> None:  # pragma: no cover - by-construction dead
        pass


NULL_SINK = NullSink()


class ListSink:
    """Unbounded in-memory sink (tests / tiny runs).  For real runs prefer
    :class:`repro.obs.collect.RingBufferSink`."""

    def __init__(self) -> None:
        self.events: list = []
        self.emit = self.events.append  # bound-method fast path

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------

class Tracer:
    """Event bus shared by one :class:`~repro.sim.machine.Machine`.

    ``cycle`` and ``thread`` form the *emission context*: the machine sets
    them when it charges an access or region instruction to a thread, so
    deeper layers (protocol, directory, interconnect, caches) timestamp
    events without holding clock references.
    """

    __slots__ = ("enabled", "sink", "cycle", "thread")

    def __init__(self) -> None:
        self.enabled = False
        self.sink = NULL_SINK
        self.cycle = 0
        self.thread = 0

    # -- lifecycle ------------------------------------------------------
    def install(self, sink) -> None:
        """Attach a sink and enable every instrumentation site."""
        self.sink = sink
        self.enabled = True

    def uninstall(self) -> None:
        self.sink = NULL_SINK
        self.enabled = False

    # -- emission helpers (call only behind an ``enabled`` check) -------
    def access(
        self, cycle: int, thread: int, atype: str, addr: int, size: int,
        latency: int,
    ) -> None:
        self.sink.emit(AccessEvent(cycle, thread, atype, addr, size, latency))

    def transition(self, site: str, addr: int, old: str, new: str) -> None:
        self.sink.emit(TransitionEvent(self.cycle, site, addr, old, new))

    def message(self, mtype: str, link: str, count: int = 1) -> None:
        self.sink.emit(MessageEvent(self.cycle, mtype, link, count))

    def eviction(self, cache: str, addr: int, state: str) -> None:
        self.sink.emit(EvictionEvent(self.cycle, cache, addr, state))

    def region(
        self, action: str, region_id: int, start: int, end: int,
        blocks: int = 0, reconcile_cycles: int = 0,
    ) -> None:
        self.sink.emit(RegionEvent(
            self.cycle, self.thread, action, region_id, start, end,
            blocks, reconcile_cycles,
        ))

    def reconcile(
        self, addr: int, region_id: int, copies: int, true_sharing: bool,
        writebacks: int,
    ) -> None:
        self.sink.emit(ReconcileEvent(
            self.cycle, addr, region_id, copies, true_sharing, writebacks
        ))

    def store_buffer(
        self, cycle: int, thread: int, cause: str, stall_cycles: int,
        occupancy: int,
    ) -> None:
        self.sink.emit(StoreBufferEvent(
            cycle, thread, cause, stall_cycles, occupancy
        ))

    def steal(
        self, cycle: int, thief: int, victim: int, success: bool
    ) -> None:
        self.sink.emit(StealEvent(cycle, thief, victim, success))

    def strand(
        self, cycle: int, thread: int, action: str, task_id: int
    ) -> None:
        self.sink.emit(StrandEvent(cycle, thread, action, task_id))
