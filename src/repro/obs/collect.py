"""Event collectors: sinks that aggregate the tracer's stream in-flight.

Everything here implements the one-method sink protocol (``emit(event)``),
so collectors compose freely via :class:`MultiSink` and can be handed to
:meth:`repro.obs.tracer.Tracer.install` directly.

* :class:`RingBufferSink`   — bounded recorder (oldest events evicted) with
  optional 1-in-N sampling; feeds the Chrome-trace exporter.
* :class:`PhaseHistogram`   — event counts by kind per fixed-width cycle
  window ("phase"), showing *when* in the run coherence events cluster.
* :class:`LatencyHistogram` — log2-bucketed access-latency histogram per
  access type; feeds the flame-style summary.
* :class:`RegionProfile`    — per-WARD-region lifetime profile: cycles
  covered, blocks reconciled, true-sharing ratio (§5.2/§7.2 analysis).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Optional

from repro.obs.tracer import (
    AccessEvent,
    ReconcileEvent,
    RegionEvent,
)


class MultiSink:
    """Fan one event stream out to several collectors."""

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)

    def emit(self, event) -> None:
        for sink in self.sinks:
            sink.emit(event)


class RingBufferSink:
    """Keep the most recent ``capacity`` events, optionally sampled 1-in-N.

    ``sample_every=1`` records everything; ``sample_every=n`` keeps every
    n-th event (deterministic, no RNG, so traces are reproducible).
    ``dropped`` counts events evicted by the capacity bound; ``seen`` counts
    everything offered (pre-sampling).
    """

    def __init__(self, capacity: int = 1_000_000, sample_every: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.sample_every = sample_every
        self.buffer: deque = deque(maxlen=capacity)
        self.seen = 0
        self.dropped = 0

    def emit(self, event) -> None:
        self.seen += 1
        if self.sample_every > 1 and self.seen % self.sample_every:
            return
        if len(self.buffer) == self.capacity:
            self.dropped += 1
        self.buffer.append(event)

    def events(self) -> list:
        return list(self.buffer)

    def __len__(self) -> int:
        return len(self.buffer)


class PhaseHistogram:
    """Event counts by kind inside fixed-width cycle windows.

    A "phase" is ``[k * bin_cycles, (k+1) * bin_cycles)`` of simulated time;
    the histogram answers "when do the invalidations/reconciliations
    happen?" without storing the event stream.
    """

    def __init__(self, bin_cycles: int = 100_000) -> None:
        if bin_cycles <= 0:
            raise ValueError("bin_cycles must be positive")
        self.bin_cycles = bin_cycles
        #: phase index -> Counter of event kinds
        self.bins: Dict[int, Counter] = {}

    def emit(self, event) -> None:
        phase = event.cycle // self.bin_cycles
        counter = self.bins.get(phase)
        if counter is None:
            counter = self.bins[phase] = Counter()
        counter[event.kind] += 1

    def kinds(self) -> List[str]:
        seen = set()
        for counter in self.bins.values():
            seen.update(counter)
        return sorted(seen)

    def to_dict(self) -> dict:
        return {
            "bin_cycles": self.bin_cycles,
            "phases": {
                str(phase): dict(counter)
                for phase, counter in sorted(self.bins.items())
            },
        }

    def render(self) -> str:
        if not self.bins:
            return "phase histogram: no events"
        kinds = self.kinds()
        header = ["phase (cycles)"] + kinds
        lines = ["  ".join(h.rjust(12) for h in header)]
        for phase in sorted(self.bins):
            lo = phase * self.bin_cycles
            row = [f"{lo}+"] + [str(self.bins[phase].get(k, 0)) for k in kinds]
            lines.append("  ".join(c.rjust(12) for c in row))
        return "\n".join(lines)


class LatencyHistogram:
    """Log2-bucketed access-latency histogram per access type."""

    def __init__(self) -> None:
        #: (atype, bucket) -> count, where bucket b covers [2^(b-1), 2^b)
        self.buckets: Counter = Counter()
        self.total_cycles: Counter = Counter()
        self.total_count: Counter = Counter()

    def emit(self, event) -> None:
        if type(event) is not AccessEvent:
            return
        bucket = event.latency.bit_length()
        self.buckets[(event.atype, bucket)] += 1
        self.total_cycles[event.atype] += event.latency
        self.total_count[event.atype] += 1

    def to_dict(self) -> dict:
        return {
            "buckets": {
                f"{atype}|<{1 << bucket}": count
                for (atype, bucket), count in sorted(self.buckets.items())
            },
            "total_cycles": dict(self.total_cycles),
            "total_count": dict(self.total_count),
        }

    def render(self) -> str:
        if not self.total_count:
            return "latency histogram: no accesses"
        lines = []
        for atype in sorted(self.total_count):
            n = self.total_count[atype]
            cyc = self.total_cycles[atype]
            lines.append(
                f"{atype}: {n} accesses, {cyc} cycles "
                f"(avg {cyc / n:.1f})"
            )
            for (a, bucket), count in sorted(self.buckets.items()):
                if a != atype:
                    continue
                lo = 0 if bucket == 0 else 1 << (bucket - 1)
                hi = (1 << bucket) - 1
                bar = "#" * max(1, round(count / n * 40))
                lines.append(f"  {lo:>6}-{hi:<6} {count:>8}  {bar}")
        return "\n".join(lines)


class _RegionRecord:
    __slots__ = (
        "region_id", "start", "end", "add_cycle", "remove_cycle",
        "blocks", "reconcile_cycles", "reconciled", "shared",
        "true_sharing", "writebacks",
    )

    def __init__(self, region_id: int, start: int, end: int, add_cycle: int):
        self.region_id = region_id
        self.start = start
        self.end = end
        self.add_cycle = add_cycle
        self.remove_cycle: Optional[int] = None
        self.blocks = 0
        self.reconcile_cycles = 0
        self.reconciled = 0
        self.shared = 0
        self.true_sharing = 0
        self.writebacks = 0

    @property
    def lifetime(self) -> int:
        if self.remove_cycle is None:
            return 0
        return max(self.remove_cycle - self.add_cycle, 0)


class RegionProfile:
    """Per-WARD-region lifetime profile (§4.2 marking in motion).

    For every region this tracks the cycles it was active ("WARD-covered"),
    how many blocks its removal reconciled, and how many of those showed
    multi-sharer / true-sharing behaviour — the §5.2 classification.
    """

    def __init__(self, keep_records: int = 10_000) -> None:
        self.keep_records = keep_records
        self._open: Dict[int, _RegionRecord] = {}
        self.closed: List[_RegionRecord] = []
        self.rejected = 0
        self.regions_opened = 0
        self.regions_closed = 0
        self.covered_cycles = 0
        self.blocks_reconciled = 0
        self.shared_blocks = 0
        self.true_sharing_blocks = 0

    def emit(self, event) -> None:
        cls = type(event)
        if cls is RegionEvent:
            if event.action == "add":
                self.regions_opened += 1
                self._open[event.region_id] = _RegionRecord(
                    event.region_id, event.start, event.end, event.cycle
                )
            elif event.action == "remove":
                record = self._open.pop(event.region_id, None)
                if record is None:
                    return
                record.remove_cycle = event.cycle
                record.blocks = event.blocks
                record.reconcile_cycles = event.reconcile_cycles
                self.regions_closed += 1
                self.covered_cycles += record.lifetime
                if len(self.closed) < self.keep_records:
                    self.closed.append(record)
            else:  # "reject": the region CAM was full
                self.rejected += 1
        elif cls is ReconcileEvent:
            self.blocks_reconciled += 1
            record = self._open.get(event.region_id)
            if record is not None:
                record.reconciled += 1
                record.writebacks += event.writebacks
            if event.copies > 1:
                self.shared_blocks += 1
                if record is not None:
                    record.shared += 1
            if event.true_sharing:
                self.true_sharing_blocks += 1
                if record is not None:
                    record.true_sharing += 1

    @property
    def true_sharing_ratio(self) -> float:
        if not self.blocks_reconciled:
            return 0.0
        return self.true_sharing_blocks / self.blocks_reconciled

    def to_dict(self) -> dict:
        return {
            "regions_opened": self.regions_opened,
            "regions_closed": self.regions_closed,
            "regions_rejected": self.rejected,
            "covered_cycles": self.covered_cycles,
            "blocks_reconciled": self.blocks_reconciled,
            "shared_blocks": self.shared_blocks,
            "true_sharing_blocks": self.true_sharing_blocks,
            "true_sharing_ratio": self.true_sharing_ratio,
        }

    def render(self) -> str:
        lines = [
            f"regions opened/closed/rejected : "
            f"{self.regions_opened}/{self.regions_closed}/{self.rejected}",
            f"cycles WARD-covered (sum)      : {self.covered_cycles}",
            f"blocks reconciled              : {self.blocks_reconciled}",
            f"  with >1 sharer               : {self.shared_blocks}",
            f"  with true sharing            : {self.true_sharing_blocks} "
            f"(ratio {self.true_sharing_ratio:.2%})",
        ]
        if self.closed:
            lifetimes = sorted(r.lifetime for r in self.closed)
            mid = lifetimes[len(lifetimes) // 2]
            lines.append(
                f"region lifetime (cycles)       : "
                f"median {mid}, max {lifetimes[-1]}"
            )
        return "\n".join(lines)
