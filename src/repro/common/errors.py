"""Exception hierarchy for the reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid machine or protocol configuration was supplied."""


class UnknownProtocolError(ConfigError, KeyError):
    """A protocol key not present in the coherence registry.

    Subclasses ``KeyError`` so pre-existing ``except KeyError`` guards
    around registry lookups keep working, and ``ConfigError`` so the CLI
    treats it as an operational error (exit 2).  The message always
    lists the registered keys.
    """

    def __init__(self, key, known) -> None:
        message = f"unknown protocol {key!r}; choose from {sorted(known)}"
        super().__init__(message)
        self.key = key
        self.known = sorted(known)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class ProtocolError(ReproError):
    """A coherence protocol invariant was violated (a simulator bug)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class DisentanglementError(ReproError):
    """A task used data outside its root-to-leaf heap path (paper Def. 1)."""


class PoolError(ReproError):
    """The parallel run matrix could not complete a task.

    Raised by :func:`repro.analysis.pool.run_matrix` when a task keeps
    failing after its retry budget, or when the process pool cannot be
    kept alive and serial fallback is disabled.
    """


class TaskTimeoutError(PoolError):
    """A run-matrix task exceeded its per-task timeout on every attempt."""

    def __init__(self, task_index: int = -1, timeout: float = 0.0) -> None:
        super().__init__(
            f"matrix task {task_index} exceeded its {timeout:g}s timeout"
        )
        self.task_index = task_index
        self.timeout = timeout

    def __reduce__(self):
        return (type(self), (self.task_index, self.timeout))


class FaultInjected(ReproError):
    """An error raised deliberately by :mod:`repro.analysis.faults`.

    Crosses process boundaries (pool worker -> parent future), so it
    pickles by (site, key) rather than by its formatted message.
    """

    def __init__(self, site: str = "?", key: int = -1) -> None:
        super().__init__(f"injected fault {site!r} (key {key})")
        self.site = site
        self.key = key

    def __reduce__(self):
        return (type(self), (self.site, self.key))


class RaceError(ReproError):
    """A true data race found by the happens-before detector.

    Raised by :mod:`repro.verify.race` when two accesses to the same
    address are unordered by the fork/join happens-before relation and do
    not form a benign (WARD condition 2) write-write pair inside a shared
    region epoch.  The message names the benchmark, both tasks (spawn-tree
    paths), the access kinds/op indices, and any WARD region involved.
    """

    def __init__(self, message: str, finding=None) -> None:
        super().__init__(message)
        #: the structured :class:`repro.verify.race.RaceFinding`, when known
        self.finding = finding


class WardViolationError(ReproError):
    """An access pattern violated the WARD property inside an active region.

    Raised by :mod:`repro.verify.ward_checker` when a cross-hardware-thread
    read-after-write is observed at an address covered by an active WARD
    region (condition 1 of the WARD definition, paper §3.1).
    """

    def __init__(
        self,
        addr: int,
        writer: int,
        reader: int,
        violation=None,
    ) -> None:
        regions = ""
        if violation is not None and violation.shared_regions:
            ids = ", ".join(str(r) for r in violation.shared_regions)
            regions = f" (region id {ids})"
        super().__init__(
            f"WARD violation: hardware thread {reader} read address {addr:#x} "
            f"written by hardware thread {writer} inside an active WARD "
            f"region{regions}"
        )
        self.addr = addr
        self.writer = writer
        self.reader = reader
        #: the structured :class:`repro.verify.ward_checker.WardViolation`
        self.violation = violation
