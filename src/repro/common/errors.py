"""Exception hierarchy for the reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid machine or protocol configuration was supplied."""


class ProtocolError(ReproError):
    """A coherence protocol invariant was violated (a simulator bug)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class DisentanglementError(ReproError):
    """A task used data outside its root-to-leaf heap path (paper Def. 1)."""


class WardViolationError(ReproError):
    """An access pattern violated the WARD property inside an active region.

    Raised by :mod:`repro.verify.ward_checker` when a cross-hardware-thread
    read-after-write is observed at an address covered by an active WARD
    region (condition 1 of the WARD definition, paper §3.1).
    """

    def __init__(self, addr: int, writer: int, reader: int) -> None:
        super().__init__(
            f"WARD violation: hardware thread {reader} read address {addr:#x} "
            f"written by hardware thread {writer} inside an active WARD region"
        )
        self.addr = addr
        self.writer = writer
        self.reader = reader
