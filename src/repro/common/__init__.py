"""Shared primitive types, configuration presets, statistics, and errors.

Everything in this package is dependency-free (standard library only) and is
imported by every other ``repro`` subpackage.
"""

from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    MachineConfig,
    disaggregated,
    dual_socket,
    many_socket,
    single_socket,
    validation_machine,
)
from repro.common.errors import (
    ConfigError,
    DisentanglementError,
    ProtocolError,
    ReproError,
    SimulationError,
    WardViolationError,
)
from repro.common.stats import CoherenceStats, CoreStats, EnergyStats, RunStats
from repro.common.types import (
    AccessType,
    CoherenceState,
    MessageType,
    block_of,
    block_offset,
    block_range,
)

__all__ = [
    "AccessType",
    "CacheConfig",
    "CoherenceState",
    "CoherenceStats",
    "ConfigError",
    "CoreStats",
    "DisentanglementError",
    "EnergyConfig",
    "EnergyStats",
    "MachineConfig",
    "MessageType",
    "ProtocolError",
    "ReproError",
    "RunStats",
    "SimulationError",
    "WardViolationError",
    "block_of",
    "block_offset",
    "block_range",
    "disaggregated",
    "dual_socket",
    "many_socket",
    "single_socket",
    "validation_machine",
]
