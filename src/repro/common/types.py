"""Primitive types shared across the simulator.

Addresses are plain integers into a flat simulated physical address space.
The cache block size is configurable (64 bytes by default, as in the paper's
Table 2); helpers here take the block size explicitly so they stay pure.
"""

from __future__ import annotations

import enum

DEFAULT_BLOCK_SIZE = 64


class AccessType(enum.Enum):
    """Kind of memory access issued by a core."""

    LOAD = "load"
    STORE = "store"
    #: Atomic read-modify-write (compare-and-swap style); acts as both a load
    #: and a store for coherence purposes and is never WARD-eligible.
    RMW = "rmw"

    # Enum members are singletons and compare by identity, so identity
    # hashing is equivalent to the default (which re-hashes the member name
    # string on every call — measurable in stats dicts on the hot path).
    __hash__ = object.__hash__

    @property
    def is_write(self) -> bool:
        return self is not AccessType.LOAD

    @property
    def is_read(self) -> bool:
        return self is not AccessType.STORE


class CoherenceState(enum.Enum):
    """MESI states, the WARD state of the WARDen protocol (Fig. 5), and the
    Owned state of the MOESI variant (dirty sharing without writeback)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"
    WARD = "W"
    OWNED = "O"

    __hash__ = object.__hash__  # identity hash; see AccessType

    @property
    def grants_read(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def grants_write(self) -> bool:
        return self in (
            CoherenceState.MODIFIED,
            CoherenceState.EXCLUSIVE,
            CoherenceState.WARD,
        )

    @property
    def is_ward(self) -> bool:
        return self is CoherenceState.WARD


class MessageType(enum.Enum):
    """Coherence messages, following Nagarajan et al.'s naming (paper §5).

    Only the messages that matter for the paper's statistics (traffic counts,
    invalidations, downgrades) are distinguished; transient-state handshakes
    are folded into their triggering message.
    """

    GET_S = "GetS"
    GET_M = "GetM"
    UPGRADE = "Upg"
    PUT_M = "PutM"
    FWD_GET_S = "Fwd-GetS"
    FWD_GET_M = "Fwd-GetM"
    INV = "Inv"
    INV_ACK = "Inv-Ack"
    DATA = "Data"
    DATA_E = "Data-E"
    WB_DATA = "WB-Data"
    RECONCILE = "Reconcile"
    REGION_ADD = "Region-Add"
    REGION_REMOVE = "Region-Remove"

    __hash__ = object.__hash__  # identity hash; see AccessType

    @property
    def carries_data(self) -> bool:
        return self in (MessageType.DATA, MessageType.DATA_E, MessageType.WB_DATA)


def block_of(addr: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Return the block-aligned base address containing ``addr``."""
    return addr - (addr % block_size)


def block_offset(addr: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Return the byte offset of ``addr`` within its cache block."""
    return addr % block_size


def block_range(start: int, size: int, block_size: int = DEFAULT_BLOCK_SIZE):
    """Yield every block base address overlapped by ``[start, start + size)``.

    >>> list(block_range(0, 1))
    [0]
    >>> list(block_range(60, 8))
    [0, 64]
    """
    if size <= 0:
        return
    first = block_of(start, block_size)
    last = block_of(start + size - 1, block_size)
    for base in range(first, last + 1, block_size):
        yield base


def sector_mask(addr: int, size: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Byte-granularity write mask for an access confined to one block.

    The paper's sectored caches track writes per byte (§6.1).  The mask is an
    integer with bit *i* set when byte *i* of the block was touched.
    """
    off = block_offset(addr, block_size)
    if off + size > block_size:
        raise ValueError(
            f"access at offset {off} size {size} crosses a {block_size}B block"
        )
    return ((1 << size) - 1) << off
