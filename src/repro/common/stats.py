"""Statistics containers filled in by the simulator.

The counters here are exactly the quantities the paper reports: execution
time, instructions (for IPC, Fig. 11), invalidations and downgrades (Fig. 9
and 10), message traffic by link class (energy model), and WARD bookkeeping
(region adds/removes, reconciled blocks, WARD coverage of accesses).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.common.types import MessageType

#: MessageType lookup by wire name, for manifest round-trips
_MESSAGE_TYPES_BY_VALUE = {m.value: m for m in MessageType}

#: the plain-integer counters of CoherenceStats (everything but messages)
_COHERENCE_COUNTERS = (
    "invalidations",
    "downgrades",
    "dram_accesses",
    "l3_accesses",
    "l1_accesses",
    "l2_accesses",
    "ward_accesses",
    "total_accesses",
    "ward_region_adds",
    "ward_region_removes",
    "reconciled_blocks",
    "reconciled_shared_blocks",
    "reconciled_true_sharing_blocks",
    "writebacks",
)


class CoherenceStats:
    """Event counters for one protocol instance (whole machine)."""

    def __init__(self) -> None:
        #: message counts keyed by (MessageType, link_class) where link_class
        #: is "local" (same tile), "intra" (on-die), "socket" (cross socket /
        #: cross node), or "memory" (DRAM access).
        self.messages: Counter = Counter()
        #: invalidation messages delivered to private caches
        self.invalidations = 0
        #: downgrade (Fwd-GetS forcing M/E -> S) messages delivered
        self.downgrades = 0
        self.dram_accesses = 0
        self.l3_accesses = 0
        #: tag-array lookups, filled in by Machine.finalize from the caches
        self.l1_accesses = 0
        self.l2_accesses = 0
        #: accesses served while the block was in the WARD state
        self.ward_accesses = 0
        #: accesses checked against the region table (for coverage ratio)
        self.total_accesses = 0
        self.ward_region_adds = 0
        self.ward_region_removes = 0
        self.reconciled_blocks = 0
        #: blocks reconciled that had more than one sharer
        self.reconciled_shared_blocks = 0
        #: blocks reconciled where >1 core wrote the same sector (true sharing)
        self.reconciled_true_sharing_blocks = 0
        self.writebacks = 0
        #: protocol-specific counters (e.g. MOESI dirty shares, SI/SD
        #: self-invalidations).  Serialized only when nonempty so the
        #: digests of protocols that never touch it (MESI, WARDen) are
        #: byte-for-byte what they were before the counter existed; kept
        #: out of ``messages`` so the energy model never prices them.
        self.extra: Counter = Counter()

    def count_message(
        self, mtype: MessageType, link: str, count: int = 1
    ) -> None:
        self.messages[(mtype, link)] += count

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def messages_by_link(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (_, link), n in self.messages.items():
            out[link] = out.get(link, 0) + n
        return out

    def data_message_count(self) -> int:
        return sum(
            n for (mtype, _), n in self.messages.items() if mtype.carries_data
        )

    @property
    def ward_coverage(self) -> float:
        """Fraction of memory accesses that hit WARD-state blocks."""
        if not self.total_accesses:
            return 0.0
        return self.ward_accesses / self.total_accesses

    def merge(self, other: "CoherenceStats") -> None:
        self.messages.update(other.messages)
        self.extra.update(other.extra)
        for attr in _COHERENCE_COUNTERS:
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))

    # ------------------------------------------------------------------
    # Serialization (JSONL manifests, §"obs" exporters)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; messages keyed ``"<MessageType>|<link>"``."""
        out = {attr: getattr(self, attr) for attr in _COHERENCE_COUNTERS}
        out["messages"] = {
            f"{mtype.value}|{link}": count
            for (mtype, link), count in sorted(
                self.messages.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
            )
        }
        if self.extra:
            out["extra"] = {k: self.extra[k] for k in sorted(self.extra)}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CoherenceStats":
        stats = cls()
        for attr in _COHERENCE_COUNTERS:
            setattr(stats, attr, data.get(attr, 0))
        for key, count in data.get("messages", {}).items():
            mtype_name, _, link = key.partition("|")
            stats.messages[(_MESSAGE_TYPES_BY_VALUE[mtype_name], link)] = count
        stats.extra.update(data.get("extra", {}))
        return stats


@dataclass
class CoreStats:
    """Per-hardware-thread execution counters."""

    loads: int = 0
    stores: int = 0
    rmws: int = 0
    compute_instrs: int = 0
    #: loads issued while spinning on a synchronization variable
    spin_loads: int = 0
    load_stall_cycles: int = 0
    store_buffer_stall_cycles: int = 0
    steal_attempts: int = 0
    successful_steals: int = 0

    @property
    def instructions(self) -> int:
        return self.loads + self.stores + self.rmws + self.compute_instrs

    def merge(self, other: "CoreStats") -> None:
        self.loads += other.loads
        self.stores += other.stores
        self.rmws += other.rmws
        self.compute_instrs += other.compute_instrs
        self.spin_loads += other.spin_loads
        self.load_stall_cycles += other.load_stall_cycles
        self.store_buffer_stall_cycles += other.store_buffer_stall_cycles
        self.steal_attempts += other.steal_attempts
        self.successful_steals += other.successful_steals

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CoreStats":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


@dataclass
class EnergyStats:
    """Energy totals (nanojoules) produced by :mod:`repro.energy.model`."""

    cache_nj: float = 0.0
    dram_nj: float = 0.0
    network_nj: float = 0.0
    core_dynamic_nj: float = 0.0
    core_static_nj: float = 0.0

    @property
    def interconnect_nj(self) -> float:
        return self.network_nj

    @property
    def processor_nj(self) -> float:
        """Total processor energy (everything incl. network), as in Fig 7/8."""
        return (
            self.cache_nj
            + self.dram_nj
            + self.network_nj
            + self.core_dynamic_nj
            + self.core_static_nj
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyStats":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


@dataclass
class RunStats:
    """Everything measured for one benchmark execution on one protocol."""

    benchmark: str = ""
    protocol: str = ""
    machine: str = ""
    cycles: int = 0
    coherence: CoherenceStats = field(default_factory=CoherenceStats)
    cores: CoreStats = field(default_factory=CoreStats)
    energy: EnergyStats = field(default_factory=EnergyStats)
    num_threads: int = 1

    @property
    def instructions(self) -> int:
        return self.cores.instructions

    @property
    def ipc(self) -> float:
        """Aggregate machine IPC: instructions per (makespan) cycle per thread."""
        if not self.cycles or not self.num_threads:
            return 0.0
        return self.instructions / (self.cycles * self.num_threads)

    @property
    def inv_plus_downgrades(self) -> int:
        return self.coherence.invalidations + self.coherence.downgrades

    def inv_dg_per_kilo_instr(self) -> float:
        if not self.instructions:
            return 0.0
        return self.inv_plus_downgrades / (self.instructions / 1000.0)

    # ------------------------------------------------------------------
    # Serialization (JSONL manifests): round-trips through from_dict.
    # The ``derived`` block repeats computed metrics for consumers that
    # read manifests without this package; from_dict ignores it.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "protocol": self.protocol,
            "machine": self.machine,
            "cycles": self.cycles,
            "num_threads": self.num_threads,
            "coherence": self.coherence.to_dict(),
            "cores": self.cores.to_dict(),
            "energy": self.energy.to_dict(),
            "derived": {
                "instructions": self.instructions,
                "ipc": self.ipc,
                "inv_plus_downgrades": self.inv_plus_downgrades,
                "inv_dg_per_kilo_instr": self.inv_dg_per_kilo_instr(),
                "ward_coverage": self.coherence.ward_coverage,
                "total_messages": self.coherence.total_messages,
                "messages_by_link": self.coherence.messages_by_link(),
                "processor_nj": self.energy.processor_nj,
                "interconnect_nj": self.energy.interconnect_nj,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        return cls(
            benchmark=data.get("benchmark", ""),
            protocol=data.get("protocol", ""),
            machine=data.get("machine", ""),
            cycles=data.get("cycles", 0),
            num_threads=data.get("num_threads", 1),
            coherence=CoherenceStats.from_dict(data.get("coherence", {})),
            cores=CoreStats.from_dict(data.get("cores", {})),
            energy=EnergyStats.from_dict(data.get("energy", {})),
        )
