"""Machine, cache, and energy configuration plus the paper's presets.

The default numbers mirror Table 2 of the paper (Intel Xeon Gold 6126-like
system): 32 KB / 256 KB private L1/L2, 2.5 MB-per-core shared L3, 64 B blocks,
6-16-71 cycle hit latencies, 12 cores per socket, 3.3 GHz.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    block_size: int = 64
    latency: int = 1  # hit latency in cycles

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.associativity * self.block_size)
        if sets <= 0:
            raise ConfigError(f"cache too small: {self}")
        return sets

    def validate(self) -> None:
        if self.size_bytes % (self.associativity * self.block_size):
            raise ConfigError(
                f"size {self.size_bytes} not divisible by "
                f"assoc*block ({self.associativity}*{self.block_size})"
            )
        if self.latency < 1:
            raise ConfigError("cache latency must be >= 1 cycle")


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event dynamic energy (nanojoules) and static power (watts).

    These stand in for McPAT: the absolute values are representative 14 nm
    figures; the paper's energy results only depend on the *ratios* between
    local cache accesses, on-chip hops, cross-socket links, and runtime
    (static energy).
    """

    l1_access_nj: float = 0.10
    l2_access_nj: float = 0.35
    l3_access_nj: float = 1.70
    dram_access_nj: float = 18.0
    #: Energy per control flit per on-die hop; data messages cost
    #: ``data_flits`` times this.
    hop_intra_nj: float = 0.06
    hop_socket_nj: float = 1.20
    hop_remote_nj: float = 6.50
    data_flits: int = 9  # 64 B payload + header at 8 B/flit
    ctrl_flits: int = 1
    core_dynamic_per_instr_nj: float = 0.22
    core_static_w_per_core: float = 0.55
    frequency_ghz: float = 3.3

    def static_nj_per_cycle_per_core(self) -> float:
        # watts / (cycles/second) -> joules/cycle -> nanojoules/cycle
        return self.core_static_w_per_core / (self.frequency_ghz * 1e9) * 1e9


@dataclass(frozen=True)
class MachineConfig:
    """Full simulated machine: topology, latencies, protocol knobs."""

    name: str = "dual-socket"
    num_sockets: int = 2
    cores_per_socket: int = 12
    threads_per_core: int = 1
    block_size: int = 64

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 64, latency=6)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, 64, latency=16)
    )
    #: L3 size is per core (Table 2: 2.5 MB/core); a socket's shared slice is
    #: ``l3.size_bytes * cores_per_socket``.
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(2560 * 1024, 20, 64, latency=71)
    )

    #: Additional cycles for a DRAM access beyond the L3 lookup.
    dram_latency: int = 160
    #: One-way latency of an on-die traversal between a core tile and the
    #: LLC/directory (effective: several physical hops plus queueing).
    #: Calibrated so the Fig. 6 ping-pong reproduces Table 1's latencies.
    hop_intra_latency: int = 60
    #: One-way latency of the inter-socket (UPI-like) link (cycles);
    #: calibrated against Table 1's cross-socket scenario.
    socket_link_latency: int = 500
    #: One-way latency to disaggregated remote memory/node. The paper models
    #: 1 us remote access time at 3.3 GHz ~= 3300 cycles.
    remote_link_latency: int = 3300
    #: Whether sockets are disaggregated nodes (remote link instead of UPI).
    disaggregated: bool = False

    store_buffer_entries: int = 56
    #: Cycles the directory spends reconciling one WARD block (§6.1 finds the
    #: cost trivial: ~1 block per 50k cycles reconciled in practice).
    reconcile_cycles_per_block: int = 4
    #: Maximum simultaneous WARD regions tracked by the region CAM (§6.1).
    max_ward_regions: int = 1024

    energy: EnergyConfig = field(default_factory=EnergyConfig)

    def __post_init__(self) -> None:
        if self.num_sockets < 1 or self.cores_per_socket < 1:
            raise ConfigError("need at least one socket and one core")
        if self.threads_per_core < 1:
            raise ConfigError("threads_per_core must be >= 1")
        for level in (self.l1, self.l2, self.l3):
            level.validate()
            if level.block_size != self.block_size:
                raise ConfigError("all cache levels must share the block size")

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return self.num_sockets * self.cores_per_socket

    @property
    def num_threads(self) -> int:
        return self.num_cores * self.threads_per_core

    def core_of_thread(self, thread: int) -> int:
        """Map a hardware-thread id to its physical core (SMT threads share)."""
        return thread // self.threads_per_core

    def socket_of_core(self, core: int) -> int:
        return core // self.cores_per_socket

    def socket_of_thread(self, thread: int) -> int:
        return self.socket_of_core(self.core_of_thread(thread))

    def home_socket(self, block_addr: int) -> int:
        """Home directory/LLC slice for a block (address-interleaved)."""
        return (block_addr // self.block_size) % self.num_sockets

    def cross_socket_latency(self) -> int:
        return self.remote_link_latency if self.disaggregated else self.socket_link_latency

    def replace(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


# ----------------------------------------------------------------------
# Presets matching the paper's evaluated machines
# ----------------------------------------------------------------------

def single_socket(cores: int = 12) -> MachineConfig:
    """The single-socket machine of Fig. 7."""
    return MachineConfig(name="single-socket", num_sockets=1, cores_per_socket=cores)


def dual_socket(cores_per_socket: int = 12) -> MachineConfig:
    """The dual-socket machine of Table 2 / Fig. 8."""
    return MachineConfig(
        name="dual-socket", num_sockets=2, cores_per_socket=cores_per_socket
    )


def many_socket(num_sockets: int = 4, cores_per_socket: int = 12) -> MachineConfig:
    """A future many-socket machine (§7.3 "Many Sockets").

    The paper argues HLPL programs are natural candidates for such machines
    and that WARDen's advantages grow with interconnect cost; this preset
    keeps the per-socket processor of Table 2 and scales the socket count.
    """
    return MachineConfig(
        name=f"many-socket-{num_sockets}",
        num_sockets=num_sockets,
        cores_per_socket=cores_per_socket,
    )


def disaggregated(cores_per_node: int = 12) -> MachineConfig:
    """Two disaggregated nodes with 1 us remote access (Fig. 12, §7.3)."""
    return MachineConfig(
        name="disaggregated",
        num_sockets=2,
        cores_per_socket=cores_per_node,
        disaggregated=True,
    )


def validation_machine(same_core: bool = False) -> MachineConfig:
    """The two-thread machine used for the Table 1 ping-pong validation.

    With ``same_core=True`` both hardware threads share one core's private
    caches (the "Same core" scenario); otherwise they sit on distinct cores.
    """
    if same_core:
        return MachineConfig(
            name="validation-same-core",
            num_sockets=1,
            cores_per_socket=1,
            threads_per_core=2,
        )
    return dual_socket()
