"""Recording one interpreted run into a replayable trace.

The recorder is a thin wrapper around the normal engine: a
:class:`RecordingMachine` captures every protocol-visible instruction the
runtime issues (accesses, WARD region boundaries, NUMA placement) and a
:class:`RecordingCore` folds everything *between* those instructions —
compute batches, scheduler backoff, fork overhead — into per-thread pending
charges that ride on the next event's ``pre_instrs``/``pre_cycles`` fields.
The recorded run itself is unperturbed: all charges still land on the real
core clocks immediately, so the recorded ``RunStats`` (and hence the
reference-checked result) are exactly what :func:`repro.analysis.run.
run_benchmark` would produce.

Two engine behaviours are captured by instance patches on the runtime:

* ``scheduler._assign`` clamps a worker's clock forward to a stolen
  strand's ready time — the only non-additive clock write in the machine.
  Recorded as ``K_SYNC`` (only when the clamp actually moves the clock).
* ``runtime._on_root_done`` identifies which thread finished the root
  strand; its clock is the makespan, so the trace must know the thread.

The ``record_per_op`` class attribute opts the machine out of the epoch
batching fast path (the engine checks it), guaranteeing every access flows
through :meth:`Machine.access` one at a time.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.analysis.pool import RunTask, code_fingerprint, task_fingerprint
from repro.bench import get_benchmark
from repro.common.config import MachineConfig
from repro.common.types import AccessType
from repro.energy.model import EnergyModel
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.runtime import Runtime
from repro.obs.tracer import ReplayEvent
from repro.sim.core import CoreModel
from repro.sim.machine import Machine
from repro.replay.trace import (
    K_ACCESS,
    K_FLUSH,
    K_LLC_WARM,
    K_PLACE,
    K_REGION_ADD,
    K_REGION_REMOVE,
    K_SYNC,
    TRACE_SCHEMA,
    Trace,
    encode_result,
)

_AT_CODE = {AccessType.LOAD: 0, AccessType.STORE: 1, AccessType.RMW: 2}


class TraceRecorder:
    """Accumulates the event columns plus per-thread pending charges."""

    __slots__ = ("trace", "pend_i", "pend_c", "final_thread")

    def __init__(self, num_threads: int) -> None:
        self.trace = Trace()
        #: compute instructions / plain cycles charged to each thread since
        #: its last protocol-visible event
        self.pend_i: List[int] = [0] * num_threads
        self.pend_c: List[int] = [0] * num_threads
        self.final_thread = 0

    def emit(
        self, kind: int, thread: int, atype: int, size: int, spin: int,
        addr: int, aux: int,
    ) -> None:
        pi = self.pend_i[thread]
        pc = self.pend_c[thread]
        if pi or pc:
            self.pend_i[thread] = 0
            self.pend_c[thread] = 0
        self.trace.append(kind, thread, atype, size, spin, addr, aux, pi, pc)

    def finish(self) -> None:
        """Flush trailing pendings (charges with no successor event)."""
        for thread in range(len(self.pend_i)):
            if self.pend_i[thread] or self.pend_c[thread]:
                self.emit(K_FLUSH, thread, 0, 0, 0, 0, 0)


class RecordingCore(CoreModel):
    """A core model that mirrors compute/idle charges into the recorder.

    The real clock and stats still advance normally — pendings are a trace
    artifact only, so the recorded run is bit-identical to an untraced one.
    """

    def __init__(
        self, config: MachineConfig, thread: int, recorder: TraceRecorder,
        tracer=None,
    ) -> None:
        super().__init__(config, thread, tracer=tracer)
        self._recorder = recorder

    def compute(self, instrs: int) -> None:
        self._recorder.pend_i[self.thread] += instrs
        self.clock += instrs
        self.stats.compute_instrs += instrs

    def advance(self, cycles: int) -> None:
        self._recorder.pend_c[self.thread] += cycles
        self.clock += cycles


class RecordingMachine(Machine):
    """A machine that records protocol-visible events as it executes."""

    #: tells the engine to step per-op (no epoch batching): every access
    #: must pass through :meth:`access` to be captured
    record_per_op = True

    def __init__(self, config: MachineConfig, protocol="mesi") -> None:
        super().__init__(config, protocol)
        self.recorder = TraceRecorder(config.num_threads)
        # Replace the cores before any Runtime/Scheduler sees them.
        self.cores = [
            RecordingCore(config, t, self.recorder, tracer=self.tracer)
            for t in range(config.num_threads)
        ]

    # -- recorded instruction streams ----------------------------------
    def access(self, thread, addr, size, atype, spin=False):
        self.recorder.emit(
            K_ACCESS, thread, _AT_CODE[atype], size, 1 if spin else 0, addr, 0
        )
        return super().access(thread, addr, size, atype, spin=spin)

    def place(self, addr, size, thread):
        self.recorder.emit(K_PLACE, thread, 0, 0, 0, addr, size)
        super().place(addr, size, thread)

    def llc_warm_fill(self, addr, thread=0):
        # Input loaders fill the LLC outside any access transaction; the
        # fills perturb LLC LRU order, so replay must reproduce them.
        self.recorder.emit(K_LLC_WARM, thread, 0, 0, 0, addr, 0)
        super().llc_warm_fill(addr, thread)

    def add_ward_region(self, thread, start, end):
        if not self.protocol.supports_ward:
            return None
        # Mirror Machine.add_ward_region, but record the region instruction
        # *after* its 1-instruction charge so the charge rides in this
        # event's pre fields (replay then applies it exactly once).
        self.cores[thread].compute(1)
        self._stamp_tracer(thread)
        self.recorder.emit(K_REGION_ADD, thread, 0, 0, 0, start, end)
        return self.protocol.add_region(start, end)

    def remove_ward_region(self, thread, region):
        if region is None or not self.protocol.supports_ward:
            return
        self.cores[thread].compute(1)
        self._stamp_tracer(thread)
        self.recorder.emit(
            K_REGION_REMOVE, thread, 0, 0, 0, 0, region.region_id
        )
        self.protocol.remove_region(region)


def record_benchmark(
    name: str,
    protocol,
    config: MachineConfig,
    size: str = "default",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    check_result: bool = True,
    fingerprint: Optional[str] = None,
    obs_sink=None,
) -> Tuple[Trace, "BenchResult"]:
    """Run one benchmark through the interpreted engine, recording its trace.

    Returns ``(trace, result)`` where ``result`` is the same
    :class:`~repro.analysis.run.BenchResult` a direct ``run_benchmark``
    call would produce (the recorded run *is* a normal run) and ``trace``
    carries everything the replay kernel needs, including the pickled
    functional result and the task/code fingerprints that key the store.
    """
    # Imported here: analysis.run's replay entry point imports this module.
    from repro.analysis.run import (
        BenchResult,
        ResultMismatchError,
        _protocol_key,
    )

    bench = get_benchmark(name)
    workload = bench.workload(size=size, seed=seed)
    machine = RecordingMachine(config, protocol)
    recorder = machine.recorder
    if obs_sink is not None:
        obs_sink.emit(ReplayEvent(0, "record-start", name, machine.protocol.name))
    rt = Runtime(machine, policy=policy, seed=seed)

    # Capture the scheduler's ready-clock clamp (the one non-additive
    # clock write) and the identity of the makespan thread.
    sched = rt.scheduler
    orig_assign = sched._assign
    cores = machine.cores

    def _assign_hook(worker, strand):
        if strand.ready_clock > cores[worker.thread].clock:
            recorder.emit(
                K_SYNC, worker.thread, 0, 0, 0, 0, strand.ready_clock
            )
        orig_assign(worker, strand)

    sched._assign = _assign_hook
    orig_root_done = rt._on_root_done

    def _root_done_hook(value, worker):
        recorder.final_thread = worker.thread
        orig_root_done(value, worker)

    rt._on_root_done = _root_done_hook

    result, stats = rt.run(bench.root_task, workload)
    stats.benchmark = name
    EnergyModel(config).compute(stats)
    if check_result:
        expected = bench.reference(workload)
        if result != expected:
            raise ResultMismatchError(
                f"{name} on {protocol}: recorded result does not match the "
                f"reference (got {str(result)[:80]}...)"
            )
    recorder.finish()

    trace = recorder.trace
    if fingerprint is None:
        fingerprint = task_fingerprint(RunTask(
            benchmark=name,
            protocol=_protocol_key(protocol),
            config=config,
            size=size,
            seed=seed,
            policy=policy,
        ))
    trace.meta = {
        "schema": TRACE_SCHEMA,
        "fingerprint": fingerprint,
        "code_fingerprint": code_fingerprint(),
        "benchmark": name,
        "protocol": _protocol_key(protocol),
        "protocol_name": machine.protocol.name,
        "supports_ward": machine.protocol.supports_ward,
        "size": size,
        "seed": seed,
        "policy": policy.value,
        "machine": config.name,
        "config": dataclasses.asdict(config),
        "final_thread": recorder.final_thread,
        "events": len(trace),
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        # steal probes happen inside the scheduler, invisible to the
        # protocol: carried as per-thread totals and injected at finalize
        "steals": [
            [cm.stats.steal_attempts, cm.stats.successful_steals]
            for cm in machine.cores
        ],
        "result": encode_result(result),
    }
    out = BenchResult(
        benchmark=name,
        protocol=machine.protocol.name,
        machine=config.name,
        size=size,
        stats=stats,
        result=result,
        ward_checked=False,
    )
    if obs_sink is not None:
        obs_sink.emit(ReplayEvent(
            0, "record-done", name, machine.protocol.name, events=len(trace)
        ))
    return trace, out
