"""The vectorized replay kernel: trace in, bit-identical ``RunStats`` out.

Instead of per-block :class:`CacheBlock` objects, directory-entry objects,
and a scheduler deciding what runs next, the kernel drives the registered
protocols' state machines (MESI, WARDen, MOESI, SI/SD — dispatched on the
trace's recorded protocol key) directly from a recorded trace over packed
arrays:

* block addresses are factorized once into dense ids (numpy ``unique``
  when available — see :mod:`repro.replay._compat`), so all per-block
  state lives in flat arrays: a ``bytearray`` of coherence states and a
  written-mask list per core, plus directory state/owner arrays and an
  int-bitmask sharer vector;
* cache sets are plain dicts keyed by block id (insertion order = LRU
  order, exactly like :class:`~repro.mem.cache.SetAssocCache`'s ordered
  sets), so presence in the dict *is* validity;
* consecutive same-thread accesses to the same block — the dominant
  pattern after epoching — are flagged at load time (``rep``) and served
  by a branch-minimal fast path: a guaranteed L1-MRU hit with inline core
  timing, no LRU maintenance, no method calls.

Every slow-path transaction is a line-for-line transcription of
:class:`~repro.coherence.mesi.MESIProtocol` /
:class:`~repro.coherence.warden.WARDenProtocol` (state codes I=0 S=1 E=2
M=3 W=4), sharing the genuinely subtle pieces —
:func:`~repro.coherence.warden.reconcile_plan`,
:func:`~repro.mem.cache.set_index_params`,
:func:`~repro.coherence.mesi.llc_config`, and the real
:class:`~repro.coherence.regions.RegionTable` — with the object protocol,
so the two cannot drift on the parts that are easy to get wrong.  The
replay-identity tests then pin the rest bit-for-bit.

Replaying under a *different* config than the recorded one is a
trace-driven approximation: the instruction stream is the recorded one,
only the memory system's response changes.  Useful for memory-hierarchy
sweeps; never fed into the exact-result caches.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import List, Optional

from repro.common.config import MachineConfig
from repro.common.errors import UnknownProtocolError
from repro.common.stats import CoreStats, RunStats
from repro.common.types import MessageType
from repro.coherence.mesi import MESIProtocol, llc_config
from repro.coherence.regions import RegionTable
from repro.coherence.warden import reconcile_plan
from repro.energy.model import EnergyModel
from repro.mem.cache import set_index_params
from repro.obs.tracer import ReplayEvent
from repro.replay._compat import load_numpy
from repro.replay.trace import (
    AT_LOAD,
    K_ACCESS,
    K_LLC_WARM,
    K_PLACE,
    K_REGION_ADD,
    K_REGION_REMOVE,
    K_SYNC,
    Trace,
    config_from_dict,
    decode_result,
)

_PAGE_SHIFT = MESIProtocol.PAGE_SHIFT

_GET_S = MessageType.GET_S
_GET_M = MessageType.GET_M
_UPGRADE = MessageType.UPGRADE
_PUT_M = MessageType.PUT_M
_FWD_GET_S = MessageType.FWD_GET_S
_FWD_GET_M = MessageType.FWD_GET_M
_INV = MessageType.INV
_INV_ACK = MessageType.INV_ACK
_DATA = MessageType.DATA
_DATA_E = MessageType.DATA_E
_WB_DATA = MessageType.WB_DATA
_RECONCILE = MessageType.RECONCILE
_REGION_ADD_MSG = MessageType.REGION_ADD
_REGION_REMOVE_MSG = MessageType.REGION_REMOVE

# coherence state codes in the packed per-(core, block) state arrays.
# Ordering is load-bearing: for MESI/WARDen/MOESI, st >= _E <=> the state
# grants writes silently (M/E/W; O sits below E because an O store must
# ask the directory); for SI/SD — which never holds E/O — the silent-
# write threshold drops to _S (every cached state absorbs stores).
_I, _S, _O, _E, _M, _W = 0, 1, 2, 3, 4, 5



def _preprocess(tr, bs: int):
    """Config-independent load-time pass: column lists, block-id
    factorization, the adjacent-repeat flags, and written-sector masks.

    Memoized per trace (keyed by block size) — see ``Trace._prep``.
    """
    n = len(tr)
    kind = tr.kind.tolist()
    thr = tr.thread.tolist()
    atype = tr.atype.tolist()
    sizes = tr.size.tolist()
    spin = tr.spin.tolist()
    addr = tr.addr.tolist()
    aux = tr.aux.tolist()
    pre_i = tr.pre_instrs.tolist()
    pre_c = tr.pre_cycles.tolist()

    np = load_numpy()
    if np is not None and n:
        kind_a = np.frombuffer(tr.kind, dtype=np.uint8)
        thr_a = np.frombuffer(tr.thread, dtype=np.int16)
        addr_a = np.frombuffer(tr.addr, dtype=np.int64)
        acc = kind_a == K_ACCESS
        # warm fills occupy LLC ways too, so their blocks need ids even
        # when no access ever touches them
        blk = acc | (kind_a == K_LLC_WARM)
        baddr_a = addr_a - addr_a % bs
        uniq, inverse = np.unique(baddr_a[blk], return_inverse=True)
        bid_a = np.full(n, -1, dtype=np.int64)
        bid_a[blk] = inverse
        rep_a = np.zeros(n, dtype=bool)
        rep_a[1:] = (
            acc[1:]
            & acc[:-1]
            & (thr_a[1:] == thr_a[:-1])
            & (baddr_a[1:] == baddr_a[:-1])
        )
        bid = bid_a.tolist()
        rep = rep_a.tolist()
        baddrs = uniq.tolist()
    else:
        bid = [-1] * n
        rep = [False] * n
        uniq_set = set()
        for k in range(n):
            if kind[k] == K_ACCESS or kind[k] == K_LLC_WARM:
                a = addr[k]
                uniq_set.add(a - a % bs)
        # sorted: block-id order == address order, matching np.unique
        # (and hence sorted(region.blocks) iterates like the object
        # protocol's sorted block addresses)
        baddrs = sorted(uniq_set)
        index = {a: i for i, a in enumerate(baddrs)}
        prev_acc = False
        pt = -1
        pb = -1
        for k in range(n):
            kd = kind[k]
            if kd == K_ACCESS or kd == K_LLC_WARM:
                a = addr[k]
                b = index[a - a % bs]
                bid[k] = b
                if kd != K_ACCESS:
                    prev_acc = False
                    continue
                if prev_acc and thr[k] == pt and b == pb:
                    rep[k] = True
                prev_acc = True
                pt = thr[k]
                pb = b
            else:
                prev_acc = False

    # Written-sector masks per event.  Pure Python on purpose: a
    # block-size-64 mask is up to (1<<64)-1, past int64.
    mask = [0] * n
    for k in range(n):
        if kind[k] == K_ACCESS and atype[k] != AT_LOAD:
            a = addr[k]
            mask[k] = ((1 << sizes[k]) - 1) << (a % bs)

    return (kind, thr, atype, spin, addr, aux, pre_i, pre_c,
            bid, rep, baddrs, mask)


class ReplayKernel:
    """Replays one :class:`~repro.replay.trace.Trace` over packed arrays."""

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None):
        self.trace = trace
        meta = trace.meta
        self.config = (
            config if config is not None else config_from_dict(meta["config"])
        )
        # dispatch mode from the recorded registry key; traces predating the
        # key fall back on the supports_ward flag (mesi/warden era)
        key = meta.get("protocol")
        if key is None:
            key = "warden" if meta.get("supports_ward") else "mesi"
        from repro.coherence.registry import available_protocols

        known = available_protocols()
        if key not in known:
            # A trace recorded by a build with extra protocols (or doctored
            # meta) must not silently replay under MESI semantics.
            raise UnknownProtocolError(key, known)
        self.protocol_key = key
        self.is_warden = key == "warden"
        self.is_moesi = key == "moesi"
        self.is_sisd = key == "sisd"
        # silent-write threshold for the hit paths; the threshold state is
        # also the source of the one silent transition (E -> M, or S -> M
        # under SI/SD where stores never consult a directory)
        self._smin = _S if self.is_sisd else _E
        self._prepare()

    # ------------------------------------------------------------------
    # Load-time preprocessing (the vectorized part)
    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        tr = self.trace
        cfg = self.config
        bs = cfg.block_size
        # The factorized event columns depend only on the block size, so
        # they are memoized on the trace: repeat replays (bench repeats)
        # and config sweeps (replay_matrix) skip the load-time pass.
        prepped = tr._prep.get(bs)
        if prepped is None:
            prepped = tr._prep[bs] = _preprocess(tr, bs)
        (self._kind, self._thr, self._atype, self._spin, self._addr,
         self._aux, self._pre_i, self._pre_c, self._bid, self._rep,
         self.baddrs, self._mask) = prepped
        self.nblocks = len(self.baddrs)

        np = load_numpy()
        llc_cfg = llc_config(cfg)
        self.sidx1 = self._set_indices(cfg.l1, np)
        self.sidx2 = self._set_indices(cfg.l2, np)
        self.sidxL = self._set_indices(llc_cfg, np)
        self.l1_assoc = cfg.l1.associativity
        self.l2_assoc = cfg.l2.associativity
        self.llc_assoc = llc_cfg.associativity

        baddrs = self.baddrs
        nsock = cfg.num_sockets
        if np is not None and baddrs:
            u = np.array(baddrs, dtype=np.int64)
            self.page_of = (u >> _PAGE_SHIFT).tolist()
            self.interleave = ((u // bs) % nsock).tolist()
        else:
            self.page_of = [a >> _PAGE_SHIFT for a in baddrs]
            self.interleave = [(a // bs) % nsock for a in baddrs]

    def _set_indices(self, cache_cfg, np) -> List[int]:
        num_sets, shift, maskv = set_index_params(cache_cfg)
        baddrs = self.baddrs
        if np is not None and baddrs:
            u = np.array(baddrs, dtype=np.int64)
            if maskv >= 0:
                idx = (u >> shift) & maskv
            elif shift >= 0:
                idx = (u >> shift) % num_sets
            else:
                idx = (u // cache_cfg.block_size) % num_sets
            return idx.tolist()
        if maskv >= 0:
            return [(a >> shift) & maskv for a in baddrs]
        if shift >= 0:
            return [(a >> shift) % num_sets for a in baddrs]
        bsz = cache_cfg.block_size
        return [(a // bsz) % num_sets for a in baddrs]
    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        cfg = self.config
        nthreads = cfg.num_threads
        ncores = cfg.num_cores
        nblocks = self.nblocks

        # protocol state (packed)
        self.pstate = [bytearray(nblocks) for _ in range(ncores)]
        self.wmask = [[0] * nblocks for _ in range(ncores)]
        self.dstate = bytearray(nblocks)
        self.downer = [-1] * nblocks
        self.dshare = [0] * nblocks
        # caches: {set index -> {bid: True}} per core/socket, created lazily
        # like SetAssocCache._sets; dict order is LRU order
        self.l1sets = [{} for _ in range(ncores)]
        self.l2sets = [{} for _ in range(ncores)]
        self.llcsets = [{} for _ in range(cfg.num_sockets)]
        self.regions = RegionTable(capacity=cfg.max_ward_regions)
        self.rid_map = {}
        self.page_homes = {}
        self.messages = Counter()

        # coherence counters (slow path; the access fast path keeps its own
        # locals and folds them in at the end)
        self.tot = 0
        self.l2a = 0
        self.wacc = 0
        self.l3a = 0
        self.dram = 0
        self.inval = 0
        self.downg = 0
        self.wb = 0
        self.region_adds = 0
        self.region_removes = 0
        self.recon = 0
        self.recon_shared = 0
        self.recon_true = 0
        # protocol-specific extra counters (CoherenceStats.extra)
        self.x_dirty_shares = 0
        self.x_self_downgrades = 0
        self.x_self_invalidations = 0

        # timing constants / topology
        self.l1_lat = l1_lat = cfg.l1.latency
        self.l2_lat = cfg.l2.latency
        self.l3_lat = cfg.l3.latency
        self.dram_lat = cfg.dram_latency
        self.intra_lat = cfg.hop_intra_latency
        self.sock_lat = cfg.cross_socket_latency()
        self.soc_of_core = tuple(
            cfg.socket_of_core(c) for c in range(ncores)
        )
        self.soc_of_thread = tuple(
            cfg.socket_of_thread(t) for t in range(nthreads)
        )
        core_of = tuple(cfg.core_of_thread(t) for t in range(nthreads))

        # per-thread core model state (CoreModel, transcribed)
        self.clk = clk = [0] * nthreads
        self.loads = loads = [0] * nthreads
        self.stores = stores = [0] * nthreads
        self.rmws = rmws = [0] * nthreads
        self.ci = ci = [0] * nthreads
        self.spins = spins = [0] * nthreads
        self.lstall = lstall = [0] * nthreads
        self.sbstall = sbstall = [0] * nthreads
        sb = [deque() for _ in range(nthreads)]
        sb_last = [0] * nthreads
        sb_cap = cfg.store_buffer_entries

        # hot locals
        kind = self._kind
        thr = self._thr
        atype = self._atype
        spin_f = self._spin
        aux = self._aux
        pre_i = self._pre_i
        pre_c = self._pre_c
        bid = self._bid
        rep = self._rep
        mask_l = self._mask
        addr = self._addr
        pstate = self.pstate
        wmask = self.wmask
        access = self._access
        upgrade = self._upgrade
        l1sets = self.l1sets
        sidx1 = self.sidx1
        is_sisd = self.is_sisd
        smin = self._smin
        sisd_rmw = self._sisd_rmw
        tot_f = 0
        wacc_f = 0

        # One flat unpack per event beats re-subscripting the hot columns:
        # the loop body is the throughput ceiling of the whole replay.
        for k, t, kd, pi, pc, b, at, rp, mask_k, spin_k in zip(
            range(len(kind)), thr, kind, pre_i, pre_c, bid, atype, rep,
            mask_l, spin_f,
        ):
            if pi or pc:
                clk[t] += pi + pc
                ci[t] += pi

            if kd == K_ACCESS:
                core = core_of[t]
                if at == 2 and is_sisd:
                    # SI/SD atomics execute at the home slice and never
                    # leave a cached copy, so the MRU/L1-hit assumptions
                    # below do not apply; full transaction + RMW fence.
                    latency = sisd_rmw(core, b)
                    buf = sb[t]
                    if buf:
                        last = buf[-1]
                        if last > clk[t]:
                            sbstall[t] += last - clk[t]
                            clk[t] = last
                        buf.clear()
                    clk[t] += latency
                    rmws[t] += 1
                    continue
                if rp:
                    # Guaranteed L1-MRU hit (same thread, same block as the
                    # previous event): serve without touching LRU order.
                    # (Under SI/SD the guarantee has one hole — an RMW
                    # self-invalidates its block, so the follow-up access
                    # sees _I and must take the full path.)
                    st = pstate[core][b]
                    if at == AT_LOAD:
                        if st or not is_sisd:
                            tot_f += 1
                            if st == _W:
                                wacc_f += 1
                            clk[t] += l1_lat
                            loads[t] += 1
                            if spin_k:
                                spins[t] += 1
                            continue
                    elif st >= smin:
                        tot_f += 1
                        if st == _W:
                            wacc_f += 1
                        elif st == smin:
                            pstate[core][b] = _M  # silent E -> M (S -> M)
                        wmask[core][b] |= mask_k
                        if at == 1:  # store: TSO buffer issue
                            buf = sb[t]
                            ck = clk[t]
                            while buf and buf[0] <= ck:
                                buf.popleft()
                            if len(buf) >= sb_cap:
                                stall = buf[0] - ck
                                if stall > 0:
                                    ck += stall
                                    sbstall[t] += stall
                                while buf and buf[0] <= ck:
                                    buf.popleft()
                            ck += 1
                            comp = ck + l1_lat
                            last = sb_last[t]
                            if comp < last:
                                comp = last
                            sb_last[t] = comp
                            buf.append(comp)
                            clk[t] = ck
                            stores[t] += 1
                        else:  # RMW: fence + full block
                            buf = sb[t]
                            if buf:
                                last = buf[-1]
                                if last > clk[t]:
                                    sbstall[t] += last - clk[t]
                                    clk[t] = last
                                buf.clear()
                            clk[t] += l1_lat
                            rmws[t] += 1
                        continue
                    # S-state write: needs the directory; fall through to
                    # the full transaction (which re-counts from scratch —
                    # nothing was counted above on this branch).
                # Inlined _access L1-hit path (the dominant case): LRU
                # refresh + state check without a method call.  Anything
                # past the L1 falls back to the full transcription.
                cset1 = l1sets[core].get(sidx1[b])
                if cset1 is not None and b in cset1:
                    del cset1[b]  # LRU refresh (move to end)
                    cset1[b] = True
                    st = pstate[core][b]
                    if at == AT_LOAD:
                        tot_f += 1
                        if st == _W:
                            wacc_f += 1
                        latency = l1_lat
                    elif st >= smin:  # silent write grant
                        tot_f += 1
                        if st == _W:
                            wacc_f += 1
                        elif st == smin:
                            pstate[core][b] = _M
                        wmask[core][b] |= mask_k
                        latency = l1_lat
                    else:  # S/O-state write: directory upgrade
                        tot_f += 1
                        latency = l1_lat + upgrade(core, b, mask_k)
                else:
                    latency = access(core, b, at, mask_k, True)
                if at == AT_LOAD:
                    clk[t] += latency
                    loads[t] += 1
                    if spin_k:
                        spins[t] += 1
                    if latency > l1_lat:
                        lstall[t] += latency - l1_lat
                elif at == 1:  # store
                    buf = sb[t]
                    ck = clk[t]
                    while buf and buf[0] <= ck:
                        buf.popleft()
                    if len(buf) >= sb_cap:
                        stall = buf[0] - ck
                        if stall > 0:
                            ck += stall
                            sbstall[t] += stall
                        while buf and buf[0] <= ck:
                            buf.popleft()
                    ck += 1
                    comp = ck + latency
                    last = sb_last[t]
                    if comp < last:
                        comp = last
                    sb_last[t] = comp
                    buf.append(comp)
                    clk[t] = ck
                    stores[t] += 1
                else:  # RMW
                    buf = sb[t]
                    if buf:
                        last = buf[-1]
                        if last > clk[t]:
                            sbstall[t] += last - clk[t]
                            clk[t] = last
                        buf.clear()
                    clk[t] += latency
                    rmws[t] += 1
            elif kd == K_SYNC:
                a = aux[k]
                if a > clk[t]:
                    clk[t] = a
            elif kd == K_REGION_ADD:
                self._region_add(addr[k], aux[k])
            elif kd == K_REGION_REMOVE:
                self._region_remove(aux[k])
            elif kd == K_PLACE:
                self._place(t, addr[k], aux[k])
            elif kd == K_LLC_WARM:
                self._llc_fill(b, self._home(b))
            # K_FLUSH: pendings already applied above

        self.tot += tot_f
        self.wacc += wacc_f
        return self._finalize()

    # ------------------------------------------------------------------
    # Message accounting (Interconnect, transcribed; returns latency)
    # ------------------------------------------------------------------
    def _c2h(self, core: int, home: int, mtype) -> int:
        if self.soc_of_core[core] == home:
            self.messages[(mtype, "intra")] += 1
            return self.intra_lat
        self.messages[(mtype, "socket")] += 1
        return self.sock_lat

    def _c2c(self, core_a: int, core_b: int, mtype) -> int:
        if core_a == core_b:
            self.messages[(mtype, "local")] += 1
            return 0
        if self.soc_of_core[core_a] == self.soc_of_core[core_b]:
            self.messages[(mtype, "intra")] += 1
            return self.intra_lat
        self.messages[(mtype, "socket")] += 1
        return self.sock_lat

    def _home(self, b: int) -> int:
        home = self.page_homes.get(self.page_of[b])
        if home is not None:
            return home
        return self.interleave[b]

    # ------------------------------------------------------------------
    # MESIProtocol.access, transcribed over packed state
    # ------------------------------------------------------------------
    def _access(
        self, core: int, b: int, at: int, mask: int, l1_missed: bool = False
    ) -> int:
        self.tot += 1
        latency = self.l1_lat
        present = False
        if not l1_missed:
            cset1 = self.l1sets[core].get(self.sidx1[b])
            present = cset1 is not None and b in cset1
            if present:
                del cset1[b]  # LRU refresh (move to end)
                cset1[b] = True
        if not present:
            latency += self.l2_lat
            self.l2a += 1
            cset2 = self.l2sets[core].get(self.sidx2[b])
            if cset2 is not None and b in cset2:
                del cset2[b]
                cset2[b] = True
                self._l1_install(core, b)
                present = True
        if present:
            st = self.pstate[core][b]
            if at == AT_LOAD:
                if st == _W:
                    self.wacc += 1
                return latency
            smin = self._smin
            if st >= smin:  # silent write grant
                if st == _W:
                    self.wacc += 1
                elif st == smin:
                    self.pstate[core][b] = _M
                self.wmask[core][b] |= mask
                return latency
            return latency + self._upgrade(core, b, mask)
        return latency + self._miss(core, b, at, mask)

    def _upgrade(self, core: int, b: int, mask: int) -> int:
        home = self._home(b)
        latency = self._c2h(core, home, _UPGRADE)
        latency += self.l3_lat
        self.l3a += 1
        # _handle_upgrade_at_dir (WARDen override first, then MESI).
        # Region lookups use the block base address, like the object
        # protocol (the raw access address may cross the region edge).
        if self.is_warden:
            if self.dstate[b] == _W or self.regions.contains(self.baddrs[b]):
                if self.dstate[b] != _W:
                    self._enter_ward(b)
                latency += self._h2c(home, core, _DATA_E)
                self.dshare[b] |= 1 << core
                self._register_ward(b)
                self.pstate[core][b] = _W
                self.wmask[core][b] |= mask
                self.wacc += 1
                return latency
        if self.is_moesi and self.dstate[b] == _O:
            # MOESIProtocol._handle_upgrade_at_dir: sharers die; a dirty
            # owner (unless it is the writer itself) forwards and dies too.
            lat = self._inv_sharers(b, core, home)
            owner = self.downer[b]
            if owner == core:
                lat += self._h2c(home, core, _DATA_E)
            else:
                fwd = self._h2c(home, owner, _FWD_GET_M)
                fwd += self._c2c(owner, core, _DATA)
                if fwd > lat:
                    lat = fwd
                self.inval += 1
                cset = self.l2sets[owner].get(self.sidx2[b])
                if cset is not None:
                    cset.pop(b, None)
                cset = self.l1sets[owner].get(self.sidx1[b])
                if cset is not None:
                    cset.pop(b, None)
                self.pstate[owner][b] = _I
                self.wmask[owner][b] = 0
            self.dstate[b] = _M
            self.downer[b] = core
            self.dshare[b] = 0
            self.pstate[core][b] = _M
            self.wmask[core][b] |= mask
            return latency + lat
        latency += self._inv_sharers(b, core, home)
        latency += self._h2c(home, core, _DATA_E)
        self.dstate[b] = _M
        self.downer[b] = core
        self.dshare[b] = 0
        self.pstate[core][b] = _M
        self.wmask[core][b] |= mask
        return latency

    def _h2c(self, home: int, core: int, mtype) -> int:
        if self.soc_of_core[core] == home:
            self.messages[(mtype, "intra")] += 1
            return self.intra_lat
        self.messages[(mtype, "socket")] += 1
        return self.sock_lat

    def _inv_sharers(self, b: int, exclude: int, home: int) -> int:
        """Invalidate every sharer except ``exclude``; worst-case latency.

        Bitmask iteration ascends like the object protocol's
        ``sorted(entry.sharers)``; the caller resets ``dshare`` afterwards
        (mirroring ``entry.sharers.clear()`` at both call sites).
        """
        worst = 0
        inval = 0
        sh = self.dshare[b]
        core = 0
        i2 = self.sidx2[b]
        i1 = self.sidx1[b]
        while sh:
            if sh & 1 and core != exclude:
                lat = self._h2c(home, core, _INV)
                lat += self._c2h(core, home, _INV_ACK)
                if lat > worst:
                    worst = lat
                inval += 1
                cset = self.l2sets[core].get(i2)
                if cset is not None:
                    cset.pop(b, None)
                cset = self.l1sets[core].get(i1)
                if cset is not None:
                    cset.pop(b, None)
                self.pstate[core][b] = _I
            sh >>= 1
            core += 1
        self.inval += inval
        return worst

    def _miss(self, core: int, b: int, at: int, mask: int) -> int:
        home = self._home(b)
        latency = self._c2h(core, home, _GET_M if at != AT_LOAD else _GET_S)
        latency += self.l3_lat
        if self.is_sisd:
            # SISDProtocol._miss: data straight from the home slice, no
            # directory entry touched; in-region blocks install as W.
            latency += self._fetch(b, home)
            latency += self._h2c(home, core, _DATA)
            if self.regions.contains(self.baddrs[b]):
                state = _W
                self.wacc += 1
            elif at == AT_LOAD:
                state = _S
            else:
                state = _M
            self._install(core, b, state, mask)
            return latency
        latency += self._at_dir(core, b, at, mask, home)
        return latency

    def _at_dir(self, core: int, b: int, at: int, mask: int, home: int) -> int:
        if self.is_warden:
            if self.dstate[b] == _W:
                return self._ward_grant(core, b, mask, home)
            if self.regions and self.regions.contains(self.baddrs[b]):
                self._enter_ward(b)
                return self._ward_grant(core, b, mask, home)
        st = self.dstate[b]
        if st == _I:
            latency = self._fetch(b, home)
            latency += self._h2c(home, core, _DATA_E)
            if at != AT_LOAD:
                self._install(core, b, _M, mask)
                self.dstate[b] = _M
            else:
                self._install(core, b, _E, 0)
                self.dstate[b] = _E
            self.downer[b] = core
            self.dshare[b] = 0
            return latency
        if st == _S:
            if at != AT_LOAD:
                inv_latency = self._inv_sharers(b, core, home)
                data_latency = self._fetch(b, home)
                data_latency += self._h2c(home, core, _DATA)
                self._install(core, b, _M, mask)
                self.dstate[b] = _M
                self.downer[b] = core
                self.dshare[b] = 0
                return (
                    inv_latency if inv_latency > data_latency else data_latency
                )
            latency = self._fetch(b, home)
            latency += self._h2c(home, core, _DATA)
            self._install(core, b, _S, 0)
            self.dshare[b] |= 1 << core
            return latency
        if st == _O:
            # MOESIProtocol._handle_at_directory: readers are fed c2c by
            # the dirty owner; a writer invalidates sharers + owner.
            owner = self.downer[b]
            if at == AT_LOAD:
                latency = self._h2c(home, owner, _FWD_GET_S)
                latency += self._c2c(owner, core, _DATA)
                self._install(core, b, _S, 0)
                self.dshare[b] |= 1 << core
                self.x_dirty_shares += 1
                return latency
            inv_latency = self._inv_sharers(b, core, home)
            latency = self._h2c(home, owner, _FWD_GET_M)
            latency += self._c2c(owner, core, _DATA)
            self.inval += 1
            cset = self.l2sets[owner].get(self.sidx2[b])
            if cset is not None:
                cset.pop(b, None)
            cset = self.l1sets[owner].get(self.sidx1[b])
            if cset is not None:
                cset.pop(b, None)
            self.pstate[owner][b] = _I
            self.wmask[owner][b] = 0
            self._install(core, b, _M, mask)
            self.dstate[b] = _M
            self.downer[b] = core
            self.dshare[b] = 0
            return inv_latency if inv_latency > latency else latency
        # E or M: forward to the owner
        return self._forward(core, b, at, mask, home)

    def _forward(self, core: int, b: int, at: int, mask: int, home: int) -> int:
        owner = self.downer[b]
        if at != AT_LOAD:
            # Fwd-GetM: invalidate the owner, transfer ownership.
            latency = self._h2c(home, owner, _FWD_GET_M)
            latency += self._c2c(owner, core, _DATA)
            self.inval += 1
            cset = self.l2sets[owner].get(self.sidx2[b])
            if cset is not None:
                cset.pop(b, None)
            cset = self.l1sets[owner].get(self.sidx1[b])
            if cset is not None:
                cset.pop(b, None)
            self.pstate[owner][b] = _I
            self._install(core, b, _M, mask)
            self.dstate[b] = _M
            self.downer[b] = core
            self.dshare[b] = 0
            return latency
        # Fwd-GetS: downgrade the owner to S, write back if dirty — except
        # under MOESI with a directory-M line, where the owner keeps the
        # dirty data in O instead (MOESIProtocol._forward_to_owner; a
        # silently-upgraded E line stays on the MESI path, like the object
        # protocol which dispatches on the directory state).
        if self.is_moesi and self.dstate[b] == _M:
            latency = self._h2c(home, owner, _FWD_GET_S)
            latency += self._c2c(owner, core, _DATA)
            self.downg += 1
            self.pstate[owner][b] = _O  # written mask retained
            self._install(core, b, _S, 0)
            self.dstate[b] = _O
            self.dshare[b] |= 1 << core
            self.x_dirty_shares += 1
            return latency
        latency = self._h2c(home, owner, _FWD_GET_S)
        latency += self._c2c(owner, core, _DATA)
        self.downg += 1
        if self.pstate[owner][b] == _M:
            self._c2h(owner, home, _WB_DATA)
            self.wb += 1
            self._llc_fill(b, home)
        self.pstate[owner][b] = _S
        self.wmask[owner][b] = 0
        self._install(core, b, _S, 0)
        self.dstate[b] = _S
        self.dshare[b] = (1 << owner) | (1 << core)
        self.downer[b] = -1
        return latency

    # ------------------------------------------------------------------
    # Private-cache install/evict (SetAssocCache + _evict_private)
    # ------------------------------------------------------------------
    def _l1_install(self, core: int, b: int) -> None:
        sets = self.l1sets[core]
        idx = self.sidx1[b]
        cset = sets.get(idx)
        if cset is None:
            sets[idx] = {b: True}
            return
        if b in cset:
            del cset[b]
            cset[b] = True
            return
        assoc = self.l1_assoc
        while len(cset) >= assoc:
            del cset[next(iter(cset))]  # silent: block stays valid in L2
        cset[b] = True

    def _install(self, core: int, b: int, state: int, mask: int) -> None:
        """``_install_private``: L2 install (with victim eviction), written
        mask reset, L1 fill.  The mask reset is load-bearing: invalidation
        paths leave stale masks behind in the flat arrays (the object model
        simply discards the CacheBlock), so install must clobber them."""
        sets = self.l2sets[core]
        idx = self.sidx2[b]
        cset = sets.get(idx)
        if cset is None:
            cset = sets[idx] = {}
        if b in cset:
            del cset[b]
            cset[b] = True
        else:
            assoc = self.l2_assoc
            while len(cset) >= assoc:
                victim = next(iter(cset))
                del cset[victim]
                self._evict(core, victim)
            cset[b] = True
        self.pstate[core][b] = state
        self.wmask[core][b] = mask
        self._l1_install(core, b)

    def _evict(self, core: int, v: int) -> None:
        """``_evict_private``: ``v`` already left the L2 set (popitem before
        hook, like SetAssocCache._make_room)."""
        cset = self.l1sets[core].get(self.sidx1[v])
        if cset is not None:
            cset.pop(v, None)
        st = self.pstate[core][v]
        home = self._home(v)
        if self.is_sisd:
            # SISDProtocol._evict_private: self-downgrade if dirty, silent
            # otherwise — there is no directory to keep exact.
            if self.wmask[core][v]:
                self._c2h(core, home, _WB_DATA)
                self.wb += 1
                self.x_self_downgrades += 1
                self._llc_fill(v, home)
                self.wmask[core][v] = 0
            self.pstate[core][v] = _I
            return
        if st == _W:
            # _flush_ward_copy: pre-pay reconciliation (§5.3)
            if self.wmask[core][v]:
                self._c2h(core, home, _WB_DATA)
                self.wb += 1
                self._llc_fill(v, home)
            else:
                self._c2h(core, home, _PUT_M)
            self.dshare[v] &= ~(1 << core)
            self.pstate[core][v] = _I
            self.wmask[core][v] = 0
            return
        if st >= _E:  # M or E
            self._c2h(core, home, _PUT_M)
            if st == _M:
                self.wb += 1
                self._llc_fill(v, home)
            self.dstate[v] = _I
            self.downer[v] = -1
            self.dshare[v] = 0
        elif st == _O:
            # MOESIProtocol._evict_private: the deferred writeback lands.
            self._c2h(core, home, _PUT_M)
            self.wb += 1
            self._llc_fill(v, home)
            self.downer[v] = -1
            self.dstate[v] = _S if self.dshare[v] else _I
        elif st == _S:
            self._c2h(core, home, _PUT_M)
            self.dshare[v] &= ~(1 << core)
            # collapse only from dir-S: an S copy can leave an O entry
            if not self.dshare[v] and self.dstate[v] == _S:
                self.dstate[v] = _I
        self.pstate[core][v] = _I

    # ------------------------------------------------------------------
    # LLC / DRAM
    # ------------------------------------------------------------------
    def _llc_fill(self, b: int, home: int) -> None:
        sets = self.llcsets[home]
        idx = self.sidxL[b]
        cset = sets.get(idx)
        if cset is None:
            sets[idx] = {b: True}
            return
        if b in cset:
            del cset[b]
            cset[b] = True
            return
        assoc = self.llc_assoc
        while len(cset) >= assoc:
            del cset[next(iter(cset))]
        cset[b] = True

    def _fetch(self, b: int, home: int) -> int:
        """``_fetch_data_at_home``: LLC hit is free (the l3 latency was
        charged by the caller), miss goes to DRAM and fills the slice."""
        self.l3a += 1
        cset = self.llcsets[home].get(self.sidxL[b])
        if cset is not None and b in cset:
            del cset[b]
            cset[b] = True
            return 0
        self.dram += 1
        self.messages[(_DATA, "memory")] += 1
        self._llc_fill(b, home)
        return self.dram_lat

    # ------------------------------------------------------------------
    # SI/SD extensions (SISDProtocol, transcribed)
    # ------------------------------------------------------------------
    def _sisd_self_invalidate(self, core: int, b: int) -> None:
        """``_self_invalidate``: flush written sectors home, drop the copy."""
        if self.wmask[core][b]:
            self._c2h(core, self._home(b), _WB_DATA)
            self.wb += 1
            self.x_self_downgrades += 1
            self._llc_fill(b, self._home(b))
            self.wmask[core][b] = 0
        self.x_self_invalidations += 1
        cset = self.l2sets[core].get(self.sidx2[b])
        if cset is not None:
            cset.pop(b, None)
        cset = self.l1sets[core].get(self.sidx1[b])
        if cset is not None:
            cset.pop(b, None)
        self.pstate[core][b] = _I

    def _sisd_rmw(self, core: int, b: int) -> int:
        """``_rmw_at_home``: flush any local copy, execute at the home
        slice, cache nothing."""
        self.tot += 1
        latency = self.l1_lat
        cset1 = self.l1sets[core].get(self.sidx1[b])
        present = cset1 is not None and b in cset1
        if present:
            del cset1[b]  # lookup refreshes LRU before the invalidate
            cset1[b] = True
        else:
            latency += self.l2_lat
            self.l2a += 1
            cset2 = self.l2sets[core].get(self.sidx2[b])
            present = cset2 is not None and b in cset2
            if present:
                del cset2[b]
                cset2[b] = True
        if present:
            self._sisd_self_invalidate(core, b)
        home = self._home(b)
        latency += self._c2h(core, home, _GET_M)
        latency += self.l3_lat
        latency += self._fetch(b, home)
        latency += self._h2c(home, core, _DATA)
        return latency

    def _sisd_region_add(self, start: int, end: int) -> None:
        """Tag already-cached copies in the new region W, like
        ``SISDProtocol.add_region``."""
        baddrs = self.baddrs
        for core in range(len(self.l2sets)):
            pst = self.pstate[core]
            for cset in self.l2sets[core].values():
                for b in cset:
                    if start <= baddrs[b] < end and pst[b] != _W:
                        pst[b] = _W

    def _sisd_region_remove(self, region) -> None:
        """``SISDProtocol.remove_region``: self-invalidate every W copy of
        the closed region, per core, unless another region still covers
        it.  Iteration order matches ``SetAssocCache.blocks()`` (set
        creation order, then LRU order) so LLC fills land identically."""
        contains = self.regions.contains
        baddrs = self.baddrs
        for core in range(len(self.l2sets)):
            pst = self.pstate[core]
            doomed = [
                b
                for cset in self.l2sets[core].values()
                for b in cset
                if pst[b] == _W
                and region.start <= baddrs[b] < region.end
                and not contains(baddrs[b])
            ]
            for b in doomed:
                self._sisd_self_invalidate(core, b)

    # ------------------------------------------------------------------
    # WARDen extensions
    # ------------------------------------------------------------------
    def _ward_grant(self, core: int, b: int, mask: int, home: int) -> int:
        latency = self._fetch(b, home)
        latency += self._h2c(home, core, _DATA_E)
        self.dshare[b] |= 1 << core
        self._register_ward(b)
        self._install(core, b, _W, mask)
        self.wacc += 1
        return latency

    def _enter_ward(self, b: int) -> None:
        owner = self.downer[b]
        if owner >= 0:
            self.dshare[b] |= 1 << owner
            cset = self.l2sets[owner].get(self.sidx2[b])
            if cset is not None and b in cset:
                self.pstate[owner][b] = _W
        self.downer[b] = -1
        self.dstate[b] = _W
        self._register_ward(b)

    def _register_ward(self, b: int) -> None:
        for region in self.regions.regions_containing(self.baddrs[b]):
            region.blocks.add(b)

    def _region_add(self, start: int, end: int) -> None:
        region = self.regions.add(start, end)
        if region is not None:
            self.region_adds += 1
            self.messages[(_REGION_ADD_MSG, "intra")] += 1
            self.rid_map[region.region_id] = region
            if self.is_sisd:
                self._sisd_region_add(start, end)

    def _region_remove(self, rid: int) -> None:
        region = self.rid_map.pop(rid, None)
        if region is None:
            return
        self.regions.remove(region)
        self.region_removes += 1
        self.messages[(_REGION_REMOVE_MSG, "intra")] += 1
        if self.is_sisd:
            self._sisd_region_remove(region)
            return
        contains = self.regions.contains
        baddrs = self.baddrs
        dstate = self.dstate
        for b in sorted(region.blocks):
            if dstate[b] != _W:
                continue  # already evicted/reconciled
            if contains(baddrs[b]):
                continue  # still covered by an overlapping region
            self._reconcile(b)

    def _reconcile(self, b: int) -> None:
        home = self._home(b)
        i2 = self.sidx2[b]
        copies = []
        sh = self.dshare[b]
        core = 0
        while sh:  # ascending, like sorted(entry.sharers)
            if sh & 1:
                cset = self.l2sets[core].get(i2)
                if cset is not None and b in cset:
                    copies.append(core)
            sh >>= 1
            core += 1
        self.recon += 1
        wmask = self.wmask
        union_mask, true_sharing, keep_flags = reconcile_plan(
            [wmask[c][b] for c in copies]
        )
        keep = 0
        for c, current in zip(copies, keep_flags):
            if wmask[c][b]:
                self._c2h(c, home, _RECONCILE)
                self.wb += 1
                wmask[c][b] = 0
            if current:
                self.pstate[c][b] = _S
                keep |= 1 << c
            else:
                self.pstate[c][b] = _I
                cset = self.l2sets[c].get(i2)
                if cset is not None:
                    cset.pop(b, None)
                cset = self.l1sets[c].get(self.sidx1[b])
                if cset is not None:
                    cset.pop(b, None)
        if union_mask:
            self._llc_fill(b, home)
        if len(copies) > 1:
            self.recon_shared += 1
            if true_sharing:
                self.recon_true += 1
        self.downer[b] = -1
        self.dshare[b] = keep
        self.dstate[b] = _S if keep else _I

    # ------------------------------------------------------------------
    def _place(self, thread: int, a: int, size: int) -> None:
        socket = self.soc_of_thread[thread]
        first = a >> _PAGE_SHIFT
        last = (a + (size if size > 1 else 1) - 1) >> _PAGE_SHIFT
        homes = self.page_homes
        for page in range(first, last + 1):
            if page not in homes:
                homes[page] = socket

    # ------------------------------------------------------------------
    def _finalize(self) -> RunStats:
        meta = self.trace.meta
        cfg = self.config
        stats = RunStats(
            benchmark=meta.get("benchmark", ""),
            protocol=meta.get("protocol_name", ""),
            machine=cfg.name,
            num_threads=cfg.num_threads,
        )
        coh = stats.coherence
        coh.messages = self.messages
        coh.invalidations = self.inval
        coh.downgrades = self.downg
        coh.dram_accesses = self.dram
        coh.l3_accesses = self.l3a
        # every access performs exactly one L1 lookup, so the recorded
        # Machine.finalize L1 hits+misses sum equals total_accesses
        coh.l1_accesses = self.tot
        coh.l2_accesses = self.l2a
        coh.ward_accesses = self.wacc
        coh.total_accesses = self.tot
        coh.ward_region_adds = self.region_adds
        coh.ward_region_removes = self.region_removes
        coh.reconciled_blocks = self.recon
        coh.reconciled_shared_blocks = self.recon_shared
        coh.reconciled_true_sharing_blocks = self.recon_true
        coh.writebacks = self.wb
        if self.x_dirty_shares:
            coh.extra["dirty_shares"] = self.x_dirty_shares
        if self.x_self_downgrades:
            coh.extra["self_downgrades"] = self.x_self_downgrades
        if self.x_self_invalidations:
            coh.extra["self_invalidations"] = self.x_self_invalidations

        cores = CoreStats()
        cores.loads = sum(self.loads)
        cores.stores = sum(self.stores)
        cores.rmws = sum(self.rmws)
        cores.compute_instrs = sum(self.ci)
        cores.spin_loads = sum(self.spins)
        cores.load_stall_cycles = sum(self.lstall)
        cores.store_buffer_stall_cycles = sum(self.sbstall)
        for attempts, successes in meta.get("steals", []):
            cores.steal_attempts += attempts
            cores.successful_steals += successes
        stats.cores = cores
        stats.cycles = self.clk[meta.get("final_thread", 0)]
        EnergyModel(cfg).compute(stats)
        return stats


def replay_trace(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    obs_sink=None,
):
    """Replay a trace through the kernel; returns a ``BenchResult``.

    With ``config=None`` the trace's recorded config is used and the result
    is bit-identical to the interpreted engine.  Passing a different config
    produces the trace-driven approximation described in the module doc.
    """
    from repro.analysis.run import BenchResult

    meta = trace.meta
    if obs_sink is not None:
        obs_sink.emit(ReplayEvent(
            0, "replay-start", meta.get("benchmark", ""),
            meta.get("protocol_name", ""), events=len(trace),
        ))
    kernel = ReplayKernel(trace, config)
    stats = kernel.run()
    result = BenchResult(
        benchmark=meta.get("benchmark", ""),
        protocol=meta.get("protocol_name", ""),
        machine=kernel.config.name,
        size=meta.get("size", "default"),
        stats=stats,
        result=decode_result(meta["result"]) if "result" in meta else None,
        ward_checked=False,
    )
    if obs_sink is not None:
        obs_sink.emit(ReplayEvent(
            0, "replay-done", result.benchmark, result.protocol,
            events=len(trace),
        ))
    return result
