"""Trace record/replay: capture one interpreted run, replay it fast.

The interpreted engine (scheduler + runtime + per-block objects) decides
*which* protocol-visible events happen: memory accesses with their thread
and address, WARD region boundaries, NUMA placement, and scheduler clock
synchronisations.  For a fixed (benchmark, protocol, config, seed, policy)
tuple that event stream is deterministic — so it can be recorded once and
re-executed by a far cheaper interpreter that drives the MESI/WARDen state
machines directly over packed arrays, with no heap, scheduler, or runtime
in the loop.

* :mod:`repro.replay.trace`  — the columnar trace container, its serialised
  form, and the fingerprinted on-disk store under ``.warden-cache/traces``.
* :mod:`repro.replay.record` — a recording ``Machine``/``CoreModel`` pair
  that wraps one interpreted run and captures the event stream.
* :mod:`repro.replay.kernel` — the vectorized replay kernel; bit-identical
  ``RunStats`` to the interpreted engine for the recorded tuple.

Replay of a trace under a *different* machine config is a trace-driven
approximation (the event stream is the recorded one; only the memory-system
response changes) — useful for memory-hierarchy sweeps, never cached as an
exact result.  Set ``REPRO_REPLAY=0`` to force every consumer back onto the
interpreted engine.
"""

from repro.replay.kernel import ReplayKernel, replay_trace
from repro.replay.record import (
    RecordingCore,
    RecordingMachine,
    record_benchmark,
)
from repro.replay.trace import (
    TRACE_SCHEMA,
    Trace,
    TraceStore,
    config_from_dict,
)

__all__ = [
    "TRACE_SCHEMA",
    "Trace",
    "TraceStore",
    "config_from_dict",
    "RecordingCore",
    "RecordingMachine",
    "record_benchmark",
    "ReplayKernel",
    "replay_trace",
]
