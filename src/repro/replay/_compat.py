"""Optional-dependency shim for the replay subsystem.

numpy accelerates trace *preprocessing* (block factorization, repeat-run
detection, set-index tables); the event interpreter itself is pure Python
either way, so replay results are bit-identical with or without it.  The
``REPRO_NUMPY=0`` escape hatch forces the pure-Python fallback — tests use
it to exercise both paths on a numpy-equipped host, and it documents that
numpy is an accelerator (the ``[fast]`` extra), never a requirement.
"""

from __future__ import annotations

import os


def load_numpy():
    """Return the numpy module, or None (not installed, or ``REPRO_NUMPY=0``).

    Resolved at each call site (not import time) so the environment gate
    can be flipped between replays within one process.
    """
    if os.environ.get("REPRO_NUMPY", "1") == "0":
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy
