"""Columnar protocol-event traces and their fingerprinted on-disk store.

A trace is the protocol-visible event stream of one interpreted run, in
struct-of-arrays form: nine parallel ``array`` columns plus a JSON-able
``meta`` dict.  Event kinds:

======================  =====================================================
``K_ACCESS`` (0)        one load/store/RMW: thread, atype, size, spin flag,
                        address (``aux`` unused)
``K_REGION_ADD`` (1)    WARD region activation: ``addr`` = start,
                        ``aux`` = end
``K_REGION_REMOVE`` (2) WARD region removal: ``aux`` = region id (ids are
                        assigned identically on replay, so this is enough)
``K_PLACE`` (3)         NUMA first-touch placement: ``addr`` = base,
                        ``aux`` = size, issuing thread decides the socket
``K_SYNC`` (4)          scheduler clock clamp: thread's clock jumps forward
                        to ``aux`` if behind (strand handoff)
``K_FLUSH`` (5)         trailing pending charge carrier (see below)
``K_LLC_WARM`` (6)      input-loader LLC warm fill: ``addr`` = block, no
                        timing, no directory transaction
======================  =====================================================

Between protocol events a thread accrues *pending* charges — compute
instructions and idle/backoff cycles that advance only its local clock.
The recorder coalesces them into the ``pre_instrs``/``pre_cycles`` columns
of the thread's *next* event, and emits one ``K_FLUSH`` per thread at the
end of the run for charges with no successor event.  This is what makes
replay fast: compute batches vanish into two integers on the following
access.

Serialisation: ``b"WARDTRACE1\\n"`` magic, an 8-byte little-endian header
length, a JSON header (meta + column layout), then the zlib-compressed
concatenation of the raw column buffers.  Column buffers are native-endian
— traces are a local cache keyed by the machine-independent task
fingerprint, not an interchange format.

:class:`TraceStore` keeps traces under ``.warden-cache/traces/<task
fingerprint>.wtrace``.  The task fingerprint (see
:func:`repro.analysis.pool.task_fingerprint`) covers the full machine
config *and* the repo code hash, and is embedded in the trace itself, so a
stale recording — older code, different config — can never replay: the
store returns a miss and the caller re-records.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from array import array
from pathlib import Path
from typing import Optional

from repro.analysis.pool import DEFAULT_CACHE_DIR, code_fingerprint
from repro.common.config import CacheConfig, EnergyConfig, MachineConfig

TRACE_MAGIC = b"WARDTRACE1\n"
TRACE_SCHEMA = 1

K_ACCESS = 0
K_REGION_ADD = 1
K_REGION_REMOVE = 2
K_PLACE = 3
K_SYNC = 4
K_FLUSH = 5
K_LLC_WARM = 6

# atype codes for the ``atype`` column
AT_LOAD = 0
AT_STORE = 1
AT_RMW = 2

#: (column name, array typecode); ``size`` is 'h' because an access size
#: may equal the block size (64/128), past the signed-byte range.
_COLUMNS = (
    ("kind", "B"),
    ("thread", "h"),
    ("atype", "b"),
    ("size", "h"),
    ("spin", "b"),
    ("addr", "q"),
    ("aux", "q"),
    ("pre_instrs", "q"),
    ("pre_cycles", "q"),
)


class Trace:
    """One recorded run: parallel event columns plus a ``meta`` dict."""

    __slots__ = tuple(name for name, _ in _COLUMNS) + ("meta", "_prep")

    def __init__(self, meta: Optional[dict] = None) -> None:
        for name, typecode in _COLUMNS:
            setattr(self, name, array(typecode))
        self.meta: dict = meta if meta is not None else {}
        # Replay preprocessing memo, keyed by block size (the only config
        # parameter the factorized columns depend on).  Populated by
        # ReplayKernel._prepare; never serialized — repeat replays and
        # config sweeps over one trace share the load-time work.
        self._prep: dict = {}

    def __len__(self) -> int:
        return len(self.kind)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        header = {
            "schema": TRACE_SCHEMA,
            "events": len(self),
            "columns": [[name, code] for name, code in _COLUMNS],
            "meta": self.meta,
        }
        header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
        payload = zlib.compress(
            b"".join(getattr(self, name).tobytes() for name, _ in _COLUMNS), 6
        )
        return (
            TRACE_MAGIC
            + len(header_blob).to_bytes(8, "little")
            + header_blob
            + payload
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Trace":
        if not blob.startswith(TRACE_MAGIC):
            raise ValueError("not a WARDTRACE blob")
        off = len(TRACE_MAGIC)
        header_len = int.from_bytes(blob[off:off + 8], "little")
        off += 8
        header = json.loads(blob[off:off + header_len].decode("utf-8"))
        if header.get("schema") != TRACE_SCHEMA:
            raise ValueError(f"trace schema {header.get('schema')} != {TRACE_SCHEMA}")
        if [tuple(c) for c in header["columns"]] != list(_COLUMNS):
            raise ValueError("trace column layout mismatch")
        n = header["events"]
        raw = zlib.decompress(blob[off + header_len:])
        trace = cls(meta=header["meta"])
        pos = 0
        for name, typecode in _COLUMNS:
            col = array(typecode)
            width = col.itemsize * n
            col.frombytes(raw[pos:pos + width])
            pos += width
            setattr(trace, name, col)
        if pos != len(raw):
            raise ValueError("trace payload length mismatch")
        return trace

    # ------------------------------------------------------------------
    def append(
        self, kind: int, thread: int, atype: int, size: int, spin: int,
        addr: int, aux: int, pre_instrs: int, pre_cycles: int,
    ) -> None:
        self.kind.append(kind)
        self.thread.append(thread)
        self.atype.append(atype)
        self.size.append(size)
        self.spin.append(spin)
        self.addr.append(addr)
        self.aux.append(aux)
        self.pre_instrs.append(pre_instrs)
        self.pre_cycles.append(pre_cycles)


# ----------------------------------------------------------------------
def encode_result(value) -> str:
    """Pickle+b64 a benchmark's functional result into trace meta."""
    return base64.b64encode(pickle.dumps(value, protocol=4)).decode("ascii")


def decode_result(blob: str):
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def config_from_dict(data: dict) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from ``dataclasses.asdict`` output
    (the form embedded in trace meta)."""
    kwargs = dict(data)
    for level in ("l1", "l2", "l3"):
        kwargs[level] = CacheConfig(**kwargs[level])
    kwargs["energy"] = EnergyConfig(**kwargs["energy"])
    return MachineConfig(**kwargs)


# ----------------------------------------------------------------------
class TraceStore:
    """Content-addressed trace files under ``<cache>/traces``.

    Keys are task fingerprints (config + code hash); :meth:`load` returns
    None — never a wrong trace — on a missing, corrupt, schema-mismatched,
    or stale (embedded fingerprint differs) file.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else (
            Path(DEFAULT_CACHE_DIR) / "traces"
        )

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.wtrace"

    def load(self, fingerprint: str) -> Optional[Trace]:
        path = self.path_for(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            trace = Trace.from_bytes(blob)
        except Exception:
            try:  # quarantine: a corrupt file should not shadow re-records
                path.unlink()
            except OSError:
                pass
            return None
        meta = trace.meta
        if meta.get("fingerprint") != fingerprint:
            return None
        if meta.get("code_fingerprint") != code_fingerprint():
            return None  # recorded by different code: stale by definition
        return trace

    def store(self, fingerprint: str, trace: Trace) -> Optional[Path]:
        """Atomically persist; best-effort (a read-only FS is not an error)."""
        path = self.path_for(fingerprint)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(trace.to_bytes())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        return path
