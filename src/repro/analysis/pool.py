"""Parallel run fan-out and the persistent on-disk result cache.

The (benchmark x protocol x seed) matrix behind every figure harness is
embarrassingly parallel: each simulation is a deterministic, isolated
process-sized unit of work.  :func:`run_matrix` fans the matrix out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges results in task
order, so the output is bit-identical to a serial sweep.

:class:`DiskCache` makes the sweep incremental across invocations: results
live in ``.warden-cache/`` keyed by a content hash of the *full*
:class:`~repro.common.config.MachineConfig`, the benchmark coordinates
(name/size/seed/policy/check_ward), and a fingerprint of the simulator
source itself — editing any file under ``repro/`` invalidates every entry,
so a stale cache can never masquerade as a fresh simulation.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional

import repro
from repro.common.config import MachineConfig
from repro.common.stats import RunStats
from repro.hlpl.policy import MarkingPolicy

#: default location of the persistent result cache (relative to the cwd)
DEFAULT_CACHE_DIR = ".warden-cache"

#: bump when the cache payload layout changes (old entries fall back to re-run)
CACHE_SCHEMA = 1

_code_fingerprint: Optional[str] = None


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Content hash of the *entire* machine configuration.

    Unlike keying on ``config.name``, two differently-tuned configs can
    never alias: every field (cache geometries, latencies, energy model,
    protocol knobs) participates in the hash.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return _sha256(payload.encode("utf-8"))


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (cached per process).

    Any edit to the simulator invalidates previously cached results —
    correctness first, incrementality second.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def _reset_code_fingerprint() -> None:
    """Test hook: forget the cached per-process code fingerprint."""
    global _code_fingerprint
    _code_fingerprint = None


# ----------------------------------------------------------------------
# Task descriptions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunTask:
    """One (benchmark, protocol, config, size, seed, policy) simulation."""

    benchmark: str
    protocol: str
    config: MachineConfig
    size: str = "default"
    seed: int = 42
    policy: MarkingPolicy = MarkingPolicy.FULL
    check_ward: bool = False


def task_fingerprint(task: RunTask, code: Optional[str] = None) -> str:
    """Content-addressed cache key for one simulation run."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "benchmark": task.benchmark,
            "protocol": task.protocol,
            "size": task.size,
            "seed": task.seed,
            "policy": task.policy.value,
            "check_ward": task.check_ward,
            "config": dataclasses.asdict(task.config),
            "code": code if code is not None else code_fingerprint(),
        },
        sort_keys=True,
    )
    return _sha256(payload.encode("utf-8"))


# ----------------------------------------------------------------------
# Persistent result cache
# ----------------------------------------------------------------------


class DiskCache:
    """Content-addressed on-disk store of :class:`BenchResult` payloads.

    One JSON file per entry under ``root``; writes are atomic
    (temp file + rename), loads tolerate missing, truncated, corrupted,
    or schema-mismatched entries by falling back to a re-run.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def load(self, fingerprint: str):
        """Return the cached BenchResult for ``fingerprint``, or None."""
        from repro.analysis.run import BenchResult

        path = self.path_for(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload["schema"] != CACHE_SCHEMA:
                raise ValueError(f"cache schema {payload['schema']}")
            result = BenchResult(
                benchmark=payload["benchmark"],
                protocol=payload["protocol"],
                machine=payload["machine"],
                size=payload["size"],
                stats=RunStats.from_dict(payload["stats"]),
                result=pickle.loads(base64.b64decode(payload["result"])),
                ward_checked=payload["ward_checked"],
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted / stale / unreadable entry: evict it, re-run.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, fingerprint: str, result) -> None:
        """Persist ``result`` under ``fingerprint`` (atomic, last-wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "fingerprint": fingerprint,
                "benchmark": result.benchmark,
                "protocol": result.protocol,
                "machine": result.machine,
                "size": result.size,
                "ward_checked": result.ward_checked,
                "stats": result.stats.to_dict(),
                "result": base64.b64encode(
                    pickle.dumps(result.result, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii"),
            },
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path_for(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ----------------------------------------------------------------------
# The process-pool fan-out
# ----------------------------------------------------------------------


def _execute_task(task: RunTask, cache_dir: Optional[str] = None):
    """Run one task in the current process (pool worker entry point)."""
    from repro.analysis import run as run_mod

    previous = run_mod.get_disk_cache()
    if cache_dir is not None:
        run_mod.set_disk_cache(DiskCache(cache_dir))
    try:
        return run_mod.run_benchmark(
            task.benchmark,
            task.protocol,
            task.config,
            size=task.size,
            seed=task.seed,
            policy=task.policy,
            check_ward=task.check_ward,
        )
    finally:
        if cache_dir is not None:
            run_mod.set_disk_cache(previous)


def run_matrix(
    tasks: Iterable[RunTask],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List:
    """Execute a run matrix, ``jobs`` processes wide.

    Results come back in task order regardless of completion order, so a
    parallel sweep merges deterministically — and, because every simulation
    is seeded and isolated, each ``RunStats`` is bit-identical to what the
    serial path would produce.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [_execute_task(task, cache_dir) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute_task, tasks, [cache_dir] * len(tasks)))
