"""Parallel run fan-out, the persistent result cache, and the robustness
layer that keeps a long (benchmark x protocol x seed) sweep alive.

The matrix behind every figure harness is embarrassingly parallel: each
simulation is a deterministic, isolated process-sized unit of work.
:func:`run_matrix` fans the matrix out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges results in task
order, so the output is bit-identical to a serial sweep.  On top of the
fan-out sits a fault-tolerant scheduler:

* **per-task timeouts** — a hung worker is killed, the pool re-spawned,
  and the task retried (:class:`~repro.common.errors.TaskTimeoutError`
  once the retry budget is spent);
* **bounded retry** with exponential backoff and *seeded* jitter, so a
  retried sweep sleeps the same amount every time it is replayed;
* **``BrokenProcessPool`` recovery** — a crashed worker triggers a pool
  re-spawn (bounded by ``max_respawns``), then graceful degradation to
  serial execution when workers keep dying;
* **checkpoint/resume** — completed tasks are journaled to
  ``.warden-cache/journal-<matrix-fingerprint>.jsonl`` as they finish, so
  an interrupted matrix resumes from the journal with bit-identical
  merged results.

Robustness events (retries, timeouts, respawns, fallback) are recorded in
a :class:`MatrixReport` as typed :class:`~repro.obs.tracer.MatrixEvent`
objects, optionally mirrored into any ``repro.obs`` sink, and surfaced in
run manifests.  Deterministic fault injection for all of the above lives
in :mod:`repro.analysis.faults`.

:class:`DiskCache` makes the sweep incremental across invocations: results
live in ``.warden-cache/`` keyed by a content hash of the *full*
:class:`~repro.common.config.MachineConfig`, the benchmark coordinates
(name/size/seed/policy/check_ward), and a fingerprint of the simulator
source itself — editing any file under ``repro/`` invalidates every entry,
so a stale cache can never masquerade as a fresh simulation.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import random
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import repro
from repro.analysis import faults
from repro.common.config import MachineConfig
from repro.common.errors import PoolError, TaskTimeoutError
from repro.common.stats import RunStats
from repro.hlpl.policy import MarkingPolicy
from repro.obs.tracer import MatrixEvent

#: default location of the persistent result cache (relative to the cwd)
DEFAULT_CACHE_DIR = ".warden-cache"

#: bump when the cache payload layout changes (old entries fall back to re-run)
CACHE_SCHEMA = 1

_code_fingerprint: Optional[str] = None


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Content hash of the *entire* machine configuration.

    Unlike keying on ``config.name``, two differently-tuned configs can
    never alias: every field (cache geometries, latencies, energy model,
    protocol knobs) participates in the hash.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return _sha256(payload.encode("utf-8"))


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (cached per process).

    Any edit to the simulator invalidates previously cached results —
    correctness first, incrementality second.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def _reset_code_fingerprint() -> None:
    """Test hook: forget the cached per-process code fingerprint."""
    global _code_fingerprint
    _code_fingerprint = None


# ----------------------------------------------------------------------
# Task descriptions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunTask:
    """One (benchmark, protocol, config, size, seed, policy) simulation.

    ``use_cache=False`` makes the task bypass both the in-process and the
    persistent result cache (the bench suite measures simulation, not
    cache lookups); it does not participate in the task fingerprint — a
    run is the same run however it was served.
    """

    benchmark: str
    protocol: str
    config: MachineConfig
    size: str = "default"
    seed: int = 42
    policy: MarkingPolicy = MarkingPolicy.FULL
    check_ward: bool = False
    use_cache: bool = True


def _workload_fingerprint(benchmark: str) -> Optional[str]:
    """Content hash of an external trace file for ``trace:<path>`` names.

    The benchmark *name* of an ingested trace is just a path; two
    different files at the same path must not share cache entries, and
    an edited file must invalidate them.  Missing/unreadable files hash
    as a sentinel — resolution will fail loudly later with a proper
    diagnostic.
    """
    if not benchmark.startswith("trace:"):
        return None
    path = benchmark[len("trace:"):]
    try:
        with open(path, "rb") as handle:
            return _sha256(handle.read())
    except OSError:
        return "unreadable"


def task_fingerprint(task: RunTask, code: Optional[str] = None) -> str:
    """Content-addressed cache key for one simulation run."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "workload": _workload_fingerprint(task.benchmark),
            "benchmark": task.benchmark,
            "protocol": task.protocol,
            "size": task.size,
            "seed": task.seed,
            "policy": task.policy.value,
            "check_ward": task.check_ward,
            "config": dataclasses.asdict(task.config),
            "code": code if code is not None else code_fingerprint(),
        },
        sort_keys=True,
    )
    return _sha256(payload.encode("utf-8"))


def matrix_fingerprint(keys: Iterable[str]) -> str:
    """Identity of a whole run matrix (orders the journal's filename).

    Hashes the ordered task fingerprints, so the same sweep — same tasks,
    same configs, same simulator source — maps to the same journal file
    across interrupted and resumed invocations.
    """
    return _sha256("\n".join(keys).encode("utf-8"))[:16]


# ----------------------------------------------------------------------
# Result payload (de)serialization, shared by the cache and the journal
# ----------------------------------------------------------------------


def encode_result(fingerprint: str, result) -> dict:
    """One BenchResult as a JSON-safe payload dict (see CACHE_SCHEMA)."""
    return {
        "schema": CACHE_SCHEMA,
        "fingerprint": fingerprint,
        "benchmark": result.benchmark,
        "protocol": result.protocol,
        "machine": result.machine,
        "size": result.size,
        "ward_checked": result.ward_checked,
        "stats": result.stats.to_dict(),
        "result": base64.b64encode(
            pickle.dumps(result.result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def decode_result(payload: dict):
    """Inverse of :func:`encode_result`; raises on any mismatch."""
    from repro.analysis.run import BenchResult

    if payload["schema"] != CACHE_SCHEMA:
        raise ValueError(f"cache schema {payload['schema']}")
    return BenchResult(
        benchmark=payload["benchmark"],
        protocol=payload["protocol"],
        machine=payload["machine"],
        size=payload["size"],
        stats=RunStats.from_dict(payload["stats"]),
        result=pickle.loads(base64.b64decode(payload["result"])),
        ward_checked=payload["ward_checked"],
    )


# ----------------------------------------------------------------------
# Persistent result cache
# ----------------------------------------------------------------------


class DiskCache:
    """Content-addressed on-disk store of :class:`BenchResult` payloads.

    One JSON file per entry under ``root``; writes are atomic
    (temp file + rename) and *best-effort* — a transient ``OSError`` is
    absorbed (counted in ``store_errors``) because the cache is an
    optimization, never state; loads tolerate missing, truncated,
    corrupted, or schema-mismatched entries by falling back to a re-run.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def load(self, fingerprint: str):
        """Return the cached BenchResult for ``fingerprint``, or None."""
        path = self.path_for(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
            if faults.ACTIVE:
                text = faults.cache_load_corruption(text)
            result = decode_result(json.loads(text))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted / stale / unreadable entry: evict it, re-run.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, fingerprint: str, result) -> bool:
        """Persist ``result`` under ``fingerprint`` (atomic, last-wins).

        Returns False when a transient filesystem error prevented the
        write; interpreter-exit signals (``KeyboardInterrupt`` /
        ``SystemExit``) always propagate after the temp-file cleanup —
        they must never be swallowed on the error path.
        """
        payload = json.dumps(encode_result(fingerprint, result), sort_keys=True)
        try:
            if faults.ACTIVE:
                faults.cache_store_fault()
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        except OSError:
            self.store_errors += 1
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self.path_for(fingerprint))
        except (KeyboardInterrupt, SystemExit):
            self._discard_tmp(tmp)
            raise
        except OSError:
            self._discard_tmp(tmp)
            self.store_errors += 1
            return False
        except BaseException:
            self._discard_tmp(tmp)
            raise
        self.stores += 1
        return True

    @staticmethod
    def _discard_tmp(tmp: str) -> None:
        try:
            os.unlink(tmp)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------


class MatrixJournal:
    """Append-only JSONL checkpoint of a run matrix's completed tasks.

    One line per completed task (the same payload layout as the disk
    cache), keyed by *task* fingerprint — so a resumed matrix recognizes
    completed work even if the pending subset differs between runs.  The
    filename carries the matrix fingerprint:
    ``<dir>/journal-<matrix-fingerprint>.jsonl``.
    """

    def __init__(self, directory: os.PathLike, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.path = Path(directory) / f"journal-{fingerprint}.jsonl"

    def load(self) -> Dict[str, object]:
        """Task fingerprint -> BenchResult for every intact journal line.

        Torn tail lines (the process died mid-append) and stale-schema
        entries are skipped, not fatal — the matrix just re-runs them.
        """
        out: Dict[str, object] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return out
        for line in lines:
            try:
                payload = json.loads(line)
                out[payload["fingerprint"]] = decode_result(payload)
            except Exception:
                continue
        return out

    def append(self, fingerprint: str, result) -> bool:
        """Checkpoint one completed task; best-effort (False on OSError)."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(encode_result(fingerprint, result), sort_keys=True)
                    + "\n"
                )
        except OSError:
            return False
        return True

    def remove(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Robustness reporting
# ----------------------------------------------------------------------


class MatrixReport:
    """Record of everything a robust matrix run had to survive.

    Accumulates across :func:`run_matrix` invocations (one figure sweeps
    several benchmarks), mirrors each event into an optional ``repro.obs``
    sink, and serializes into run manifests via :meth:`to_dict`.
    """

    def __init__(self, sink=None) -> None:
        self.sink = sink
        self.events: List[MatrixEvent] = []
        self.retries = 0
        self.timeouts = 0
        self.respawns = 0
        self.fallbacks = 0
        self.resumed = 0
        self.completed = 0
        self.faults: Optional[str] = None
        self.fingerprints: List[str] = []

    def record(
        self, action: str, task_index: int = -1, attempt: int = 0,
        detail: str = "",
    ) -> MatrixEvent:
        event = MatrixEvent(0, action, task_index, attempt, detail)
        self.events.append(event)
        if self.sink is not None:
            self.sink.emit(event)
        if action == "retry":
            self.retries += 1
        elif action == "timeout":
            self.timeouts += 1
        elif action == "respawn":
            self.respawns += 1
        elif action == "fallback":
            self.fallbacks += 1
        return event

    @property
    def clean(self) -> bool:
        return not self.events

    def actions(self) -> List[str]:
        return [event.action for event in self.events]

    def to_dict(self) -> dict:
        return {
            "schema": "warden-repro/matrix-report/v1",
            "retries": self.retries,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "fallbacks": self.fallbacks,
            "resumed": self.resumed,
            "completed": self.completed,
            "faults": self.faults,
            "fingerprints": list(self.fingerprints),
            "events": [
                {
                    "action": e.action,
                    "task_index": e.task_index,
                    "attempt": e.attempt,
                    "detail": e.detail,
                }
                for e in self.events
            ],
        }


def _backoff_delay(
    base: float, cap: float, seed: int, index: int, attempt: int
) -> float:
    """Exponential backoff with deterministic (seeded) jitter.

    The jitter stream is keyed by (seed, task index, attempt), so a
    replayed sweep backs off identically — reproducibility extends to the
    failure path.
    """
    rng = random.Random(seed * 1_000_003 + index * 8191 + attempt)
    return min(base * (2 ** max(attempt - 1, 0)), cap) * (0.5 + 0.5 * rng.random())


# ----------------------------------------------------------------------
# The process-pool fan-out
# ----------------------------------------------------------------------


def _pool_worker_init(faults_spec: Optional[str] = None) -> None:
    """Worker bootstrap: arm the ``worker.*`` fault sites in this process."""
    faults.mark_worker()
    if faults_spec:
        faults.install(faults.parse_plan(faults_spec))


def _execute_task(
    task: RunTask,
    cache_dir: Optional[str] = None,
    index: Optional[int] = None,
    attempt: int = 0,
):
    """Run one task in the current process (pool worker entry point)."""
    from repro.analysis import run as run_mod

    if faults.ACTIVE and index is not None:
        faults.worker_faults(index, attempt)
    previous = run_mod.get_disk_cache()
    if cache_dir is not None:
        run_mod.set_disk_cache(DiskCache(cache_dir))
    try:
        return run_mod.run_benchmark(
            task.benchmark,
            task.protocol,
            task.config,
            size=task.size,
            seed=task.seed,
            policy=task.policy,
            check_ward=task.check_ward,
            use_cache=task.use_cache,
        )
    finally:
        if cache_dir is not None:
            run_mod.set_disk_cache(previous)


def _execute_task_timed(
    task: RunTask,
    cache_dir: Optional[str] = None,
    index: Optional[int] = None,
    attempt: int = 0,
):
    """Like :func:`_execute_task` but also returns the wall-clock seconds
    the simulation took *inside* this process (excludes pool spawn/IPC —
    the bench suite's robust mode needs clean per-row timings)."""
    t0 = time.perf_counter()
    result = _execute_task(task, cache_dir, index, attempt)
    return result, time.perf_counter() - t0


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully tear down an executor whose workers may be hung or dead.

    ``shutdown(wait=False)`` alone leaves a hung worker alive forever, so
    the worker processes are killed first.  Reaches into executor
    internals (``_processes``), guarded — on an interpreter where that
    attribute moved, the shutdown still runs and the leaked worker dies
    with the parent.
    """
    try:
        processes = list(getattr(pool, "_processes", {}).values())
    except Exception:
        processes = []
    for proc in processes:
        try:
            proc.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def run_matrix(
    tasks: Iterable[RunTask],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    resume: bool = False,
    journal_dir: Optional[str] = None,
    report: Optional[MatrixReport] = None,
    faults_plan=None,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    seed: int = 0,
    max_respawns: int = 3,
    fallback_serial: bool = True,
) -> List:
    """Execute a run matrix, ``jobs`` processes wide, fault-tolerantly.

    Results come back in task order regardless of completion order, so a
    parallel sweep merges deterministically — and, because every simulation
    is seeded and isolated, each ``RunStats`` is bit-identical to what the
    serial path would produce.  That contract survives worker crashes,
    hangs, and retries: a recovered matrix returns exactly the results a
    clean serial sweep would.

    Robustness knobs (all keyword-only):

    * ``timeout`` — per-task seconds; a task that blows it is retried in a
      fresh pool (the hung worker is killed).  Requires process isolation,
      so ``timeout`` forces the pool path even for ``jobs=1``.
    * ``retries`` — failed/timed-out attempts tolerated per task, with
      exponential backoff and seeded jitter between attempts.
    * ``resume`` / ``journal_dir`` — checkpoint completed tasks to
      ``journal-<matrix-fingerprint>.jsonl`` (under ``journal_dir``,
      ``cache_dir``, or ``.warden-cache``); with ``resume`` the journal is
      read first and only unfinished tasks execute.  The journal is
      removed once the whole matrix completes.
    * ``report`` — a :class:`MatrixReport` collecting robustness events.
    * ``faults_plan`` — a :class:`~repro.analysis.faults.FaultPlan` (or
      its string form) for deterministic fault injection; defaults to the
      installed plan or ``REPRO_FAULTS``.
    """
    tasks = list(tasks)
    plan = faults.resolve_plan(faults_plan)
    robust = (
        timeout is not None
        or retries > 0
        or resume
        or journal_dir is not None
        or report is not None
        or plan is not None
    )
    if not robust and (jobs <= 1 or len(tasks) <= 1):
        return [_execute_task(task, cache_dir) for task in tasks]
    if report is None:
        report = MatrixReport()
    previous_plan = faults.install(plan) if plan is not None else None
    try:
        return _run_matrix_robust(
            tasks, jobs, cache_dir, timeout, retries, resume, journal_dir,
            report, plan, backoff_base, backoff_cap, seed, max_respawns,
            fallback_serial,
        )
    finally:
        if plan is not None:
            faults.install(previous_plan)


def _run_matrix_robust(
    tasks: List[RunTask],
    jobs: int,
    cache_dir: Optional[str],
    timeout: Optional[float],
    retries: int,
    resume: bool,
    journal_dir: Optional[str],
    report: MatrixReport,
    plan,
    backoff_base: float,
    backoff_cap: float,
    seed: int,
    max_respawns: int,
    fallback_serial: bool,
) -> List:
    keys = [task_fingerprint(task) for task in tasks]
    fingerprint = matrix_fingerprint(keys)
    report.fingerprints.append(fingerprint)
    if plan is not None:
        report.faults = plan.describe()

    journal: Optional[MatrixJournal] = None
    if resume or journal_dir is not None:
        journal = MatrixJournal(
            journal_dir or cache_dir or DEFAULT_CACHE_DIR, fingerprint
        )

    results: Dict[int, object] = {}
    attempts = [0] * len(tasks)

    if journal is not None and resume:
        saved = journal.load()
        for i, key in enumerate(keys):
            if key in saved:
                results[i] = saved[key]
        if results:
            report.resumed += len(results)
            report.record(
                "resume", -1, 0,
                detail=f"{len(results)}/{len(tasks)} tasks from journal",
            )

    def finish(i: int, result) -> None:
        results[i] = result
        report.completed += 1
        if journal is not None and not journal.append(keys[i], result):
            report.record("journal-error", i, attempts[i])

    def run_serial(indices: List[int]) -> None:
        for i in indices:
            while True:
                try:
                    finish(i, _execute_task(tasks[i], cache_dir, i, attempts[i]))
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    attempts[i] += 1
                    if attempts[i] > retries:
                        raise PoolError(
                            f"matrix task {i} ({tasks[i].benchmark}/"
                            f"{tasks[i].protocol}) failed after "
                            f"{attempts[i]} attempt(s): {exc!r}"
                        ) from exc
                    report.record("retry", i, attempts[i], detail=repr(exc))
                    time.sleep(_backoff_delay(
                        backoff_base, backoff_cap, seed, i, attempts[i]
                    ))

    pending = [i for i in range(len(tasks)) if i not in results]
    use_pool = jobs > 1 or timeout is not None
    if pending and not use_pool:
        run_serial(pending)
        pending = []

    respawns = 0
    faults_spec = plan.describe() if plan is not None else None
    while pending:
        workers = max(1, min(jobs, len(pending)))
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_worker_init,
            initargs=(faults_spec,),
        )
        futures = {
            i: pool.submit(_execute_task, tasks[i], cache_dir, i, attempts[i])
            for i in pending
        }
        broken = False
        crashed = False
        queue = list(pending)
        qi = 0
        while qi < len(queue):
            i = queue[qi]
            try:
                result = futures[i].result(timeout=timeout)
            except (KeyboardInterrupt, SystemExit):
                _kill_pool(pool)
                raise
            except FuturesTimeout:
                attempts[i] += 1
                report.record("timeout", i, attempts[i] - 1)
                if attempts[i] > retries:
                    _kill_pool(pool)
                    raise TaskTimeoutError(i, timeout or 0.0)
                # The worker is hung and occupies a slot: kill the whole
                # pool and respawn with the remaining tasks.
                broken = True
                break
            except BrokenProcessPool:
                respawns += 1
                crashed = True
                report.record(
                    "respawn", i, attempts[i], detail="BrokenProcessPool"
                )
                broken = True
                break
            except Exception as exc:
                attempts[i] += 1
                if attempts[i] > retries:
                    _kill_pool(pool)
                    raise PoolError(
                        f"matrix task {i} ({tasks[i].benchmark}/"
                        f"{tasks[i].protocol}) failed after "
                        f"{attempts[i]} attempt(s): {exc!r}"
                    ) from exc
                report.record("retry", i, attempts[i], detail=repr(exc))
                time.sleep(_backoff_delay(
                    backoff_base, backoff_cap, seed, i, attempts[i]
                ))
                futures[i] = pool.submit(
                    _execute_task, tasks[i], cache_dir, i, attempts[i]
                )
                continue  # re-wait on the same task
            else:
                finish(i, result)
                qi += 1

        if broken:
            # Harvest tasks that completed before the pool broke.
            for i in pending:
                if i in results:
                    continue
                fut = futures.get(i)
                if (
                    fut is not None and fut.done() and not fut.cancelled()
                    and fut.exception() is None
                ):
                    finish(i, fut.result())
            _kill_pool(pool)
            pending = [i for i in pending if i not in results]
            if crashed:
                # Any in-flight attempt may have been the casualty — move
                # every unfinished task to its next attempt so a
                # deterministic crash fault doesn't re-fire forever.
                for i in pending:
                    attempts[i] += 1
                if respawns > max_respawns:
                    if not fallback_serial:
                        raise PoolError(
                            f"process pool kept dying ({respawns} respawns); "
                            "serial fallback disabled"
                        )
                    report.record(
                        "fallback", -1, 0,
                        detail=f"serial after {respawns} pool respawns",
                    )
                    run_serial(pending)
                    pending = []
        else:
            pool.shutdown()
            pending = [i for i in pending if i not in results]

    if journal is not None:
        journal.remove()
    return [results[i] for i in range(len(tasks))]


# ----------------------------------------------------------------------
# Single-task robust execution (the bench suite's per-row wrapper)
# ----------------------------------------------------------------------


def _replay_task(blob: bytes, config):
    """Replay one serialized trace under ``config`` (pool worker entry).

    Takes the trace as bytes so the pool ships one compact blob per task
    instead of a pickled object graph; module-level for picklability."""
    from repro.replay import Trace, replay_trace

    return replay_trace(Trace.from_bytes(blob), config=config)


def replay_matrix(
    base: RunTask,
    variants,
    jobs: int = 1,
    trace_store=None,
):
    """Record ``base`` once, then replay its trace under each variant config.

    This is the sweep-amplification primitive: an N-point memory-hierarchy
    sweep costs one interpreted run plus N cheap kernel replays instead of
    N interpreted runs.  A variant equal to the recorded config replays
    bit-identically; any other config is a *trace-driven approximation* —
    the instruction stream is the recorded one, only the memory system's
    response changes (see :mod:`repro.replay`) — so results are returned
    directly and never fed into the exact-result caches.

    The trace comes from ``trace_store`` (default: the shared
    ``.warden-cache/traces`` store) when a fingerprint-valid recording
    exists, and is recorded (and persisted) otherwise.  Results come back
    in variant order; with ``jobs > 1`` replays fan out over a process
    pool.
    """
    from repro.replay import TraceStore, record_benchmark, replay_trace

    store = trace_store if trace_store is not None else TraceStore()
    key = task_fingerprint(base)
    trace = store.load(key)
    if trace is None:
        trace, _ = record_benchmark(
            base.benchmark,
            base.protocol,
            base.config,
            size=base.size,
            seed=base.seed,
            policy=base.policy,
            fingerprint=key,
        )
        store.store(key, trace)
    variants = list(variants)
    if jobs <= 1 or len(variants) <= 1:
        return [replay_trace(trace, config=cfg) for cfg in variants]
    blob = trace.to_bytes()
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(variants)))
    try:
        futures = [pool.submit(_replay_task, blob, cfg) for cfg in variants]
        return [future.result() for future in futures]
    finally:
        pool.shutdown()


def run_task_robust(
    task: RunTask,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    seed: int = 0,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    report: Optional[MatrixReport] = None,
    cache_dir: Optional[str] = None,
    index: int = 0,
    faults_plan=None,
) -> Tuple[object, float]:
    """Run one task with timeout/retry protection; returns (result, wall_s).

    ``wall_s`` is measured inside the executing process (no pool-spawn
    overhead).  With a ``timeout`` each attempt runs in a fresh
    single-worker pool — process isolation is the only way to preempt a
    wedged simulation; without one, attempts run in-process.
    """
    if report is None:
        report = MatrixReport()
    plan = faults.resolve_plan(faults_plan)
    previous_plan = faults.install(plan) if plan is not None else None
    if plan is not None:
        report.faults = plan.describe()
    faults_spec = plan.describe() if plan is not None else None
    try:
        attempt = 0
        while True:
            try:
                if timeout is None:
                    return _execute_task_timed(task, cache_dir, index, attempt)
                pool = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_pool_worker_init,
                    initargs=(faults_spec,),
                )
                try:
                    future = pool.submit(
                        _execute_task_timed, task, cache_dir, index, attempt
                    )
                    result, wall = future.result(timeout=timeout)
                except FuturesTimeout:
                    _kill_pool(pool)
                    raise TaskTimeoutError(index, timeout)
                except BaseException:
                    _kill_pool(pool)
                    raise
                pool.shutdown()
                return result, wall
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                attempt += 1
                action = (
                    "timeout" if isinstance(exc, TaskTimeoutError) else "retry"
                )
                report.record(action, index, attempt - 1, detail=repr(exc))
                if attempt > retries:
                    if isinstance(exc, TaskTimeoutError):
                        raise
                    raise PoolError(
                        f"task {task.benchmark}/{task.protocol} failed after "
                        f"{attempt} attempt(s): {exc!r}"
                    ) from exc
                time.sleep(_backoff_delay(
                    backoff_base, backoff_cap, seed, index, attempt
                ))
    finally:
        if plan is not None:
            faults.install(previous_plan)
