"""Plain-text rendering of every table/figure the paper reports."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import ComparisonMetrics, summarize
from repro.bench.microbench import PAPER_TABLE1, PingPongResult
from repro.common.config import MachineConfig


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# ----------------------------------------------------------------------
def table1(results: Dict[str, PingPongResult]) -> str:
    rows = []
    for scenario, res in results.items():
        paper = PAPER_TABLE1[scenario]
        rows.append(
            [
                scenario,
                paper["real_hw"],
                paper["sniper"],
                res.cycles_per_iteration,
            ]
        )
    return render_table(
        ["Scenario", "Paper real HW", "Paper Sniper", "This repro"],
        rows,
        title="Table 1: true-sharing ping-pong latency (cycles/iteration)",
    )


def table2(config: MachineConfig) -> str:
    rows = [
        ["L1 size", f"{config.l1.size_bytes // 1024} KB"],
        ["L2 size", f"{config.l2.size_bytes // 1024} KB"],
        ["L3 size (per core)", f"{config.l3.size_bytes // 1024} KB"],
        ["L1/L2 associativity", config.l1.associativity],
        ["L3 associativity", config.l3.associativity],
        ["Block size", f"{config.block_size} B"],
        ["L1/L2/L3 latencies", f"{config.l1.latency}-{config.l2.latency}-{config.l3.latency} cycles"],
        ["Cores per socket", config.cores_per_socket],
        ["Sockets", config.num_sockets],
        ["Frequency", f"{config.energy.frequency_ghz} GHz"],
        ["Disaggregated", config.disaggregated],
    ]
    return render_table(["Parameter", "Value"], rows, title="Table 2: simulated system")


# ----------------------------------------------------------------------
def speedup_energy_figure(
    metrics: List[ComparisonMetrics], title: str
) -> str:
    rows = [
        [m.benchmark, m.speedup, m.interconnect_savings, m.processor_savings]
        for m in metrics
    ]
    agg = summarize(metrics)
    rows.append(
        ["MEAN", agg["speedup"], agg["interconnect_savings"], agg["processor_savings"]]
    )
    return render_table(
        ["Benchmark", "Speedup", "Interconnect savings %", "Total processor savings %"],
        rows,
        title=title,
    )


def figure9(metrics: List[ComparisonMetrics]) -> str:
    rows = [
        [m.benchmark, m.inv_dg_reduced_per_kilo, m.speedup] for m in metrics
    ]
    return render_table(
        ["Benchmark", "Inv+Down reduced / kilo-instr", "Speedup"],
        rows,
        title="Figure 9: coherence-event reduction vs speedup (dual socket)",
    )


def figure10(metrics: List[ComparisonMetrics]) -> str:
    rows = [
        [m.benchmark, m.downgrade_reduction_pct, m.invalidation_reduction_pct]
        for m in metrics
    ]
    return render_table(
        ["Benchmark", "Downgrade reduction %", "Invalidation reduction %"],
        rows,
        title="Figure 10: share of the reduction by event type",
    )


def figure11(metrics: List[ComparisonMetrics]) -> str:
    rows = [[m.benchmark, m.ipc_improvement_pct] for m in metrics]
    return render_table(
        ["Benchmark", "IPC improvement %"],
        rows,
        title="Figure 11: percentage IPC improvement",
    )
