"""Running one benchmark on one protocol/machine, with result caching.

Figures 8, 9, 10, and 11 all derive from the same dual-socket simulations;
the in-process cache makes the per-figure harnesses share one set of runs.
Both that cache and the optional persistent :class:`DiskCache` are keyed by
:func:`~repro.analysis.pool.task_fingerprint` — a content hash of the full
machine config, the run coordinates, and the simulator source — so two
differently-tuned configs can never alias, and editing the simulator
invalidates every stale entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench import get_benchmark
from repro.common.config import MachineConfig
from repro.common.errors import ReproError
from repro.common.stats import RunStats
from repro.energy.model import EnergyModel
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from repro.verify.ward_checker import WardChecker
from repro.analysis.pool import DiskCache, RunTask, run_matrix, task_fingerprint


class ResultMismatchError(ReproError):
    """A benchmark produced a result different from its reference."""


@dataclass
class BenchResult:
    benchmark: str
    protocol: str
    machine: str
    size: str
    stats: RunStats
    result: Any
    ward_checked: bool = False


_CACHE: Dict[str, BenchResult] = {}

#: process-wide persistent result cache; None disables disk caching
_DISK_CACHE: Optional[DiskCache] = None


def clear_cache() -> None:
    _CACHE.clear()


def set_disk_cache(cache: Optional[DiskCache]) -> Optional[DiskCache]:
    """Install (or, with None, remove) the persistent result cache.

    Returns the previously installed cache so callers can restore it.
    """
    global _DISK_CACHE
    previous = _DISK_CACHE
    _DISK_CACHE = cache
    return previous


def get_disk_cache() -> Optional[DiskCache]:
    return _DISK_CACHE


def _protocol_key(protocol) -> str:
    """Stable cache-key spelling for a protocol name or class."""
    if isinstance(protocol, str):
        return protocol.lower()
    return f"{protocol.__module__}.{protocol.__qualname__}"


def run_benchmark(
    name: str,
    protocol: str,
    config: MachineConfig,
    size: str = "default",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    check_ward: bool = False,
    check_result: bool = True,
    use_cache: bool = True,
    use_disk_cache: bool = True,
    obs_sink=None,
    race_detector=None,
) -> BenchResult:
    """Simulate one benchmark run; verify its result against the reference.

    ``obs_sink`` installs an observability sink (see :mod:`repro.obs`) on
    the machine's tracer for the duration of the run; traced runs bypass
    the result cache (a cached result has no event stream to replay).
    ``race_detector`` attaches a :class:`repro.verify.race.RaceDetector`
    to the runtime; detected runs bypass the cache too (a cached result
    has no access stream to classify).  ``use_disk_cache=False`` skips
    the persistent cache (when one is installed via
    :func:`set_disk_cache`) without disturbing the in-process cache.
    """
    task = RunTask(
        benchmark=name,
        protocol=_protocol_key(protocol),
        config=config,
        size=size,
        seed=seed,
        policy=policy,
        check_ward=check_ward,
    )
    key = task_fingerprint(task)
    if obs_sink is not None or race_detector is not None:
        use_cache = False
    disk = _DISK_CACHE if (use_cache and use_disk_cache) else None
    if use_cache:
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
        if disk is not None:
            hit = disk.load(key)
            if hit is not None:
                _CACHE[key] = hit
                return hit

    bench = get_benchmark(name)
    workload = bench.workload(size=size, seed=seed)
    machine = Machine(config, protocol)
    if obs_sink is not None:
        machine.tracer.install(obs_sink)
    monitor: Optional[WardChecker] = None
    if check_ward and machine.supports_ward:
        monitor = WardChecker(region_table=machine.protocol.region_table)
    rt = Runtime(
        machine,
        policy=policy,
        access_monitor=monitor,
        race_detector=race_detector,
        seed=seed,
    )
    result, stats = rt.run(bench.root_task, workload)
    stats.benchmark = name
    EnergyModel(config).compute(stats)

    if check_result:
        expected = bench.reference(workload)
        if result != expected:
            raise ResultMismatchError(
                f"{name} on {protocol}: result does not match the reference "
                f"(got {str(result)[:80]}..., want {str(expected)[:80]}...)"
            )
    out = BenchResult(
        benchmark=name,
        protocol=machine.protocol.name,
        machine=config.name,
        size=size,
        stats=stats,
        result=result,
        ward_checked=monitor is not None,
    )
    if use_cache:
        _CACHE[key] = out
        if disk is not None:
            disk.store(key, out)
    return out


def replay_benchmark(
    name: str,
    protocol: str,
    config: MachineConfig,
    size: str = "default",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    trace_store=None,
    obs_sink=None,
) -> BenchResult:
    """Run one benchmark via the record/replay path (see :mod:`repro.replay`).

    The first call for a given task records the event trace through the
    interpreted engine and persists it in the fingerprinted trace store;
    every later call replays that trace through the vectorized kernel,
    producing bit-identical ``RunStats`` at a fraction of the cost.  The
    trace fingerprint covers the full config *and* the simulator source, so
    a stale trace can never replay — the store misses and we re-record.

    Replay results never enter the exact-result caches (``_CACHE`` / the
    disk cache): those are reserved for the interpreted engine, and the
    trace store is already the replay path's own cache.  Set
    ``REPRO_REPLAY=0`` to force the interpreted engine.
    """
    import os

    if os.environ.get("REPRO_REPLAY", "1") == "0":
        return run_benchmark(
            name, protocol, config, size=size, seed=seed, policy=policy,
            obs_sink=obs_sink,
        )
    from repro.replay import TraceStore, record_benchmark, replay_trace

    task = RunTask(
        benchmark=name,
        protocol=_protocol_key(protocol),
        config=config,
        size=size,
        seed=seed,
        policy=policy,
    )
    key = task_fingerprint(task)
    store = trace_store if trace_store is not None else TraceStore()
    trace = store.load(key)
    if trace is None:
        trace, result = record_benchmark(
            name, protocol, config, size=size, seed=seed, policy=policy,
            fingerprint=key, obs_sink=obs_sink,
        )
        store.store(key, trace)
        return result
    if obs_sink is not None:
        from repro.obs.tracer import ReplayEvent

        obs_sink.emit(ReplayEvent(
            0, "trace-hit", name, trace.meta.get("protocol_name", ""),
            events=len(trace), detail=str(store.path_for(key)),
        ))
    # The recorded run already verified the result against the reference;
    # replay carries it in the trace, so no re-check is needed here.
    return replay_trace(trace, obs_sink=obs_sink)


def run_pair(
    name: str,
    config: MachineConfig,
    size: str = "default",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    protocols: Sequence[str] = ("mesi", "warden"),
) -> Tuple[BenchResult, ...]:
    """Run a benchmark under each protocol on the same machine/input.

    Defaults to the paper's (MESI, WARDen) pair; any registered protocol
    keys work (e.g. ``("mesi", "moesi", "sisd", "warden")``).
    """
    return tuple(
        run_benchmark(name, proto, config, size=size, seed=seed, policy=policy)
        for proto in protocols
    )


def prefetch(
    tasks: List[RunTask],
    jobs: int = 1,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    resume: bool = False,
    report=None,
) -> None:
    """Warm the in-process cache for ``tasks`` through the run matrix.

    Used by harnesses (e.g. :mod:`repro.analysis.conformance`) that want
    the PR 2 pool/cache machinery — parallel fan-out, disk cache, the
    robustness layer — before reading individual results back through
    :func:`run_benchmark`, which then hits the cache.
    """
    todo = [
        (task, key)
        for task, key in ((t, task_fingerprint(t)) for t in tasks)
        if key not in _CACHE
    ]
    if not todo:
        return
    cache_dir = str(_DISK_CACHE.root) if _DISK_CACHE is not None else None
    results = run_matrix(
        [task for task, _ in todo],
        jobs=jobs,
        cache_dir=cache_dir,
        timeout=timeout,
        retries=retries,
        resume=resume,
        report=report,
    )
    for (_, key), result in zip(todo, results):
        _CACHE[key] = result


#: seeds used by the figure harnesses (averaged to cancel steal-timing noise)
FIGURE_SEEDS = (42, 43, 44)


def run_pairs(
    name: str,
    config: MachineConfig,
    size: str = "default",
    seeds=FIGURE_SEEDS,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    jobs: int = 1,
    protocols: Sequence[str] = ("mesi", "warden"),
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    resume: bool = False,
    report=None,
) -> List[Tuple[BenchResult, ...]]:
    """Run protocol tuples across several seeds (for figure harnesses).

    With ``jobs > 1`` the (protocol x seed) matrix fans out over a process
    pool (see :mod:`repro.analysis.pool`); results merge deterministically
    and are bit-identical to the serial path, land in the in-process cache
    exactly as serial runs would, and flow through the persistent disk
    cache when one is installed.  ``timeout``/``retries``/``resume``/
    ``report`` feed the pool's robustness layer (and force the matrix path
    even for ``jobs=1``).
    """
    robust = (
        timeout is not None or retries > 0 or resume or report is not None
    )
    if jobs > 1 or robust:
        tasks = [
            RunTask(
                benchmark=name,
                protocol=proto,
                config=config,
                size=size,
                seed=seed,
                policy=policy,
            )
            for seed in seeds
            for proto in protocols
        ]
        keys = [task_fingerprint(task) for task in tasks]
        todo = [
            (task, key) for task, key in zip(tasks, keys) if key not in _CACHE
        ]
        if todo:
            cache_dir = str(_DISK_CACHE.root) if _DISK_CACHE is not None else None
            results = run_matrix(
                [task for task, _ in todo],
                jobs=jobs,
                cache_dir=cache_dir,
                timeout=timeout,
                retries=retries,
                resume=resume,
                report=report,
            )
            for (_, key), result in zip(todo, results):
                _CACHE[key] = result
        paired = iter(keys)
        return [
            tuple(_CACHE[next(paired)] for _ in protocols) for _ in seeds
        ]
    return [
        run_pair(
            name, config, size=size, seed=seed, policy=policy,
            protocols=protocols,
        )
        for seed in seeds
    ]
