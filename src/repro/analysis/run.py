"""Running one benchmark on one protocol/machine, with result caching.

Figures 8, 9, 10, and 11 all derive from the same dual-socket simulations;
the in-process cache makes the per-figure harnesses share one set of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.bench import BENCHMARKS
from repro.common.config import MachineConfig
from repro.common.errors import ReproError
from repro.common.stats import RunStats
from repro.energy.model import EnergyModel
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from repro.verify.ward_checker import WardChecker


class ResultMismatchError(ReproError):
    """A benchmark produced a result different from its reference."""


@dataclass
class BenchResult:
    benchmark: str
    protocol: str
    machine: str
    size: str
    stats: RunStats
    result: Any
    ward_checked: bool = False


_CACHE: Dict[Tuple, BenchResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_benchmark(
    name: str,
    protocol: str,
    config: MachineConfig,
    size: str = "default",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    check_ward: bool = False,
    check_result: bool = True,
    use_cache: bool = True,
    obs_sink=None,
) -> BenchResult:
    """Simulate one benchmark run; verify its result against the reference.

    ``obs_sink`` installs an observability sink (see :mod:`repro.obs`) on
    the machine's tracer for the duration of the run; traced runs bypass
    the result cache (a cached result has no event stream to replay).
    """
    key = (name, protocol, config.name, config.num_sockets,
           config.cores_per_socket, config.disaggregated, size, seed,
           policy.value, check_ward)
    if obs_sink is not None:
        use_cache = False
    if use_cache and key in _CACHE:
        return _CACHE[key]

    bench = BENCHMARKS[name]
    workload = bench.workload(size=size, seed=seed)
    machine = Machine(config, protocol)
    if obs_sink is not None:
        machine.tracer.install(obs_sink)
    monitor: Optional[WardChecker] = None
    if check_ward and machine.supports_ward:
        monitor = WardChecker(region_table=machine.protocol.region_table)
    rt = Runtime(machine, policy=policy, access_monitor=monitor, seed=seed)
    result, stats = rt.run(bench.root_task, workload)
    stats.benchmark = name
    EnergyModel(config).compute(stats)

    if check_result:
        expected = bench.reference(workload)
        if result != expected:
            raise ResultMismatchError(
                f"{name} on {protocol}: result does not match the reference "
                f"(got {str(result)[:80]}..., want {str(expected)[:80]}...)"
            )
    out = BenchResult(
        benchmark=name,
        protocol=machine.protocol.name,
        machine=config.name,
        size=size,
        stats=stats,
        result=result,
        ward_checked=monitor is not None,
    )
    if use_cache:
        _CACHE[key] = out
    return out


def run_pair(
    name: str,
    config: MachineConfig,
    size: str = "default",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
) -> Tuple[BenchResult, BenchResult]:
    """Run a benchmark under MESI and WARDen on the same machine/input."""
    mesi = run_benchmark(name, "mesi", config, size=size, seed=seed, policy=policy)
    warden = run_benchmark(name, "warden", config, size=size, seed=seed, policy=policy)
    return mesi, warden


#: seeds used by the figure harnesses (averaged to cancel steal-timing noise)
FIGURE_SEEDS = (42, 43, 44)


def run_pairs(
    name: str,
    config: MachineConfig,
    size: str = "default",
    seeds=FIGURE_SEEDS,
    policy: MarkingPolicy = MarkingPolicy.FULL,
):
    """Run MESI/WARDen pairs across several seeds (for figure harnesses)."""
    return [
        run_pair(name, config, size=size, seed=seed, policy=policy)
        for seed in seeds
    ]
