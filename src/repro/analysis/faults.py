"""Deterministic fault injection for the run/bench pipeline.

The robustness layer in :mod:`repro.analysis.pool` (timeouts, retries,
pool re-spawn, serial fallback, checkpoint/resume) is only trustworthy if
it can be *proven* to work — so this module provides seeded, deterministic
fault points threaded through the pool workers and :class:`DiskCache` in
the zero-overhead-when-off style of :mod:`repro.obs`: every injection site
pays exactly one module-attribute check (``if faults.ACTIVE:``) until a
plan is installed.

Fault sites
-----------

``worker.crash``
    ``os._exit(3)`` inside a pool worker — the parent sees a
    ``BrokenProcessPool`` and must re-spawn the pool.
``worker.hang``
    ``time.sleep(arg or 30)`` inside a pool worker — the parent's per-task
    timeout must fire and the hung worker be killed.
``worker.fail``
    raise :class:`~repro.common.errors.FaultInjected` from the worker —
    the parent's bounded retry must absorb it.
``cache.load.corrupt``
    truncate a :class:`DiskCache` entry's text mid-read — the corrupted
    entry must be evicted and the task re-simulated.
``cache.store.oserror``
    raise a transient ``OSError`` inside ``DiskCache.store`` — the store
    is best-effort and must not take the run down.

Addressing: matchers
--------------------

``worker.*`` sites are keyed by the task's **matrix index** and the
**attempt number**: ``worker.crash@2`` fires while executing matrix task 2
on attempt 0 only, ``worker.fail@0x3`` fires on attempts 0-2 of task 0.
Keying by task index (not per-process hit counts) keeps the injection
deterministic across pool re-spawns — the whole point of the exercise.

``cache.*`` sites are keyed by a per-process hit counter: ``site@N`` fires
on the N-th hit (1-based), ``site@NxM`` on hits N..N+M-1.

Syntax (``REPRO_FAULTS`` environment variable or :func:`parse_plan`)::

    REPRO_FAULTS="worker.crash@1,worker.hang@0:30,cache.store.oserror@1x2"

i.e. comma-separated ``site@WHERE[xTIMES][:ARG]`` clauses, where ``ARG``
is a float parameter (currently only ``worker.hang`` uses it, as the
sleep duration in seconds).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import FaultInjected, ReproError

#: environment variable holding a fault plan for this process and any
#: pool workers it spawns
ENV_VAR = "REPRO_FAULTS"

#: the sites this module knows how to fire
SITES = (
    "worker.crash",
    "worker.hang",
    "worker.fail",
    "cache.load.corrupt",
    "cache.store.oserror",
)

#: one-attribute-check fast path: False until a plan is installed
ACTIVE = False

#: True only inside a pool worker process (set by the pool initializer);
#: ``worker.*`` sites never fire outside one, so serial fallback is a safe
#: harbour when workers keep dying.
IN_WORKER = False

_PLAN: Optional["FaultPlan"] = None


class FaultSyntaxError(ReproError):
    """A ``REPRO_FAULTS`` clause could not be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault point.

    ``where`` is a task index for ``worker.*`` sites and a 1-based hit
    number for counter-keyed sites; ``times`` widens the match window
    (attempts 0..times-1, or hits where..where+times-1); ``arg`` is a
    free-form float parameter.
    """

    site: str
    where: int = 0
    times: int = 1
    arg: Optional[float] = None

    def describe(self) -> str:
        text = f"{self.site}@{self.where}"
        if self.times != 1:
            text += f"x{self.times}"
        if self.arg is not None:
            text += f":{self.arg:g}"
        return text


@dataclass(frozen=True)
class FaultHit:
    """A fault that actually fired (for manifests and assertions)."""

    site: str
    key: int
    attempt: int


class FaultPlan:
    """A set of armed :class:`FaultSpec` and the hits they produced."""

    def __init__(self, specs: List[FaultSpec]) -> None:
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site not in SITES:
                raise FaultSyntaxError(
                    f"unknown fault site {spec.site!r}; choose from {SITES}"
                )
            self.specs[spec.site] = spec
        self._counts: Dict[str, int] = {}
        self.fired: List[FaultHit] = []

    def describe(self) -> str:
        """The plan as a ``REPRO_FAULTS`` string (worker-propagation form)."""
        return ",".join(spec.describe() for spec in self.specs.values())

    def arg(self, site: str) -> Optional[float]:
        spec = self.specs.get(site)
        return spec.arg if spec is not None else None

    # ------------------------------------------------------------------
    def fire(self, site: str, key: Optional[int] = None, attempt: int = 0) -> bool:
        """Should ``site`` misbehave right now?

        ``key=None`` uses the per-process hit counter (``cache.*`` sites);
        a task index key matches ``worker.*`` sites deterministically.
        """
        spec = self.specs.get(site)
        if spec is None:
            return False
        if key is None:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            hit = spec.where <= count < spec.where + spec.times
            key = count
        else:
            hit = key == spec.where and attempt < spec.times
        if hit:
            self.fired.append(FaultHit(site, key, attempt))
        return hit


# ----------------------------------------------------------------------
# Plan lifecycle
# ----------------------------------------------------------------------


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` (or, with None, disarm); returns the previous plan."""
    global ACTIVE, _PLAN
    previous = _PLAN
    _PLAN = plan
    ACTIVE = plan is not None
    return previous


def uninstall() -> Optional[FaultPlan]:
    return install(None)


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def mark_worker() -> None:
    """Pool-worker initializer hook: enable the ``worker.*`` sites here."""
    global IN_WORKER
    IN_WORKER = True


def parse_plan(text: Optional[str]) -> Optional[FaultPlan]:
    """Parse a ``REPRO_FAULTS`` string; None/empty disables injection."""
    if not text or not text.strip():
        return None
    specs = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        arg: Optional[float] = None
        if ":" in clause:
            clause, arg_text = clause.rsplit(":", 1)
            try:
                arg = float(arg_text)
            except ValueError:
                raise FaultSyntaxError(
                    f"bad fault arg {arg_text!r} in {clause!r}"
                ) from None
        site, sep, where_text = clause.partition("@")
        where, times = 1, 1
        if sep:
            if "x" in where_text:
                where_text, times_text = where_text.split("x", 1)
            else:
                times_text = "1"
            try:
                where = int(where_text)
                times = int(times_text)
            except ValueError:
                raise FaultSyntaxError(
                    f"bad fault address {where_text!r} in {clause!r}"
                ) from None
        if times < 1:
            raise FaultSyntaxError(f"fault {clause!r} must fire >= 1 time")
        specs.append(FaultSpec(site=site.strip(), where=where, times=times, arg=arg))
    return FaultPlan(specs) if specs else None


def plan_from_env(environ=os.environ) -> Optional[FaultPlan]:
    return parse_plan(environ.get(ENV_VAR))


def resolve_plan(plan=None) -> Optional[FaultPlan]:
    """Precedence: explicit arg > installed plan > ``REPRO_FAULTS``."""
    if isinstance(plan, str):
        return parse_plan(plan)
    if plan is not None:
        return plan
    if _PLAN is not None:
        return _PLAN
    return plan_from_env()


# ----------------------------------------------------------------------
# Injection sites (call only behind ``if faults.ACTIVE:``)
# ----------------------------------------------------------------------


def fire(site: str, key: Optional[int] = None, attempt: int = 0) -> bool:
    return _PLAN is not None and _PLAN.fire(site, key, attempt)


def worker_faults(task_index: int, attempt: int) -> None:
    """The pool-worker fault point, keyed by (matrix index, attempt).

    Outside a pool worker (serial path, serial fallback) this is a no-op:
    crashing the parent process is never the failure mode under test.
    """
    if _PLAN is None or not IN_WORKER:
        return
    if _PLAN.fire("worker.hang", key=task_index, attempt=attempt):
        time.sleep(_PLAN.arg("worker.hang") or 30.0)
    if _PLAN.fire("worker.fail", key=task_index, attempt=attempt):
        raise FaultInjected("worker.fail", task_index)
    if _PLAN.fire("worker.crash", key=task_index, attempt=attempt):
        os._exit(3)


def cache_store_fault() -> None:
    """DiskCache.store fault point: a transient filesystem error."""
    if _PLAN is not None and _PLAN.fire("cache.store.oserror"):
        raise OSError("injected transient cache-store failure")


def cache_load_corruption(text: str) -> str:
    """DiskCache.load fault point: return a truncated (corrupt) payload."""
    if _PLAN is not None and _PLAN.fire("cache.load.corrupt"):
        return text[: max(len(text) // 2, 1)]
    return text
