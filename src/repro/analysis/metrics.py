"""The paper's derived metrics (Figs. 7-12)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.analysis.run import BenchResult
from repro.energy.model import percent_savings


@dataclass
class ComparisonMetrics:
    """Everything the paper plots for one benchmark, MESI vs WARDen."""

    benchmark: str
    #: normalized speedup (Figs. 7a/8a/12a): MESI cycles / WARDen cycles
    speedup: float
    #: interconnect energy savings % (Figs. 7b/8b "Interconnect"/"Network")
    interconnect_savings: float
    #: total processor energy savings % (Figs. 7b/8b "Total Processor")
    processor_savings: float
    #: (invalidations + downgrades) avoided per kilo-instruction (Fig. 9)
    inv_dg_reduced_per_kilo: float
    #: share of the reduction that is downgrades / invalidations (Fig. 10)
    downgrade_reduction_pct: float
    invalidation_reduction_pct: float
    #: IPC improvement % (Fig. 11)
    ipc_improvement_pct: float
    #: fraction of accesses WARDen served from the W state (§7.2 analysis)
    ward_coverage: float

    mesi_cycles: int = 0
    warden_cycles: int = 0


def compare(mesi: BenchResult, warden: BenchResult) -> ComparisonMetrics:
    if mesi.benchmark != warden.benchmark:
        raise ValueError("comparing different benchmarks")
    ms, ws = mesi.stats, warden.stats

    inv_reduced = ms.coherence.invalidations - ws.coherence.invalidations
    dg_reduced = ms.coherence.downgrades - ws.coherence.downgrades
    total_reduced = inv_reduced + dg_reduced
    kilo_instr = max(ms.instructions, 1) / 1000.0
    if total_reduced > 0:
        dg_pct = dg_reduced / total_reduced * 100.0
        inv_pct = inv_reduced / total_reduced * 100.0
    else:
        dg_pct = inv_pct = 0.0

    ipc_impr = (
        (ws.ipc - ms.ipc) / ms.ipc * 100.0 if ms.ipc > 0 else 0.0
    )

    return ComparisonMetrics(
        benchmark=mesi.benchmark,
        speedup=ms.cycles / ws.cycles if ws.cycles else 0.0,
        interconnect_savings=percent_savings(
            ms.energy.interconnect_nj, ws.energy.interconnect_nj
        ),
        processor_savings=percent_savings(
            ms.energy.processor_nj, ws.energy.processor_nj
        ),
        inv_dg_reduced_per_kilo=total_reduced / kilo_instr,
        downgrade_reduction_pct=dg_pct,
        invalidation_reduction_pct=inv_pct,
        ipc_improvement_pct=ipc_impr,
        ward_coverage=ws.coherence.ward_coverage,
        mesi_cycles=ms.cycles,
        warden_cycles=ws.cycles,
    )


def compare_multi(pairs: List[tuple]) -> ComparisonMetrics:
    """Aggregate MESI/WARDen comparisons over several runs (seeds).

    Quantities are summed across the runs before ratios are taken, so the
    result behaves like one long execution — this averages out work-stealing
    timing noise (the paper's runs are long enough to self-average; ours are
    deliberately small, per §7.1's input-size tuning, so we sum instead).
    """
    if not pairs:
        raise ValueError("need at least one run pair")
    name = pairs[0][0].benchmark

    def tot(results, fn):
        return sum(fn(r.stats) for r in results)

    mesis = [m for m, _ in pairs]
    wards = [w for _, w in pairs]
    m_cycles = tot(mesis, lambda s: s.cycles)
    w_cycles = tot(wards, lambda s: s.cycles)
    m_net = tot(mesis, lambda s: s.energy.interconnect_nj)
    w_net = tot(wards, lambda s: s.energy.interconnect_nj)
    m_proc = tot(mesis, lambda s: s.energy.processor_nj)
    w_proc = tot(wards, lambda s: s.energy.processor_nj)
    inv_red = tot(mesis, lambda s: s.coherence.invalidations) - tot(
        wards, lambda s: s.coherence.invalidations
    )
    dg_red = tot(mesis, lambda s: s.coherence.downgrades) - tot(
        wards, lambda s: s.coherence.downgrades
    )
    total_red = inv_red + dg_red
    m_instr = tot(mesis, lambda s: s.instructions)
    w_instr = tot(wards, lambda s: s.instructions)
    threads = pairs[0][0].stats.num_threads
    m_ipc = m_instr / (m_cycles * threads) if m_cycles else 0.0
    w_ipc = w_instr / (w_cycles * threads) if w_cycles else 0.0
    w_cov_n = tot(wards, lambda s: s.coherence.ward_accesses)
    w_cov_d = max(tot(wards, lambda s: s.coherence.total_accesses), 1)

    return ComparisonMetrics(
        benchmark=name,
        speedup=m_cycles / w_cycles if w_cycles else 0.0,
        interconnect_savings=percent_savings(m_net, w_net),
        processor_savings=percent_savings(m_proc, w_proc),
        inv_dg_reduced_per_kilo=total_red / (max(m_instr, 1) / 1000.0),
        downgrade_reduction_pct=(
            dg_red / total_red * 100.0 if total_red > 0 else 0.0
        ),
        invalidation_reduction_pct=(
            inv_red / total_red * 100.0 if total_red > 0 else 0.0
        ),
        ipc_improvement_pct=(w_ipc - m_ipc) / m_ipc * 100.0 if m_ipc else 0.0,
        ward_coverage=w_cov_n / w_cov_d,
        mesi_cycles=m_cycles,
        warden_cycles=w_cycles,
    )


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def summarize(metrics: List[ComparisonMetrics]) -> dict:
    """Aggregate row ("MEAN" bar of the paper's figures)."""
    return {
        "speedup": geomean(m.speedup for m in metrics),
        "interconnect_savings": mean(m.interconnect_savings for m in metrics),
        "processor_savings": mean(m.processor_savings for m in metrics),
        "ipc_improvement_pct": mean(m.ipc_improvement_pct for m in metrics),
    }
