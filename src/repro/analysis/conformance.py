"""Differential conformance: baseline vs candidate vs the value-level oracle.

Turns the paper's central safety claim — WARDen's relaxed ``W`` state can
never change program outcomes for WARD-compliant programs (§3–§5) — into a
machine-checked property over the benchmark suite, generalized to any
(baseline, candidate) pair of registered protocols (default MESI vs
WARDen).  For each benchmark the harness runs three legs:

1. **Differential** — the benchmark under the baseline and under the
   candidate protocol (cacheable through the PR 2 pool/cache machinery,
   so full sweeps are cheap and resumable) with final results compared
   and stats invariants asserted:

   * identical results (both also equal the Python reference, checked
     inside :func:`~repro.analysis.run.run_benchmark`);
   * identical compute-instruction counts modulo region instructions:
     ``cand.compute - base.compute == Δ(region_adds + region_removes)``
     (the only extra instructions a region-aware protocol executes are
     the two per-region bookkeeping instructions, §4.2 — load/store
     counts differ by scheduler steal/spin noise and are deliberately not
     compared);
   * any leg whose protocol has ``supports_ward = False`` reports zero
     WARD activity;
   * ``region_adds >= region_removes`` (regions still marked when the run
     ends — e.g. pages the root allocated after its last fork — are never
     removed) and WARD coverage within [0, 1];
   * when the candidate claims ``avoids_invalidations`` and the baseline
     does not, coherence events (invalidations + downgrades) under the
     candidate do not exceed the baseline beyond a small noise slack: at
     tiny sizes steal timing can shift a handful of events either way,
     while the paper-scale reductions dwarf the slack.

2. **Race detection** — one uncached run with the happens-before
   :class:`~repro.verify.race.RaceDetector` and the hardware-thread
   :class:`~repro.verify.ward_checker.WardChecker` attached; any true race
   or condition-1 violation fails the benchmark.

3. **Value-level oracle** — every region epoch's access log is replayed
   through :class:`~repro.verify.coherence_checker.WardMemoryModel` with
   unique write tokens against a sequentially-consistent reference: no
   in-region load may observe a value different from SC (condition 1 at
   value level, except at detector-identified benign-WAW addresses where
   apathy makes the value intentionally order-dependent), and the merged
   final image must be independent of the reconciliation order everywhere
   outside the benign-WAW set (condition 2).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.config import MachineConfig
from repro.common.errors import RaceError, WardViolationError
from repro.hlpl.policy import MarkingPolicy
from repro.verify.race import RaceDetector, RegionLog
from repro.verify.coherence_checker import WardMemoryModel
from repro.analysis.pool import RunTask
from repro.analysis.run import prefetch, run_benchmark
from repro.coherence.registry import protocol_class

SCHEMA = "warden-repro/verify/v1"

#: reconciliation orders tried per region epoch in the oracle leg
ORACLE_MERGE_ORDERS = 3


def _invdg_slack(baseline_events: int) -> int:
    """Tolerated coherence-event excess of the candidate over the baseline.

    Steal timing differs between the protocols (runs are different
    lengths), so a few events of noise either way is expected at test
    sizes; at paper sizes the WARDen/SI-SD reduction is orders of
    magnitude larger than this slack.
    """
    return max(16, baseline_events // 20)


# ----------------------------------------------------------------------
# Report containers
# ----------------------------------------------------------------------

@dataclass
class ConformanceResult:
    """Verdict for one benchmark."""

    benchmark: str
    size: str
    machine: str
    seed: int
    protocol: str  #: candidate protocol (detector/oracle leg runs under it)
    baseline: str = "mesi"  #: reference protocol of the differential leg
    passed: bool = True
    failures: List[str] = field(default_factory=list)
    races: int = 0
    benign_waws: int = 0
    oracle_regions: int = 0
    detector: Dict = field(default_factory=dict)
    stats: Dict[str, Dict] = field(default_factory=dict)

    def fail(self, message: str) -> None:
        self.passed = False
        self.failures.append(message)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "size": self.size,
            "machine": self.machine,
            "seed": self.seed,
            "protocol": self.protocol,
            "baseline": self.baseline,
            "passed": self.passed,
            "failures": list(self.failures),
            "races": self.races,
            "benign_waws": self.benign_waws,
            "oracle_regions": self.oracle_regions,
            "detector": dict(self.detector),
            "stats": {k: dict(v) for k, v in self.stats.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConformanceResult":
        return cls(
            benchmark=data["benchmark"],
            size=data["size"],
            machine=data["machine"],
            seed=data["seed"],
            protocol=data.get("protocol", "warden"),
            baseline=data.get("baseline", "mesi"),
            passed=data["passed"],
            failures=list(data.get("failures", [])),
            races=data.get("races", 0),
            benign_waws=data.get("benign_waws", 0),
            oracle_regions=data.get("oracle_regions", 0),
            detector=dict(data.get("detector", {})),
            stats={k: dict(v) for k, v in data.get("stats", {}).items()},
        )


@dataclass
class ConformanceReport:
    """All benchmark verdicts of one ``verify`` invocation."""

    size: str
    machine: str
    seed: int
    results: List[ConformanceResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "size": self.size,
            "machine": self.machine,
            "seed": self.seed,
            "passed": self.passed,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConformanceReport":
        return cls(
            size=data["size"],
            machine=data["machine"],
            seed=data["seed"],
            results=[ConformanceResult.from_dict(r) for r in data["results"]],
        )


# ----------------------------------------------------------------------
# Value-level oracle replay
# ----------------------------------------------------------------------

def replay_region_oracle(
    log: RegionLog, rng: random.Random, benign_addrs: frozenset
) -> List[str]:
    """Replay one region epoch through :class:`WardMemoryModel`.

    ``benign_addrs`` holds the addresses the detector classified as benign
    WAW in this run; their merged value legitimately depends on the
    reconciliation order (condition-2 apathy says the program tolerates
    every order — certified separately by the MESI/WARDen result
    equality), so they are exempt from the order-independence and
    load-equality checks.
    """
    failures: List[str] = []
    if log.truncated:
        return [
            f"region {log.region_id}: access log truncated at "
            f"{len(log.entries)} entries; oracle replay skipped"
        ]
    writers = sorted({tid for atype, tid, _ in log.entries if atype != "LOAD"})
    orders: List[List[int]] = [list(writers)]
    for _ in range(ORACLE_MERGE_ORDERS - 1):
        order = list(writers)
        rng.shuffle(order)
        orders.append(order)

    images = []
    for order in orders:
        model = WardMemoryModel()
        model.begin_region(log.start, log.end)
        sc: Dict[int, object] = {}
        token = 0
        for atype, tid, addr in log.entries:
            if atype == "LOAD":
                got = model.load(tid, addr)
                want = sc.get(addr, 0)
                if got != want and addr not in benign_addrs:
                    failures.append(
                        f"region {log.region_id}: task {tid} load at "
                        f"{addr:#x} observed {got!r} under WARD semantics "
                        f"but {want!r} under sequential consistency "
                        "(observable incoherence: cross-task RAW)"
                    )
                    return failures
            else:
                token += 1
                value = (tid, token)
                model.store(tid, addr, value)
                sc[addr] = value
        model.end_region(merge_order=order)
        images.append(dict(model.memory))

    base = images[0]
    for image in images[1:]:
        diverged = [
            addr
            for addr in base.keys() | image.keys()
            if addr not in benign_addrs and base.get(addr) != image.get(addr)
        ]
        if diverged:
            failures.append(
                f"region {log.region_id}: merged image depends on the "
                f"reconciliation order at non-benign address(es) "
                f"{', '.join(hex(a) for a in sorted(diverged)[:4])}"
            )
            break
    return failures


# ----------------------------------------------------------------------
# Per-benchmark verification
# ----------------------------------------------------------------------

def stats_digest(stats) -> str:
    """Stable content hash of a :class:`RunStats` snapshot.

    Keys the golden regression corpus (``tests/golden/``): the digest
    covers every counter in ``stats.to_dict()`` in canonical JSON form,
    so any behavioural drift in the simulator shows up as a digest
    mismatch even when headline cycles happen to agree.
    """
    payload = json.dumps(stats.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _stat_extract(result) -> dict:
    s = result.stats
    return {
        "cycles": s.cycles,
        "instructions": s.instructions,
        "compute_instrs": s.cores.compute_instrs,
        "invalidations": s.coherence.invalidations,
        "downgrades": s.coherence.downgrades,
        "ward_accesses": s.coherence.ward_accesses,
        "ward_region_adds": s.coherence.ward_region_adds,
        "ward_region_removes": s.coherence.ward_region_removes,
        "ward_coverage": s.coherence.ward_coverage,
    }


def verify_benchmark(
    name: str,
    config: MachineConfig,
    size: str = "test",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    protocol: str = "warden",
    baseline: str = "mesi",
    check_oracle: bool = True,
    obs_sink=None,
) -> ConformanceResult:
    """Run all three conformance legs for one benchmark.

    ``protocol`` is the candidate under test; ``baseline`` the reference
    it is diffed against (leg 1).  Both must be registered protocol keys.
    """
    base_cls = protocol_class(baseline)
    cand_cls = protocol_class(protocol)
    out = ConformanceResult(
        benchmark=name,
        size=size,
        machine=config.name,
        seed=seed,
        protocol=protocol,
        baseline=baseline,
    )

    # Leg 1: differential baseline vs candidate (cache-friendly).
    base = run_benchmark(
        name, baseline, config, size=size, seed=seed, policy=policy
    )
    cand = run_benchmark(
        name, protocol, config, size=size, seed=seed, policy=policy
    )
    out.stats = {baseline: _stat_extract(base), protocol: _stat_extract(cand)}
    bs, cs = base.stats, cand.stats

    if base.result != cand.result:
        out.fail(
            f"{base_cls.name} and {cand_cls.name} computed different results"
        )
    region_instrs = {
        key: s.coherence.ward_region_adds + s.coherence.ward_region_removes
        for key, s in ((baseline, bs), (protocol, cs))
    }
    compute_delta = cs.cores.compute_instrs - bs.cores.compute_instrs
    region_delta = region_instrs[protocol] - region_instrs[baseline]
    if protocol != baseline and compute_delta != region_delta:
        out.fail(
            "compute-instruction identity broken: the candidate executed "
            f"{compute_delta} extra compute instructions but issued "
            f"{region_delta} extra region add/remove instructions"
        )
    for key, cls, s in ((baseline, base_cls, bs), (protocol, cand_cls, cs)):
        adds = s.coherence.ward_region_adds
        removes = s.coherence.ward_region_removes
        if cls.supports_ward:
            if adds < removes:
                out.fail(
                    f"{key}: region removes ({removes}) exceed adds ({adds})"
                )
            if not 0.0 <= s.coherence.ward_coverage <= 1.0:
                out.fail(
                    f"{key}: WARD coverage {s.coherence.ward_coverage} "
                    "outside [0, 1]"
                )
        else:
            for field_name in (
                "ward_accesses", "ward_region_adds", "ward_region_removes"
            ):
                if getattr(s.coherence, field_name):
                    out.fail(f"{key} reported nonzero {field_name}")
    base_events = bs.coherence.invalidations + bs.coherence.downgrades
    cand_events = cs.coherence.invalidations + cs.coherence.downgrades
    if cand_cls.avoids_invalidations and not base_cls.avoids_invalidations:
        if cand_events > base_events + _invdg_slack(base_events):
            out.fail(
                f"{cand_cls.name} coherence events ({cand_events}) exceed "
                f"{base_cls.name} ({base_events}) beyond the noise slack"
            )

    # Legs 2+3: happens-before detection + value-level oracle (uncached).
    detector = RaceDetector(
        benchmark=name,
        raise_on_race=False,
        sink=obs_sink,
        record_regions=check_oracle,
    )
    try:
        run_benchmark(
            name,
            protocol,
            config,
            size=size,
            seed=seed,
            policy=policy,
            check_ward=cand_cls.supports_ward,
            race_detector=detector,
            obs_sink=obs_sink,
        )
    except (RaceError, WardViolationError) as exc:
        out.fail(str(exc))
    out.detector = detector.summary()
    out.races = len(detector.races)
    out.benign_waws = len(detector.benign_waws)
    for finding in detector.races[:8]:
        out.fail(finding.describe())
    if len(detector.races) > 8:
        out.fail(f"... and {len(detector.races) - 8} more races")

    if check_oracle:
        benign_addrs = frozenset(f.addr for f in detector.benign_waws)
        rng = random.Random(seed)
        for log in detector.region_logs:
            if not log.entries:
                continue
            out.oracle_regions += 1
            for message in replay_region_oracle(log, rng, benign_addrs):
                out.fail(f"oracle: {message}")
    return out


def run_verify(
    names: Sequence[str],
    config: MachineConfig,
    size: str = "test",
    seed: int = 42,
    policy: MarkingPolicy = MarkingPolicy.FULL,
    protocol: str = "warden",
    baseline: str = "mesi",
    jobs: int = 1,
    check_oracle: bool = True,
    obs_sink=None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    resume: bool = False,
    report=None,
) -> ConformanceReport:
    """Verify every benchmark in ``names``; returns a full report.

    With ``jobs > 1`` (or any robustness flag) the differential legs fan
    out over the PR 2 process pool first; the per-benchmark verification
    then reads them back from the cache.  The detector/oracle leg always
    runs in-process (it needs live hooks, which do not serialize).
    """
    robust = timeout is not None or retries > 0 or resume or report is not None
    if jobs > 1 or robust:
        prefetch(
            [
                RunTask(
                    benchmark=name,
                    protocol=proto,
                    config=config,
                    size=size,
                    seed=seed,
                    policy=policy,
                )
                for name in names
                for proto in sorted({baseline, protocol})
            ],
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            resume=resume,
            report=report,
        )
    out = ConformanceReport(size=size, machine=config.name, seed=seed)
    for name in names:
        out.results.append(
            verify_benchmark(
                name,
                config,
                size=size,
                seed=seed,
                policy=policy,
                protocol=protocol,
                baseline=baseline,
                check_oracle=check_oracle,
                obs_sink=obs_sink,
            )
        )
    return out
