"""Simulator throughput benchmark: wall-clock / steps-per-second baselines.

``warden-repro bench`` runs a fixed suite of uncached simulations, times
them, and emits a ``BENCH_*.json`` report.  The simulated work per run
(instructions, cycles) is deterministic, so ``steps_per_second`` —
simulated instructions retired per wall-clock second — is a clean
throughput metric for the simulator itself: regressions in the engine or
protocol hot paths show up directly, independent of which figures are
being regenerated.

A committed report doubles as a regression baseline:
:func:`compare_to_baseline` checks the aggregate throughput ratio against
a tolerance (CI uses 30%).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import hashlib

from repro.analysis.pool import (
    DEFAULT_CACHE_DIR,
    MatrixReport,
    RunTask,
    config_fingerprint,
    run_task_robust,
)
from repro.analysis.run import run_benchmark
from repro.common.config import MachineConfig, dual_socket

#: Schema 2 moves host facts (``host_cpus``, free-form ``note``) under
#: ``meta`` where the other host metadata lives; ``comparisons``, when a
#: report carries one, is purely benchmark-keyed.  Schema-1 reports mixed
#: both as sibling keys inside ``comparisons`` — the accessors below read
#: either layout, so committed baselines never need rewriting.
BENCH_SCHEMA = 2

#: legacy schema-1 keys that may sit inside ``comparisons`` next to the
#: real benchmark entries
_HOST_META_KEYS = ("host_cpus", "note")

#: (benchmark, size) rows; every row runs under both protocols.
#: The quick suite is sized for CI smoke runs (a few seconds); the full
#: suite exercises more benchmarks at the "small" inputs.
QUICK_SUITE: List[Tuple[str, str]] = [
    ("fib", "small"),
    ("primes", "small"),
    ("msort", "small"),
    ("tokens", "test"),
    ("grep", "test"),
]

FULL_SUITE: List[Tuple[str, str]] = QUICK_SUITE + [
    ("dedup", "small"),
    ("nqueens", "small"),
    ("quickhull", "small"),
    ("suffix-array", "small"),
    ("make_array", "small"),
]


class BenchJournal:
    """Append-only JSONL checkpoint of completed bench rows.

    The bench suite's analogue of :class:`~repro.analysis.pool.MatrixJournal`:
    each completed row (a timed run dict) is appended as one JSON line to
    ``journal-bench-<suite-fingerprint>.jsonl`` under ``.warden-cache``, so
    ``bench --resume`` re-times only the rows an interrupted run never
    finished.  Timings are wall-clock (not bit-reproducible), so resumed
    rows keep their original measurement.
    """

    def __init__(self, fingerprint: str, directory=DEFAULT_CACHE_DIR) -> None:
        self.path = Path(directory) / f"journal-bench-{fingerprint}.jsonl"

    @staticmethod
    def row_key(row: Dict) -> str:
        return f"{row['benchmark']}|{row['protocol']}|{row['size']}"

    def load(self) -> Dict[str, Dict]:
        out: Dict[str, Dict] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return out
        for line in lines:
            try:
                row = json.loads(line)
                out[self.row_key(row)] = row
            except Exception:
                continue
        return out

    def append(self, row: Dict) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        except OSError:
            pass

    def remove(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


def _suite_fingerprint(
    suite: List[Tuple[str, str]],
    config: MachineConfig,
    repeats: int,
    mode: str = "sim",
) -> str:
    payload = json.dumps(
        {
            "suite": suite,
            "config": config_fingerprint(config),
            "repeats": repeats,
            "mode": mode,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_bench_suite(
    quick: bool = False,
    config: Optional[MachineConfig] = None,
    repeats: int = 1,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    resume: bool = False,
    report: Optional[MatrixReport] = None,
    mode: str = "sim",
    extra_rows: Optional[List[Tuple[str, str]]] = None,
) -> Dict:
    """Time the bench suite; return the report dict (see BENCH_SCHEMA).

    Every run bypasses both caches — the point is to measure simulation,
    not cache lookups.  With ``repeats > 1`` each row is run that many
    times and the *fastest* wall-clock is kept (standard noise floor).

    ``mode="replay"`` times the vectorized replay kernel instead of the
    interpreted engine: each row's trace is recorded (or fetched from the
    trace store) *untimed*, then only :func:`~repro.replay.replay_trace`
    is measured.  Replay rows always run in-process — the robustness knobs
    (``timeout``/``retries``) apply to ``mode="sim"`` only, since a replay
    is a short deterministic array walk with nothing to preempt.

    ``timeout``/``retries`` run each sim row through the robust single-task
    path (:func:`~repro.analysis.pool.run_task_robust`; with a timeout each
    attempt gets a fresh single-worker process, and the row's wall-clock is
    measured inside that process so pool spawn overhead never pollutes the
    throughput numbers).  ``resume`` checkpoints completed rows to a
    :class:`BenchJournal` and skips them on re-run.
    """
    config = config if config is not None else dual_socket()
    suite = QUICK_SUITE if quick else FULL_SUITE
    if extra_rows:
        # Caller-appended workload rows (bench --workload): same timing
        # loop, same two protocols, and part of the suite fingerprint so
        # --resume never mixes journals across different row sets.
        suite = suite + list(extra_rows)
    robust = mode == "sim" and (timeout is not None or retries > 0)
    journal: Optional[BenchJournal] = None
    done: Dict[str, Dict] = {}
    if resume:
        journal = BenchJournal(_suite_fingerprint(suite, config, repeats, mode))
        done = journal.load()
        if done and report is not None:
            report.resumed += len(done)
            report.record(
                "resume", -1, 0, detail=f"{len(done)} bench rows from journal"
            )
    runs = []
    row_index = 0
    for name, size in suite:
        for protocol in ("mesi", "warden"):
            row_index += 1
            key = f"{name}|{protocol}|{size}"
            if key in done:
                runs.append(done[key])
                continue
            best_wall = None
            result = None
            if mode == "replay":
                from repro.analysis.pool import task_fingerprint
                from repro.replay import (
                    TraceStore,
                    record_benchmark,
                    replay_trace,
                )

                store = TraceStore()
                fp = task_fingerprint(RunTask(
                    benchmark=name,
                    protocol=protocol,
                    config=config,
                    size=size,
                ))
                trace = store.load(fp)
                if trace is None:
                    trace, _ = record_benchmark(
                        name, protocol, config, size=size, fingerprint=fp
                    )
                    store.store(fp, trace)
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    result = replay_trace(trace)
                    wall = time.perf_counter() - t0
                    if best_wall is None or wall < best_wall:
                        best_wall = wall
                stats = result.stats
                row = {
                    "benchmark": name,
                    "protocol": result.protocol,
                    "size": size,
                    "wall_s": best_wall,
                    "instructions": stats.instructions,
                    "cycles": stats.cycles,
                    "steps_per_second": stats.instructions / best_wall
                    if best_wall
                    else 0.0,
                }
                runs.append(row)
                if journal is not None:
                    journal.append(row)
                continue
            for _ in range(max(1, repeats)):
                if robust:
                    task = RunTask(
                        benchmark=name,
                        protocol=protocol,
                        config=config,
                        size=size,
                        use_cache=False,
                    )
                    result, wall = run_task_robust(
                        task,
                        timeout=timeout,
                        retries=retries,
                        report=report,
                        index=row_index - 1,
                    )
                else:
                    t0 = time.perf_counter()
                    result = run_benchmark(
                        name,
                        protocol,
                        config,
                        size=size,
                        use_cache=False,
                        use_disk_cache=False,
                    )
                    wall = time.perf_counter() - t0
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            stats = result.stats
            row = {
                "benchmark": name,
                "protocol": result.protocol,
                "size": size,
                "wall_s": best_wall,
                "instructions": stats.instructions,
                "cycles": stats.cycles,
                "steps_per_second": stats.instructions / best_wall
                if best_wall
                else 0.0,
            }
            runs.append(row)
            if journal is not None:
                journal.append(row)
    if journal is not None:
        journal.remove()
    total_wall = sum(r["wall_s"] for r in runs)
    total_instrs = sum(r["instructions"] for r in runs)
    out = {
        "schema": BENCH_SCHEMA,
        "suite": "quick" if quick else "full",
        "mode": mode,
        "machine": config.name,
        "runs": runs,
        "totals": {
            "wall_s": total_wall,
            "instructions": total_instrs,
            "steps_per_second": total_instrs / total_wall if total_wall else 0.0,
        },
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "host_cpus": os.cpu_count(),
        },
    }
    if report is not None and not report.clean:
        out["robustness"] = report.to_dict()
    return out


def host_meta(report: Dict) -> Dict:
    """Host facts of a report, regardless of schema version.

    Schema >= 2 keeps them in ``meta``; schema 1 stashed ``host_cpus`` /
    ``note`` as sibling keys inside ``comparisons``.
    """
    meta = dict(report.get("meta", {}))
    legacy = report.get("comparisons", {})
    for key in _HOST_META_KEYS:
        if key not in meta and key in legacy:
            meta[key] = legacy[key]
    return meta


def comparison_entries(report: Dict) -> Dict[str, Dict]:
    """The benchmark-keyed entries of ``comparisons``, regardless of schema.

    Filters out the legacy schema-1 host keys (anything non-dict), so
    callers can iterate comparison blocks without layout checks.
    """
    return {
        key: value
        for key, value in report.get("comparisons", {}).items()
        if isinstance(value, dict)
    }


def render_report(report: Dict) -> str:
    """Human-readable table for one bench report (any schema version)."""
    meta = host_meta(report)
    host = f" ({meta['host_cpus']} host cpus)" if meta.get("host_cpus") else ""
    mode = report.get("mode", "sim")
    mode_tag = f" [{mode}]" if mode != "sim" else ""
    lines = [
        f"bench suite: {report['suite']}{mode_tag} on {report['machine']} "
        f"({meta.get('python', '?')}){host}",
        f"{'benchmark':<14} {'protocol':<8} {'size':<8} "
        f"{'wall (s)':>9} {'instrs':>10} {'steps/s':>12}",
    ]
    for r in report["runs"]:
        lines.append(
            f"{r['benchmark']:<14} {r['protocol']:<8} {r['size']:<8} "
            f"{r['wall_s']:>9.3f} {r['instructions']:>10} "
            f"{r['steps_per_second']:>12.0f}"
        )
    totals = report["totals"]
    lines.append(
        f"{'TOTAL':<14} {'':<8} {'':<8} {totals['wall_s']:>9.3f} "
        f"{totals['instructions']:>10} {totals['steps_per_second']:>12.0f}"
    )
    return "\n".join(lines)


def write_report(path, report: Dict) -> None:
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_report(path) -> Dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def find_default_baseline(
    directory=".", mode: str = "sim", exclude=None
) -> Tuple[Optional[Path], Optional[Dict]]:
    """Newest committed ``BENCH_*.json`` whose mode matches, or (None, None).

    ``warden-repro bench`` auto-selects its baseline with this when the
    user passes none: reports in ``directory`` are filtered to the given
    ``mode`` (reports without a ``mode`` field are schema-1/2 sim reports)
    and the newest by ``meta.timestamp`` (file mtime as fallback) wins.
    ``exclude`` skips a path — typically the report being written, so a
    run never compares against itself.
    """
    directory = Path(directory)
    exclude = Path(exclude).resolve() if exclude is not None else None
    best: Tuple = (None, None)
    best_stamp = ""
    for path in sorted(directory.glob("BENCH_*.json")):
        if exclude is not None and path.resolve() == exclude:
            continue
        try:
            report = load_report(path)
        except (OSError, ValueError):
            continue
        if report.get("mode", "sim") != mode:
            continue
        stamp = str(host_meta(report).get("timestamp", ""))
        if not stamp:
            try:
                stamp = time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime(path.stat().st_mtime)
                )
            except OSError:
                continue
        if stamp >= best_stamp:
            best = (path, report)
            best_stamp = stamp
    return best


def compare_to_baseline(
    report: Dict, baseline: Dict, max_regression: float = 0.30
) -> Tuple[bool, str]:
    """Check aggregate steps/second against a baseline report.

    Returns ``(ok, message)`` — ``ok`` is False when throughput dropped by
    more than ``max_regression`` (e.g. 0.30 = 30%) versus the baseline.
    """
    current = report["totals"]["steps_per_second"]
    reference = baseline["totals"]["steps_per_second"]
    scope = "totals"
    # Suite-matched comparison: when the baseline covers more rows than the
    # report (quick run vs a committed full-suite baseline), restrict the
    # reference to the rows the report actually ran — otherwise the quick
    # suite's different benchmark mix skews the ratio.
    rows = {
        (r["benchmark"], r["protocol"], r["size"]) for r in report["runs"]
    }
    matched = [
        r
        for r in baseline.get("runs", [])
        if (r["benchmark"], r["protocol"], r["size"]) in rows
    ]
    if matched and len(matched) != len(baseline.get("runs", [])):
        wall = sum(r["wall_s"] for r in matched)
        if wall > 0:
            reference = sum(r["instructions"] for r in matched) / wall
            scope = f"{len(matched)} matching baseline rows"
    if reference <= 0:
        return True, "baseline has no throughput data; skipping comparison"
    ratio = current / reference
    message = (
        f"throughput {current:,.0f} steps/s vs baseline {reference:,.0f} "
        f"steps/s [{scope}] ({ratio:.2f}x, tolerance -{max_regression:.0%})"
    )
    if ratio < 1.0 - max_regression:
        return False, "REGRESSION: " + message
    return True, "ok: " + message
