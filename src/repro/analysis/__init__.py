"""Experiment drivers: run benchmarks, compute the paper's metrics, render
tables for every figure."""

from repro.analysis.metrics import ComparisonMetrics, compare
from repro.analysis.run import BenchResult, run_benchmark, run_pair

__all__ = [
    "BenchResult",
    "ComparisonMetrics",
    "compare",
    "run_benchmark",
    "run_pair",
]
