"""Experiment drivers: run benchmarks, compute the paper's metrics, render
tables for every figure.  The run matrix (:func:`run_matrix`) is
fault-tolerant — see :mod:`repro.analysis.pool` for timeouts, retries,
pool re-spawn, serial fallback and checkpoint/resume, and
:mod:`repro.analysis.faults` for the deterministic fault injection that
tests it."""

from repro.analysis.metrics import ComparisonMetrics, compare
from repro.analysis.pool import (
    DiskCache,
    MatrixJournal,
    MatrixReport,
    RunTask,
    run_matrix,
)
from repro.analysis.run import BenchResult, run_benchmark, run_pair, run_pairs

__all__ = [
    "BenchResult",
    "ComparisonMetrics",
    "DiskCache",
    "MatrixJournal",
    "MatrixReport",
    "RunTask",
    "compare",
    "run_benchmark",
    "run_matrix",
    "run_pair",
    "run_pairs",
]
