"""WARD-marking policies for the runtime (ablation knob).

The paper's mechanism (§4.2) marks freshly-allocated leaf-heap pages and
unmarks them at forks.  Our default additionally lets the standard-library
data-parallel constructs (``tabulate``/``map``/``scatter``) keep their output
arrays marked for the construct's duration — the construct's semantics
guarantee the WARD property by construction (see DESIGN.md).  ``NONE``
disables marking entirely (useful to isolate protocol overheads).
"""

from __future__ import annotations

import enum


class MarkingPolicy(enum.Enum):
    #: never mark anything (WARDen degenerates to MESI behaviour)
    NONE = "none"
    #: §4.2 exactly: mark leaf-heap pages at allocation, unmark at forks
    LEAF_PAGES = "leaf-pages"
    #: LEAF_PAGES plus construct-scoped regions on library primitives
    FULL = "full"

    @property
    def marks_pages(self) -> bool:
        return self is not MarkingPolicy.NONE

    @property
    def marks_constructs(self) -> bool:
        return self is MarkingPolicy.FULL
