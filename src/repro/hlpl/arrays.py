"""Simulated arrays: the bridge between benchmark code and the machine.

A :class:`SimArray` owns a span of simulated addresses inside a heap and a
Python backing list for functional values.  Its accessors are generators:
they yield one timing operation (charged by the engine on the issuing
hardware thread) and perform the value effect in Python, so benchmarks stay
data-dependent while the cache model sees a faithful address stream.
"""

from __future__ import annotations

from typing import Any, List

from repro.sim.ops import LoadOp, RmwOp, StoreOp


class SimArray:
    """A fixed-length array of ``elem_size``-byte elements in a heap.

    Each accessor reuses a single per-array op instance instead of
    allocating one per call: the engine consumes a yielded op synchronously
    (its fields are read before any other strand — or a later access on
    this array — can run), so mutating the shared instance in place is
    safe and removes the dominant allocation on the simulator hot path.
    """

    __slots__ = (
        "base", "length", "elem_size", "heap", "data", "name",
        "_load_op", "_store_op", "_rmw_op",
    )

    def __init__(
        self,
        base: int,
        length: int,
        elem_size: int = 8,
        heap=None,
        fill: Any = None,
        name: str = "",
    ) -> None:
        if length < 0:
            raise ValueError("array length must be >= 0")
        if elem_size not in (1, 2, 4, 8):
            raise ValueError("elem_size must be a power of two <= 8")
        self.base = base
        self.length = length
        self.elem_size = elem_size
        self.heap = heap
        self.data: List[Any] = [fill] * length
        self.name = name
        self._load_op = LoadOp(base, elem_size, heap=heap)
        self._store_op = StoreOp(base, elem_size, heap=heap)
        self._rmw_op = RmwOp(base, elem_size, heap=heap)

    # ------------------------------------------------------------------
    def addr(self, index: int) -> int:
        return self.base + index * self.elem_size

    @property
    def end(self) -> int:
        return self.base + self.length * self.elem_size

    def _check(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of range for {self.name or 'array'}"
                f"[{self.length}]"
            )

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    # Simulated accessors (generators; use via ``yield from``)
    # ------------------------------------------------------------------
    def get(self, index: int, spin: bool = False):
        """Load element ``index``."""
        self._check(index)
        op = self._load_op
        op.addr = self.base + index * self.elem_size
        op.spin = spin
        yield op
        return self.data[index]

    def set(self, index: int, value: Any):
        """Store ``value`` into element ``index``."""
        self._check(index)
        op = self._store_op
        op.addr = self.base + index * self.elem_size
        yield op
        self.data[index] = value

    def cas(self, index: int, expected: Any, new: Any):
        """Atomic compare-and-swap; returns True on success."""
        self._check(index)
        op = self._rmw_op
        op.addr = self.base + index * self.elem_size
        yield op
        if self.data[index] == expected:
            self.data[index] = new
            return True
        return False

    def fetch_add(self, index: int, delta: Any):
        """Atomic fetch-and-add; returns the previous value."""
        self._check(index)
        op = self._rmw_op
        op.addr = self.base + index * self.elem_size
        yield op
        old = self.data[index]
        self.data[index] = old + delta
        return old

    # ------------------------------------------------------------------
    # Python-only access (tests, reference checks; no simulated traffic)
    # ------------------------------------------------------------------
    def peek(self, index: int) -> Any:
        self._check(index)
        return self.data[index]

    def poke(self, index: int, value: Any) -> None:
        self._check(index)
        self.data[index] = value

    def to_list(self) -> List[Any]:
        return list(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "SimArray"
        return f"{label}(base={self.base:#x}, len={self.length})"
