"""The heap hierarchy (paper §2.1/§4.2, Fig. 2).

Each task owns a heap: a list of pages filled by bump allocation.  When a
task completes, its heap is merged into its parent's (union-find keeps array
ownership resolution O(α)).  Pages allocated by leaf tasks are marked as WARD
regions (when the machine supports it and the policy allows); the runtime
unmarks them at forks and at joins.
"""

from __future__ import annotations

from typing import List, Optional

PAGE_SIZE = 4096

#: instruction cost charged for a bump allocation / for mapping a new page
ALLOC_INSTRS = 3
PAGE_ALLOC_INSTRS = 24


class Page:
    """A contiguous span of simulated memory belonging to one heap.

    Large-object allocations create pages bigger than :data:`PAGE_SIZE`
    (mirroring MPL's large-object handling) so arrays stay contiguous.
    """

    __slots__ = ("base", "size", "region", "det_region")

    def __init__(self, base: int, size: int = PAGE_SIZE) -> None:
        self.base = base
        self.size = size
        #: the active WardRegion handle covering this page, or None
        self.region = None
        #: the race detector's logical region over this page, or None
        #: (tracked independently of ``region`` so detection semantics do
        #: not depend on the protocol or the hardware CAM's capacity)
        self.det_region = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page({self.base:#x}+{self.size}, ward={self.region is not None})"


class Heap:
    """One heap of the hierarchy, owned by a task until merged upward."""

    __slots__ = ("owner_task", "pages", "_bump_page", "_bump_off", "merged_into")

    def __init__(self, owner_task) -> None:
        self.owner_task = owner_task
        self.pages: List[Page] = []
        self._bump_page: Optional[Page] = None
        self._bump_off = 0
        self.merged_into: Optional["Heap"] = None

    # ------------------------------------------------------------------
    def find(self) -> "Heap":
        """Union-find root: the heap this one has been merged into (if any)."""
        heap = self
        while heap.merged_into is not None:
            heap = heap.merged_into
        # path compression
        node = self
        while node.merged_into is not None and node.merged_into is not heap:
            nxt = node.merged_into
            node.merged_into = heap
            node = nxt
        return heap

    @property
    def live_owner(self):
        return self.find().owner_task

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, sbrk, align: int = 8):
        """Bump-allocate ``nbytes``; returns ``(addr, new_page, instr_cost)``.

        ``sbrk`` is the machine's raw allocator.  ``new_page`` is the freshly
        mapped :class:`Page` when one was needed (the runtime marks it WARD),
        else None.  Objects larger than a page get a dedicated large page.
        """
        if self.merged_into is not None:
            raise RuntimeError("allocating into a merged heap")
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        if nbytes > PAGE_SIZE:
            size = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
            page = Page(sbrk(size, PAGE_SIZE), size)
            self.pages.append(page)
            return page.base, page, ALLOC_INSTRS + PAGE_ALLOC_INSTRS

        off = (self._bump_off + align - 1) // align * align
        if self._bump_page is not None and off + nbytes <= self._bump_page.size:
            addr = self._bump_page.base + off
            self._bump_off = off + nbytes
            return addr, None, ALLOC_INSTRS

        page = Page(sbrk(PAGE_SIZE, PAGE_SIZE), PAGE_SIZE)
        self.pages.append(page)
        self._bump_page = page
        self._bump_off = nbytes
        return page.base, page, ALLOC_INSTRS + PAGE_ALLOC_INSTRS

    # ------------------------------------------------------------------
    def merge_into(self, parent: "Heap") -> None:
        """Join-time merge (Fig. 2): give all pages to the parent heap."""
        parent = parent.find()
        if parent is self:
            raise RuntimeError("cannot merge a heap into itself")
        parent.pages.extend(self.pages)
        self.pages = []
        self._bump_page = None  # remaining slack is abandoned, like MPL
        self._bump_off = 0
        self.merged_into = parent

    def marked_pages(self) -> List[Page]:
        return [p for p in self.pages if p.region is not None]
