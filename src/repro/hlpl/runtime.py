"""The HLPL runtime: MPL's role in the paper (§4.2).

Responsibilities, all invisible to benchmark code:

* maintain the spawn tree and heap hierarchy (fresh heap per child at forks,
  merge into the parent at joins — Fig. 2);
* mark freshly-allocated leaf-heap pages as WARD regions and unmark them at
  forks and joins (§4.2; our join-unmark keeps parent reads of merged child
  data coherent, see DESIGN.md);
* write fork closures into WARD-marked memory just before forking so the
  fork-time unmark flushes them to the shared cache — the child's first
  reads then avoid downgrading the parent's private cache (§5.3);
* enforce disentanglement dynamically (Definition 1) when checking is on.

The total WARD logic here is ~a hundred lines, mirroring the paper's claim
that the MPL changes were <100 lines of code (§4.3).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.common.errors import DisentanglementError, SimulationError
from repro.common.stats import RunStats
from repro.common.types import AccessType
from repro.hlpl.api import TaskContext
from repro.hlpl.heap import Heap
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.scheduler import WorkStealingScheduler
from repro.hlpl.task import JoinRecord, TaskNode
from repro.sim.engine import Engine, Strand
from repro.sim.machine import Machine
from repro.sim.ops import ForkOp, LoadOp, StoreOp

#: words of closure data written by the parent / read by each child at a fork
CLOSURE_WORDS = 8
#: bookkeeping instructions charged per spawned child
FORK_INSTRS_PER_CHILD = 18


class _ConstructRegion:
    """Paired (hardware, detector) region handles for one construct scope.

    Opaque to callers: :meth:`Runtime.construct_begin` returns it only when
    a race detector is installed, and :meth:`Runtime.construct_end` unpacks
    it.  Without a detector the bare hardware handle flows through instead,
    keeping the common path allocation-free.
    """

    __slots__ = ("hw", "det")

    def __init__(self, hw, det) -> None:
        self.hw = hw
        self.det = det


class Runtime:
    """Executes a fork-join program on a simulated machine."""

    def __init__(
        self,
        machine: Machine,
        policy: MarkingPolicy = MarkingPolicy.FULL,
        check_disentanglement: bool = True,
        access_monitor=None,
        race_detector=None,
        max_steps: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.policy = policy
        self.check_disentanglement = check_disentanglement
        self.access_monitor = access_monitor
        #: optional repro.verify.race.RaceDetector.  Its *logical* region
        #: table always mirrors the FULL marking policy regardless of
        #: ``policy`` or the protocol: the detector verifies the program's
        #: WARD-eligibility (paper §3), which the hardware marking may only
        #: conservatively under-approximate.
        self.race_detector = race_detector
        self.engine = Engine(machine)
        self.engine.fork_handler = self._on_fork
        if max_steps is not None:
            self.engine.max_steps = max_steps
        self.scheduler = WorkStealingScheduler(self, seed=seed)
        self.engine.scheduler = self.scheduler
        if (
            check_disentanglement
            or access_monitor is not None
            or race_detector is not None
        ):
            self.engine.access_hook = self._access_hook
        self._counter_pool: dict = {}
        self._root_value: Any = None
        self._root_clock = 0
        self._marking_on = policy.marks_pages and machine.supports_ward

    # ------------------------------------------------------------------
    @property
    def current_thread(self) -> int:
        worker = self.engine.current_worker
        return worker.thread if worker is not None else 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, root_fn: Callable, *args, **kwargs) -> Tuple[Any, RunStats]:
        """Execute ``root_fn(ctx, *args, **kwargs)``; return (result, stats)."""
        root = TaskNode(None)
        root.heap = Heap(root)
        if self.race_detector is not None:
            self.race_detector.on_root(root)
        ctx = TaskContext(self, root)
        strand = Strand(
            root_fn(ctx, *args, **kwargs),
            task=root,
            on_done=self._on_root_done,
        )
        self.scheduler.push(0, strand)
        self.engine.run()
        stats = self.machine.finalize(self._root_clock)
        return self._root_value, stats

    def _on_root_done(self, value, worker) -> None:
        self._root_value = value
        self._root_clock = self.machine.cores[worker.thread].clock
        self.scheduler.finished = True

    # ------------------------------------------------------------------
    # Allocation + WARD marking (§4.2)
    # ------------------------------------------------------------------
    def heap_alloc(self, task: TaskNode, nbytes: int, align: int = 8):
        """Bump-allocate in the task's heap; mark fresh pages as WARD.

        Returns ``(addr, instr_cost)`` — the caller charges the cost.
        """
        addr, new_page, cost = task.heap.alloc(nbytes, self.machine.sbrk, align)
        if new_page is not None:
            self.machine.place(new_page.base, new_page.size, self.current_thread)
            if self._marking_on:
                new_page.region = self.machine.add_ward_region(
                    self.current_thread, new_page.base, new_page.end
                )
            if self.race_detector is not None:
                new_page.det_region = self.race_detector.region_begin(
                    new_page.base, new_page.end
                )
        return addr, cost

    def construct_begin(self, arr):
        """Open a construct-scoped WARD region over an array's full blocks.

        The hardware region is block-rounded inward (only whole blocks can
        be relaxed); the race detector's logical region spans the whole
        array — the construct's program-level WARD claim — so the rounded-
        out edge elements are classified consistently with the interior.
        """
        hw_region = None
        if self.policy.marks_constructs and self.machine.supports_ward:
            bs = self.machine.config.block_size
            start = (arr.base + bs - 1) // bs * bs
            end = arr.end // bs * bs
            if end > start:
                hw_region = self.machine.add_ward_region(
                    self.current_thread, start, end
                )
        if self.race_detector is None or arr.end <= arr.base:
            return hw_region
        det_region = self.race_detector.region_begin(arr.base, arr.end)
        return _ConstructRegion(hw_region, det_region)

    def construct_end(self, region) -> None:
        if region is None:
            return
        if type(region) is _ConstructRegion:
            if region.hw is not None:
                self.machine.remove_ward_region(self.current_thread, region.hw)
            self.race_detector.region_end(region.det)
            return
        self.machine.remove_ward_region(self.current_thread, region)

    def _unmark_heap_pages(self, task: TaskNode, thread: int) -> None:
        detector = self.race_detector
        if not self._marking_on and detector is None:
            return
        for page in task.heap.pages:
            if page.region is not None:
                self.machine.remove_ward_region(thread, page.region)
                page.region = None
            if detector is not None and page.det_region is not None:
                detector.region_end(page.det_region)
                page.det_region = None

    # ------------------------------------------------------------------
    # Fork handling (engine callback)
    # ------------------------------------------------------------------
    def _on_fork(self, worker, op: ForkOp) -> None:
        parent_ctx = op.ctx
        parent_task = parent_ctx.task
        parent_strand = worker.strand
        thread = worker.thread
        machine = self.machine
        nchildren = len(op.thunks)

        # 1. Write each child's closure into freshly WARD-marked memory.
        closure_bytes = CLOSURE_WORDS * 8
        closures = []
        for _ in range(nchildren):
            addr, cost = self.heap_alloc(parent_task, closure_bytes, align=64)
            machine.compute(thread, cost)
            region = None
            if self._marking_on:
                region = machine.add_ward_region(thread, addr, addr + closure_bytes)
            for word in range(CLOSURE_WORDS):
                machine.access(thread, addr + 8 * word, 8, AccessType.STORE)
            closures.append((addr, region))

        # 2. Unmark the forking task's WARD pages (§4.2) and the closure
        #    regions — reconciliation flushes the handoff data to the LLC
        #    so children read it without downgrading this core (§5.3).
        self._unmark_heap_pages(parent_task, thread)
        for _, region in closures:
            if region is not None:
                machine.remove_ward_region(thread, region)

        # 3. Create children with fresh heaps; suspend the parent.
        machine.compute(thread, FORK_INSTRS_PER_CHILD * nchildren)
        record = JoinRecord(
            parent_strand, nchildren, self._alloc_record(nchildren)
        )
        parent_task.join = record
        worker.strand = None
        strands = []
        for index, thunk in enumerate(op.thunks):
            child = TaskNode(parent_task)
            child.heap = Heap(child)
            record.children.append(child)
            child_ctx = TaskContext(self, child)
            gen = self._child_body(child_ctx, closures[index][0], thunk, record, index)
            strand = Strand(
                gen,
                task=child,
                on_done=self._make_child_done(record, index, child),
            )
            strands.append(strand)
        if self.race_detector is not None:
            # Fork edge in the happens-before graph: children inherit the
            # parent's vector clock; the parent's own component advances.
            self.race_detector.on_fork(parent_task, record.children)

        # Run the first child immediately; expose the rest for stealing.
        for strand in strands[1:]:
            self.scheduler.push(thread, strand)
        self.scheduler._assign(worker, strands[0])
        strands[0].ready_clock = machine.cores[thread].clock

    def _child_body(
        self,
        ctx: TaskContext,
        closure_addr: int,
        thunk: Callable,
        record: JoinRecord,
        index: int,
    ):
        parent_heap = ctx.task.parent.heap
        for word in range(CLOSURE_WORDS):
            yield LoadOp(closure_addr + 8 * word, 8, heap=parent_heap)
        result = yield from thunk(ctx)
        # Deposit the result in the join record (runtime arena, like MPL's
        # task frames — the closure stays read-only after the fork).
        yield StoreOp(record.counter_addr + 8 * (index + 1), 8)
        return result

    def _make_child_done(self, record: JoinRecord, index: int, child: TaskNode):
        def on_done(value, worker) -> None:
            self._on_child_done(record, index, child, value, worker)

        return on_done

    def _on_child_done(
        self,
        record: JoinRecord,
        index: int,
        child: TaskNode,
        value,
        worker,
    ) -> None:
        thread = worker.thread
        machine = self.machine
        # Unmark the child's WARD pages before its heap merges upward: the
        # resuming parent may read this data from another hardware thread.
        self._unmark_heap_pages(child, thread)
        record.results[index] = value
        child.completed = True
        machine.access(thread, record.counter_addr, 8, AccessType.RMW)
        record.remaining -= 1
        if record.remaining > 0:
            return
        # Last child: merge heaps (Fig. 2) and resume the parent here.
        parent_task = child.parent
        if self.race_detector is not None:
            # Join edge: every child clock merges into the parent before it
            # resumes, ordering parent reads after all child effects.
            self.race_detector.on_join(parent_task, record.children)
        for sibling in record.children:
            sibling.heap.merge_into(parent_task.heap)
        parent_task.join = None
        parent_strand = record.parent_strand
        parent_strand.resume_value = list(record.results)
        parent_strand.ready_clock = machine.cores[thread].clock
        self._free_record(record.counter_addr, len(record.children))
        if worker.strand is not None:
            raise SimulationError("worker busy while resuming a parent")
        worker.strand = parent_strand

    # ------------------------------------------------------------------
    # Join-record pool (runtime arena, never WARD): word 0 is the join
    # counter, words 1..k hold the children's results.
    # ------------------------------------------------------------------
    def _alloc_record(self, nchildren: int) -> int:
        bs = self.machine.config.block_size
        nbytes = (8 * (nchildren + 1) + bs - 1) // bs * bs
        pool = self._counter_pool.setdefault(nbytes, [])
        if pool:
            return pool.pop()
        addr = self.machine.sbrk(nbytes, bs)
        self.machine.place(addr, nbytes, self.current_thread)
        return addr

    def _free_record(self, addr: int, nchildren: int) -> None:
        bs = self.machine.config.block_size
        nbytes = (8 * (nchildren + 1) + bs - 1) // bs * bs
        self._counter_pool[nbytes].append(addr)

    # ------------------------------------------------------------------
    # Dynamic checking (engine access hook)
    # ------------------------------------------------------------------
    def _access_hook(self, worker, op, atype: AccessType) -> None:
        task = worker.strand.task if worker.strand is not None else None
        if (
            self.check_disentanglement
            and task is not None
            and op.heap is not None
        ):
            owner = op.heap.live_owner
            if owner is not None and not owner.is_ancestor_or_self(task):
                raise DisentanglementError(
                    f"task {task.task_id} accessed address {op.addr:#x} owned "
                    f"by non-ancestor task {owner.task_id}"
                )
        if self.access_monitor is not None:
            self.access_monitor.on_access(
                worker.thread,
                op.addr,
                op.size,
                atype,
                self.machine.cores[worker.thread].clock,
            )
        if (
            self.race_detector is not None
            and task is not None
            and op.heap is not None
        ):
            # Runtime-arena traffic (join counters, result slots) carries
            # heap=None: those addresses are recycled across unrelated
            # forks with no happens-before edge, so only program (heap)
            # accesses feed the detector.
            self.race_detector.on_access(
                task,
                worker.thread,
                op.addr,
                op.size,
                atype,
                self.machine.cores[worker.thread].clock,
            )
