"""A fork-join high-level parallel language runtime (the MPL stand-in, §4).

The package provides:

* a spawn tree of lightweight tasks (:mod:`repro.hlpl.task`),
* the heap hierarchy with page bump-allocation and WARD page marking
  (:mod:`repro.hlpl.heap`),
* simulated arrays whose loads/stores drive the machine model
  (:mod:`repro.hlpl.arrays`),
* the user-facing API — ``par``, ``parallel_for``, ``tabulate``, ``reduce``,
  ``filter`` … (:mod:`repro.hlpl.api`),
* a work-stealing scheduler whose deques live in simulated memory
  (:mod:`repro.hlpl.scheduler`),
* the runtime tying it all together (:mod:`repro.hlpl.runtime`).

Benchmark code is written as Python generators against
:class:`~repro.hlpl.api.TaskContext`; the runtime executes them on the
simulated machine under either MESI or WARDen.
"""

from repro.hlpl.api import TaskContext
from repro.hlpl.arrays import SimArray
from repro.hlpl.heap import PAGE_SIZE, Heap, Page
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.runtime import Runtime
from repro.hlpl.task import TaskNode

__all__ = [
    "Heap",
    "MarkingPolicy",
    "PAGE_SIZE",
    "Page",
    "Runtime",
    "SimArray",
    "TaskContext",
    "TaskNode",
]
