"""Work-stealing scheduler with simulated-memory deques.

Each worker owns a deque; the owner pushes/pops at the bottom, thieves
steal from the top with an atomic.  The deque's top/bottom words live at
simulated addresses (padded to one cache block each, as real runtimes pad),
so scheduling itself generates realistic coherence traffic — identically for
MESI and WARDen, since runtime metadata is never inside a WARD region.

Idle workers spin with exponential backoff (busy-wait synchronization, as in
the PBBS suite — see the paper's Fig. 11 discussion of ray).
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.common.types import AccessType

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE
_RMW = AccessType.RMW

BACKOFF_MIN = 64
#: capped low: long backoffs make steal latency (and thus the critical path)
#: jitter by thousands of cycles, drowning protocol effects in noise
BACKOFF_MAX = 512


class WorkStealingScheduler:
    """Implements the engine's scheduler interface (§2.1's "standard
    work-stealing scheduler")."""

    def __init__(self, rt, model_traffic: bool = True, seed: int = 0) -> None:
        self.rt = rt
        machine = rt.machine
        nthreads = machine.config.num_threads
        bs = machine.config.block_size
        self.deques: List[deque] = [deque() for _ in range(nthreads)]
        self.total_ready = 0
        self.finished = False
        #: when False, deque/steal operations cost fixed cycles instead of
        #: simulated memory traffic (diagnostic / ablation knob)
        self.model_traffic = model_traffic
        self.bottom_addr = [machine.sbrk(bs, bs) for _ in range(nthreads)]
        self.top_addr = [machine.sbrk(bs, bs) for _ in range(nthreads)]
        self.flag_addr = [machine.sbrk(bs, bs) for _ in range(nthreads)]
        for t in range(nthreads):
            machine.place(self.bottom_addr[t], bs, t)
            machine.place(self.top_addr[t], bs, t)
            machine.place(self.flag_addr[t], bs, t)
        self._backoff = [BACKOFF_MIN] * nthreads
        #: mirror the engine's epoch knob: scheduler deque/spin accesses are
        #: overwhelmingly private hits, so route them through the epoch fast
        #: path (identical statistical effects; see try_fast_access) unless
        #: REPRO_EPOCH_BATCH=0 asks for the pure reference access path
        self._fast_touch = getattr(rt.engine, "epoch_batch", False)
        # hoisted hot-path handles (all stable for the machine's lifetime;
        # on_idle dominates simulated idle time, so attribute chains matter)
        self._machine = machine
        self._cores = machine.cores
        self._core_of = machine._core_of
        self._try_fast = machine.protocol.try_fast_access
        self._tracer = machine.tracer
        self._nthreads = nthreads
        config = machine.config
        self._per_socket = config.cores_per_socket * config.threads_per_core
        self._num_sockets = config.num_sockets
        # Deterministic per-worker victim choice (xorshift-style LCG),
        # perturbed by the run seed so harnesses can average out
        # steal-timing noise across runs.
        self._rng_state = [
            (0x9E3779B9 * (t + 1) ^ (seed * 0x85EBCA6B)) & 0xFFFFFFFF
            for t in range(nthreads)
        ]

    def _next_victim(self, thread: int) -> int:
        """NUMA-aware victim choice: 3 of 4 probes stay on the thief's
        socket (a remote probe costs a full cross-socket round trip)."""
        state = self._rng_state[thread]
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        self._rng_state[thread] = state
        nthreads = self._nthreads
        per_socket = self._per_socket
        if self._num_sockets > 1 and state & 0x3 == 0:
            # remote probe: uniform over all other threads
            victim = (state >> 2) % (nthreads - 1)
            if victim >= thread:
                victim += 1
            return victim
        base = thread - (thread % per_socket)
        if per_socket <= 1:
            victim = (state >> 2) % (nthreads - 1)
            return victim + 1 if victim >= thread else victim
        local = base + (state >> 2) % (per_socket - 1)
        if local >= thread:
            local += 1
        return local

    def _touch(self, thread: int, addr: int, atype, spin: bool = False) -> None:
        if not self.model_traffic:
            self._cores[thread].advance(4)
            return
        # Deque words and spin flags are overwhelmingly private hits, so
        # take the epoch fast path (identical statistical effects) when the
        # tracer doesn't need per-access events; atomics always fall
        # through (try_fast_access declines RMWs).
        if self._fast_touch and not self._tracer.enabled:
            latency = self._try_fast(self._core_of[thread], addr, 8, atype)
            if latency is not None:
                cm = self._cores[thread]
                if atype is _LOAD:
                    cm.load(latency, spin=spin)
                else:
                    cm.store(latency)
                return
        self._machine.access(thread, addr, 8, atype, spin=spin)

    # ------------------------------------------------------------------
    def push(self, thread: int, strand) -> None:
        """Owner pushes a ready strand at the bottom of its own deque."""
        strand.ready_clock = self._cores[thread].clock
        self.deques[thread].append(strand)
        self.total_ready += 1
        self._touch(thread, self.bottom_addr[thread], _STORE)

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def has_work_for(self, worker) -> bool:
        # Idle workers always spin (busy-wait runtime); termination is
        # signalled through ``finished``.
        return not self.finished

    def on_idle(self, worker) -> None:
        thread = worker.thread
        core = self._cores[thread]

        # 1. Own deque: pop the newest task (bottom).
        self._touch(thread, self.bottom_addr[thread], _LOAD)
        own = self.deques[thread]
        if own:
            strand = own.pop()
            self.total_ready -= 1
            self._touch(thread, self.bottom_addr[thread], _STORE)
            self._assign(worker, strand)
            return

        # 2. Steal attempt: probe one random victim (standard work stealing
        #    probes a single victim per attempt, then backs off briefly).
        if self.total_ready > 0 and len(self.deques) > 1:
            victim = self._next_victim(thread)
            core.stats.steal_attempts += 1
            self._touch(thread, self.top_addr[victim], _LOAD)
            vdeque = self.deques[victim]
            tracer = self._tracer
            if vdeque:
                self._touch(thread, self.top_addr[victim], _RMW)
                strand = vdeque.popleft()
                self.total_ready -= 1
                core.stats.successful_steals += 1
                if tracer.enabled:
                    tracer.steal(core.clock, thread, victim, True)
                self._assign(worker, strand)
                return
            if tracer.enabled:
                tracer.steal(core.clock, thread, victim, False)
            core.advance(BACKOFF_MIN)  # brief pause before the next probe
            return

        # 3. Nothing to do: spin on a local flag with exponential backoff.
        self._touch(thread, self.flag_addr[thread], _LOAD, spin=True)
        backoff = self._backoff
        core.advance(backoff[thread])
        backoff[thread] = min(backoff[thread] * 2, BACKOFF_MAX)

    # ------------------------------------------------------------------
    def _assign(self, worker, strand) -> None:
        core = self._cores[worker.thread]
        if strand.ready_clock > core.clock:
            # Causality: a strand cannot run before it was made ready.
            core.clock = strand.ready_clock
        self._backoff[worker.thread] = BACKOFF_MIN
        worker.strand = strand
