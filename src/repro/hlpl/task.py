"""Spawn-tree nodes (lightweight fork-join tasks)."""

from __future__ import annotations

import itertools
from typing import List, Optional

_task_ids = itertools.count()


class JoinRecord:
    """Bookkeeping for one fork: suspended parent + outstanding children."""

    __slots__ = (
        "parent_strand",
        "remaining",
        "results",
        "counter_addr",
        "children",
    )

    def __init__(self, parent_strand, count: int, counter_addr: int) -> None:
        self.parent_strand = parent_strand
        self.remaining = count
        self.results: List = [None] * count
        self.counter_addr = counter_addr
        self.children: List["TaskNode"] = []


class TaskNode:
    """One node of the dynamic spawn tree (paper §2.1).

    A node is a *leaf* while it runs; it becomes internal (suspended) at a
    fork and a leaf again when its children join.
    """

    __slots__ = ("task_id", "parent", "depth", "heap", "join", "completed")

    def __init__(self, parent: Optional["TaskNode"]) -> None:
        self.task_id = next(_task_ids)
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.heap = None  # assigned by the runtime
        self.join: Optional[JoinRecord] = None
        self.completed = False

    def is_ancestor_or_self(self, other: "TaskNode") -> bool:
        """True if ``self`` is ``other`` or an ancestor of ``other``."""
        node = other
        while node is not None and node.depth >= self.depth:
            if node is self:
                return True
            node = node.parent
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskNode(id={self.task_id}, depth={self.depth})"
