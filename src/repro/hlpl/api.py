"""The user-facing HLPL API: fork-join and data-parallel combinators.

Benchmark code receives a :class:`TaskContext` and composes generators:

    def my_task(ctx, n):
        arr = yield from ctx.tabulate(n, lambda c, i: c.value(i * i))
        total = yield from ctx.reduce(0, n, lambda c, i: arr.get(i),
                                      lambda a, b: a + b)
        return total

Everything here is "standard library" in the paper's sense (§4.2): the
combinators use efficient in-place updates under the hood while guaranteeing
the memory discipline (disentanglement, and WARD for construct outputs) by
construction — the user never annotates anything.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.hlpl.arrays import SimArray
from repro.sim.ops import (
    ComputeOp,
    ForkOp,
    GatherBatchOp,
    LoadBatchOp,
    StoreBatchOp,
)

DEFAULT_GRAIN = 16


class TaskContext:
    """Handle passed to every task body; bound to one spawn-tree node."""

    __slots__ = ("rt", "task")

    def __init__(self, rt, task) -> None:
        self.rt = rt
        self.task = task

    # ------------------------------------------------------------------
    # Fork-join
    # ------------------------------------------------------------------
    def par(self, *thunks: Callable):
        """Fork one child per thunk ``(ctx) -> generator``; join; return the
        list of child results."""
        if not thunks:
            return []
        if len(thunks) == 1:
            value = yield from thunks[0](self)
            return [value]
        results = yield ForkOp(self, thunks)
        return results

    def parallel_for(
        self,
        lo: int,
        hi: int,
        body: Callable,
        grain: int = DEFAULT_GRAIN,
    ):
        """Run ``body(ctx, i)`` for every ``i`` in ``[lo, hi)`` in parallel
        (recursive binary splitting down to ``grain`` iterations)."""
        n = hi - lo
        if n <= 0:
            return
        if n <= grain:
            for i in range(lo, hi):
                yield from body(self, i)
            return
        mid = lo + n // 2
        yield from self.par(
            lambda c: c.parallel_for(lo, mid, body, grain),
            lambda c: c.parallel_for(mid, hi, body, grain),
        )

    def parallel_for_chunks(
        self,
        lo: int,
        hi: int,
        chunk_body: Callable,
        grain: int = DEFAULT_GRAIN,
    ):
        """Like :meth:`parallel_for`, but each grain-sized leaf invokes
        ``chunk_body(ctx, leaf_lo, leaf_hi)`` once instead of ``body`` per
        index — the splitting (and therefore the fork tree) is identical,
        so a chunk body that emits the per-index op stream in one batch is
        stream-identical to the per-index loop."""
        n = hi - lo
        if n <= 0:
            return
        if n <= grain:
            yield from chunk_body(self, lo, hi)
            return
        mid = lo + n // 2
        yield from self.par(
            lambda c: c.parallel_for_chunks(lo, mid, chunk_body, grain),
            lambda c: c.parallel_for_chunks(mid, hi, chunk_body, grain),
        )

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc_array(
        self,
        length: int,
        elem_size: int = 8,
        fill: Any = None,
        name: str = "",
    ):
        """Allocate an array in this task's heap (fresh pages become WARD)."""
        nbytes = max(length, 1) * elem_size
        addr, cost = self.rt.heap_alloc(self.task, nbytes)
        yield ComputeOp(cost)
        return SimArray(
            addr, length, elem_size, heap=self.task.heap, fill=fill, name=name
        )

    def alloc_ref(self, value: Any = None, name: str = "ref"):
        """Allocate a one-element cell."""
        ref = yield from self.alloc_array(1, fill=value, name=name)
        return ref

    # ------------------------------------------------------------------
    # Data-parallel constructs (WARD-by-construction on their outputs)
    # ------------------------------------------------------------------
    def tabulate(
        self,
        length: int,
        body: Callable,
        grain: int = DEFAULT_GRAIN,
        elem_size: int = 8,
        name: str = "tab",
    ):
        """Build a new array with ``out[i] = body(ctx, i)``.

        The output array is a WARD region for the duration of the construct:
        by construction each element is written exactly once and read by
        nobody until the construct returns.
        """
        arr = yield from self.alloc_array(length, elem_size, name=name)
        region = self.rt.construct_begin(arr)

        def write_body(c, i):
            value = yield from body(c, i)
            yield from arr.set(i, value)

        yield from self.parallel_for(0, length, write_body, grain)
        self.rt.construct_end(region)
        return arr

    def tabulate_batch(
        self,
        length: int,
        fn: Callable[[int], Any],
        grain: int = DEFAULT_GRAIN,
        elem_size: int = 8,
        name: str = "tab",
        instrs: int = 0,
    ):
        """Coalesced :meth:`tabulate` for *host-computable* bodies.

        ``fn(i)`` is a plain Python function (no simulated reads); each
        element costs ``instrs`` compute followed by its store, emitted as
        one fused batch op per leaf.  Stream-identical to ``tabulate`` with
        ``body = lambda c, i: (yield ComputeOp(instrs)) or fn(i)`` (or
        ``c.value(fn(i))`` when ``instrs`` is 0) at the same grain, but
        with two generator resumes per leaf instead of two per element.
        """
        arr = yield from self.alloc_array(length, elem_size, name=name)
        region = self.rt.construct_begin(arr)

        def write_chunk(c, lo, hi):
            yield StoreBatchOp(
                arr.addr(lo), arr.elem_size, hi - lo, arr.elem_size,
                heap=arr.heap, instrs=instrs, compute_first=True,
            )
            arr.data[lo:hi] = [fn(i) for i in range(lo, hi)]

        yield from self.parallel_for_chunks(0, length, write_chunk, grain)
        self.rt.construct_end(region)
        return arr

    def tabulate_gather(
        self,
        length: int,
        srcs,
        fn: Callable,
        grain: int = DEFAULT_GRAIN,
        elem_size: int = 8,
        name: str = "tab",
        instrs: int = 0,
        dense_lo: int = 0,
        dense_hi: int = None,
        edge_body: Callable = None,
    ):
        """Coalesced :meth:`tabulate` for bodies that read other arrays.

        ``out[i] = fn(i, *(s.data[i + off] for (s, off) in srcs))``; per
        element the simulated op stream is the loads of each source (in
        ``srcs`` order), ``ComputeOp(instrs)`` if ``instrs``, then the
        store — stream-identical to the equivalent per-element tabulate
        body, retired as one :class:`GatherBatchOp` per leaf.  ``srcs``
        entries are ``SimArray`` or ``(SimArray, offset)`` pairs.

        Indices outside ``[dense_lo, dense_hi)`` (where the gather pattern
        would read out of bounds, e.g. a stencil's rim) instead run
        ``edge_body(ctx, i)`` — the original generator body — followed by
        the element's store, preserving the boundary elements' exact ops.
        """
        arr = yield from self.alloc_array(length, elem_size, name=name)
        region = self.rt.construct_begin(arr)
        if dense_hi is None:
            dense_hi = length
        pairs = [s if isinstance(s, tuple) else (s, 0) for s in srcs]
        pattern = [
            (0, s.addr(0) + off * s.elem_size, s.elem_size, s.elem_size, s.heap)
            for s, off in pairs
        ]
        if instrs:
            pattern.append((2, instrs, 0, 0, None))
        pattern.append((1, arr.addr(0), arr.elem_size, arr.elem_size, arr.heap))
        pattern = tuple(pattern)

        def chunk(c, lo, hi):
            for i in range(lo, min(hi, dense_lo)):
                value = yield from edge_body(c, i)
                yield from arr.set(i, value)
            dlo = max(lo, dense_lo)
            dhi = min(hi, dense_hi)
            if dhi > dlo:
                yield GatherBatchOp(dlo, dhi - dlo, pattern)
                arr.data[dlo:dhi] = [
                    fn(i, *(s.data[i + off] for s, off in pairs))
                    for i in range(dlo, dhi)
                ]
            for i in range(max(lo, dense_hi), hi):
                value = yield from edge_body(c, i)
                yield from arr.set(i, value)

        yield from self.parallel_for_chunks(0, length, chunk, grain)
        self.rt.construct_end(region)
        return arr

    def map_array(
        self,
        src: SimArray,
        fn: Callable[[Any], Any],
        grain: int = DEFAULT_GRAIN,
        cost: int = 1,
        name: str = "map",
    ):
        """``out[i] = fn(src[i])`` with ``cost`` compute instrs per element.

        Stream-identical to a :meth:`tabulate` whose body loads ``src[i]``,
        computes ``cost`` instrs, and returns ``fn(value)`` — coalesced via
        :meth:`tabulate_gather`.
        """
        out = yield from self.tabulate_gather(
            len(src), [src], lambda i, value: fn(value),
            grain, src.elem_size, name, instrs=cost,
        )
        return out

    def reduce(
        self,
        lo: int,
        hi: int,
        leaf: Callable,
        combine: Callable[[Any, Any], Any],
        grain: int = DEFAULT_GRAIN,
    ):
        """Tree-reduce ``combine(leaf(ctx, lo), ..., leaf(ctx, hi-1))``.

        ``combine`` must be associative (the tree shape is unspecified).
        ``hi`` must exceed ``lo``.
        """
        n = hi - lo
        if n <= 0:
            raise ValueError("reduce needs a non-empty range")
        if n <= grain:
            acc = yield from leaf(self, lo)
            for i in range(lo + 1, hi):
                value = yield from leaf(self, i)
                yield ComputeOp(1)
                acc = combine(acc, value)
            return acc
        mid = lo + n // 2
        left, right = yield from self.par(
            lambda c: c.reduce(lo, mid, leaf, combine, grain),
            lambda c: c.reduce(mid, hi, leaf, combine, grain),
        )
        yield ComputeOp(1)
        return combine(left, right)

    def reduce_array(
        self,
        arr: SimArray,
        lo: int,
        hi: int,
        combine: Callable[[Any, Any], Any],
        grain: int = DEFAULT_GRAIN,
    ):
        """Coalesced :meth:`reduce` over the elements of ``arr``.

        Stream-identical to ``reduce(lo, hi, lambda c, i: arr.get(i),
        combine, grain)``: leaves load their first element, then retire the
        remaining ``[Load, ComputeOp(1)]`` pairs as one fused batch and
        fold host-side; the fork tree and internal combine ops match
        :meth:`reduce` exactly.
        """
        n = hi - lo
        if n <= 0:
            raise ValueError("reduce needs a non-empty range")
        if n <= grain:
            acc = yield from arr.get(lo)
            if n > 1:
                yield LoadBatchOp(
                    arr.addr(lo + 1), arr.elem_size, n - 1, arr.elem_size,
                    heap=arr.heap, instrs=1,
                )
                for value in arr.data[lo + 1:hi]:
                    acc = combine(acc, value)
            return acc
        mid = lo + n // 2
        left, right = yield from self.par(
            lambda c: c.reduce_array(arr, lo, mid, combine, grain),
            lambda c: c.reduce_array(arr, mid, hi, combine, grain),
        )
        yield ComputeOp(1)
        return combine(left, right)

    def filter_array(
        self,
        src: SimArray,
        pred: Callable[[Any], bool],
        grain: int = DEFAULT_GRAIN,
        name: str = "filter",
    ):
        """PBBS-style pack: keep the elements of ``src`` satisfying ``pred``.

        Two phases: per-chunk counts (parallel), exclusive scan over chunk
        sums (sequential — the chunk count is tiny), then a parallel
        write-out into a fresh WARD output array.
        """
        n = len(src)
        if n == 0:
            out = yield from self.alloc_array(0, src.elem_size, name=name)
            return out
        nchunks = (n + grain - 1) // grain
        counts = yield from self.alloc_array(nchunks, name=f"{name}.counts")
        counts_region = self.rt.construct_begin(counts)

        def count_chunk(c, ci):
            # Coalesced: the dense [Load, ComputeOp(1)]-per-element loop
            # retires as one fused batch (stream-identical), with the
            # predicate evaluated host-side.
            lo = ci * grain
            hi = min(lo + grain, n)
            yield LoadBatchOp(
                src.addr(lo), src.elem_size, hi - lo, src.elem_size,
                heap=src.heap, instrs=1,
            )
            kept = sum(1 for value in src.data[lo:hi] if pred(value))
            yield from counts.set(ci, kept)

        yield from self.parallel_for(0, nchunks, count_chunk, grain=1)
        self.rt.construct_end(counts_region)

        # Exclusive scan over the (small) chunk counts, sequentially.
        offsets = yield from self.alloc_array(nchunks, name=f"{name}.offsets")
        total = 0
        for ci in range(nchunks):
            yield from offsets.set(ci, total)
            count = yield from counts.get(ci)
            yield ComputeOp(1)
            total += count

        out = yield from self.alloc_array(total, src.elem_size, name=name)
        out_region = self.rt.construct_begin(out)

        def pack_chunk(c, ci):
            lo = ci * grain
            hi = min(lo + grain, n)
            offset = yield from offsets.get(ci)
            for i in range(lo, hi):
                value = yield from src.get(i)
                yield ComputeOp(1)
                if pred(value):
                    yield from out.set(offset, value)
                    offset += 1

        yield from self.parallel_for(0, nchunks, pack_chunk, grain=1)
        self.rt.construct_end(out_region)
        return out

    # ------------------------------------------------------------------
    # Write-only phases (library-internal, backs primitives like inject)
    # ------------------------------------------------------------------
    def ward_begin(self, arr: SimArray):
        """Open a WARD phase over ``arr`` (the caller guarantees the phase
        only performs benign writes to ``arr`` — e.g. a sieve's constant
        stores).  Library primitives use this; user code never needs it."""
        return self.rt.construct_begin(arr)

    def ward_end(self, region) -> None:
        self.rt.construct_end(region)

    # ------------------------------------------------------------------
    def value(self, v: Any):
        """Lift a pure value into a (cost-free) generator — glue helper."""
        return v
        yield  # pragma: no cover - makes this a generator
