"""The user-facing HLPL API: fork-join and data-parallel combinators.

Benchmark code receives a :class:`TaskContext` and composes generators:

    def my_task(ctx, n):
        arr = yield from ctx.tabulate(n, lambda c, i: c.value(i * i))
        total = yield from ctx.reduce(0, n, lambda c, i: arr.get(i),
                                      lambda a, b: a + b)
        return total

Everything here is "standard library" in the paper's sense (§4.2): the
combinators use efficient in-place updates under the hood while guaranteeing
the memory discipline (disentanglement, and WARD for construct outputs) by
construction — the user never annotates anything.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.hlpl.arrays import SimArray
from repro.sim.ops import ComputeOp, ForkOp

DEFAULT_GRAIN = 16


class TaskContext:
    """Handle passed to every task body; bound to one spawn-tree node."""

    __slots__ = ("rt", "task")

    def __init__(self, rt, task) -> None:
        self.rt = rt
        self.task = task

    # ------------------------------------------------------------------
    # Fork-join
    # ------------------------------------------------------------------
    def par(self, *thunks: Callable):
        """Fork one child per thunk ``(ctx) -> generator``; join; return the
        list of child results."""
        if not thunks:
            return []
        if len(thunks) == 1:
            value = yield from thunks[0](self)
            return [value]
        results = yield ForkOp(self, thunks)
        return results

    def parallel_for(
        self,
        lo: int,
        hi: int,
        body: Callable,
        grain: int = DEFAULT_GRAIN,
    ):
        """Run ``body(ctx, i)`` for every ``i`` in ``[lo, hi)`` in parallel
        (recursive binary splitting down to ``grain`` iterations)."""
        n = hi - lo
        if n <= 0:
            return
        if n <= grain:
            for i in range(lo, hi):
                yield from body(self, i)
            return
        mid = lo + n // 2
        yield from self.par(
            lambda c: c.parallel_for(lo, mid, body, grain),
            lambda c: c.parallel_for(mid, hi, body, grain),
        )

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc_array(
        self,
        length: int,
        elem_size: int = 8,
        fill: Any = None,
        name: str = "",
    ):
        """Allocate an array in this task's heap (fresh pages become WARD)."""
        nbytes = max(length, 1) * elem_size
        addr, cost = self.rt.heap_alloc(self.task, nbytes)
        yield ComputeOp(cost)
        return SimArray(
            addr, length, elem_size, heap=self.task.heap, fill=fill, name=name
        )

    def alloc_ref(self, value: Any = None, name: str = "ref"):
        """Allocate a one-element cell."""
        ref = yield from self.alloc_array(1, fill=value, name=name)
        return ref

    # ------------------------------------------------------------------
    # Data-parallel constructs (WARD-by-construction on their outputs)
    # ------------------------------------------------------------------
    def tabulate(
        self,
        length: int,
        body: Callable,
        grain: int = DEFAULT_GRAIN,
        elem_size: int = 8,
        name: str = "tab",
    ):
        """Build a new array with ``out[i] = body(ctx, i)``.

        The output array is a WARD region for the duration of the construct:
        by construction each element is written exactly once and read by
        nobody until the construct returns.
        """
        arr = yield from self.alloc_array(length, elem_size, name=name)
        region = self.rt.construct_begin(arr)

        def write_body(c, i):
            value = yield from body(c, i)
            yield from arr.set(i, value)

        yield from self.parallel_for(0, length, write_body, grain)
        self.rt.construct_end(region)
        return arr

    def map_array(
        self,
        src: SimArray,
        fn: Callable[[Any], Any],
        grain: int = DEFAULT_GRAIN,
        cost: int = 1,
        name: str = "map",
    ):
        """``out[i] = fn(src[i])`` with ``cost`` compute instrs per element."""

        def body(c, i):
            value = yield from src.get(i)
            yield ComputeOp(cost)
            return fn(value)

        out = yield from self.tabulate(len(src), body, grain, src.elem_size, name)
        return out

    def reduce(
        self,
        lo: int,
        hi: int,
        leaf: Callable,
        combine: Callable[[Any, Any], Any],
        grain: int = DEFAULT_GRAIN,
    ):
        """Tree-reduce ``combine(leaf(ctx, lo), ..., leaf(ctx, hi-1))``.

        ``combine`` must be associative (the tree shape is unspecified).
        ``hi`` must exceed ``lo``.
        """
        n = hi - lo
        if n <= 0:
            raise ValueError("reduce needs a non-empty range")
        if n <= grain:
            acc = yield from leaf(self, lo)
            for i in range(lo + 1, hi):
                value = yield from leaf(self, i)
                yield ComputeOp(1)
                acc = combine(acc, value)
            return acc
        mid = lo + n // 2
        left, right = yield from self.par(
            lambda c: c.reduce(lo, mid, leaf, combine, grain),
            lambda c: c.reduce(mid, hi, leaf, combine, grain),
        )
        yield ComputeOp(1)
        return combine(left, right)

    def filter_array(
        self,
        src: SimArray,
        pred: Callable[[Any], bool],
        grain: int = DEFAULT_GRAIN,
        name: str = "filter",
    ):
        """PBBS-style pack: keep the elements of ``src`` satisfying ``pred``.

        Two phases: per-chunk counts (parallel), exclusive scan over chunk
        sums (sequential — the chunk count is tiny), then a parallel
        write-out into a fresh WARD output array.
        """
        n = len(src)
        if n == 0:
            out = yield from self.alloc_array(0, src.elem_size, name=name)
            return out
        nchunks = (n + grain - 1) // grain
        counts = yield from self.alloc_array(nchunks, name=f"{name}.counts")
        counts_region = self.rt.construct_begin(counts)

        def count_chunk(c, ci):
            lo = ci * grain
            hi = min(lo + grain, n)
            kept = 0
            for i in range(lo, hi):
                value = yield from src.get(i)
                yield ComputeOp(1)
                if pred(value):
                    kept += 1
            yield from counts.set(ci, kept)

        yield from self.parallel_for(0, nchunks, count_chunk, grain=1)
        self.rt.construct_end(counts_region)

        # Exclusive scan over the (small) chunk counts, sequentially.
        offsets = yield from self.alloc_array(nchunks, name=f"{name}.offsets")
        total = 0
        for ci in range(nchunks):
            yield from offsets.set(ci, total)
            count = yield from counts.get(ci)
            yield ComputeOp(1)
            total += count

        out = yield from self.alloc_array(total, src.elem_size, name=name)
        out_region = self.rt.construct_begin(out)

        def pack_chunk(c, ci):
            lo = ci * grain
            hi = min(lo + grain, n)
            offset = yield from offsets.get(ci)
            for i in range(lo, hi):
                value = yield from src.get(i)
                yield ComputeOp(1)
                if pred(value):
                    yield from out.set(offset, value)
                    offset += 1

        yield from self.parallel_for(0, nchunks, pack_chunk, grain=1)
        self.rt.construct_end(out_region)
        return out

    # ------------------------------------------------------------------
    # Write-only phases (library-internal, backs primitives like inject)
    # ------------------------------------------------------------------
    def ward_begin(self, arr: SimArray):
        """Open a WARD phase over ``arr`` (the caller guarantees the phase
        only performs benign writes to ``arr`` — e.g. a sieve's constant
        stores).  Library primitives use this; user code never needs it."""
        return self.rt.construct_begin(arr)

    def ward_end(self, region) -> None:
        self.rt.construct_end(region)

    # ------------------------------------------------------------------
    def value(self, v: Any):
        """Lift a pure value into a (cost-free) generator — glue helper."""
        return v
        yield  # pragma: no cover - makes this a generator
