"""Analytical area model reproducing the paper's §6.1 CACTI estimates.

Two claims are checked:

* byte sectoring of 64 B blocks adds ~7.9% cache area (one written-bit per
  data byte, on top of existing tag/state/ECC metadata), and
* 1024-entry WARD-region storage (2 pointers = 16 B per region, plus range
  comparators) adds <0.05% of total cache area.

The constants below are first-order: per-block metadata as found in a
modern server cache (tag, state, LRU, SECDED, and an amortized share of the
LLC sharer vectors), and relative cell-area factors for the added
structures.  They are chosen to be physically plausible and land on the
paper's CACTI 7.0 numbers.
"""

from __future__ import annotations

from repro.common.config import MachineConfig

#: per-block metadata bits already present: tag (~36), coherence state (3),
#: LRU (4), SECDED over the 64 B line (~88), amortized sharer vector (~24)
BASELINE_METADATA_BITS = 36 + 3 + 4 + 88 + 24
#: written-bit array cells are plain 6T SRAM without the ECC/tag periphery
#: of the data array, so their relative cell area is below 1
SECTOR_CELL_EFFICIENCY = 0.80
#: CAM cell area relative to an SRAM cell (content-addressable overhead)
CAM_CELL_FACTOR = 2.0
#: extra relative area for the per-bit range comparators of §6.1 (simpler
#: than a TCAM, slightly more than a plain CAM)
RANGE_COMPARE_FACTOR = 1.25
#: cache macros carry tags/ECC/periphery beyond their nominal data bits
CACHE_AREA_PER_DATA_BIT = 1.25


def sectoring_area_overhead(block_size: int = 64) -> float:
    """Fractional cache-area overhead of byte-granularity write sectoring.

    One extra written-bit per data byte; the baseline block carries data
    bits plus metadata.  Returns ~0.079 for 64-byte blocks (paper: 7.9%).
    """
    data_bits = block_size * 8
    sector_bits = block_size * SECTOR_CELL_EFFICIENCY  # one bit per byte
    baseline = data_bits + BASELINE_METADATA_BITS
    return sector_bits / baseline


def region_cam_area_overhead(
    config: MachineConfig, num_regions: int = 1024
) -> float:
    """Fractional area overhead of the WARD-region store vs total cache area.

    ``num_regions`` entries of 2 pointers (16 bytes) in a CAM-like structure
    with range comparators, tracked globally (§5.1: "WARD regions are
    therefore defined globally").  Returns a fraction (paper: < 0.0005).
    """
    region_bits = (
        num_regions * 16 * 8 * CAM_CELL_FACTOR * RANGE_COMPARE_FACTOR
    )

    per_core_private = config.l1.size_bytes + config.l2.size_bytes
    llc_per_socket = config.l3.size_bytes * config.cores_per_socket
    total_cache_bits = (
        (config.num_cores * per_core_private + config.num_sockets * llc_per_socket)
        * 8
        * CACHE_AREA_PER_DATA_BIT
    )

    return region_bits / total_cache_bits
