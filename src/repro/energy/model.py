"""Per-event energy accounting (the McPAT substitute, §7).

The model charges:

* dynamic energy per cache access at each level and per DRAM access,
* network energy per message, scaled by flit count (data vs control) and
  link class (on-die hop, cross-socket link, disaggregated remote link),
* core dynamic energy per retired instruction,
* static (leakage + clock) energy per core-cycle of the run.

Absolute joules are representative, not calibrated; the paper's results
(Figs. 7b/8b/12b) are *relative* savings, which depend only on the ratios.
"""

from __future__ import annotations

from repro.common.config import EnergyConfig, MachineConfig
from repro.common.stats import EnergyStats, RunStats
from repro.common.types import MessageType


class EnergyModel:
    """Converts a finished :class:`RunStats` into :class:`EnergyStats`."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.energy: EnergyConfig = config.energy

    # ------------------------------------------------------------------
    def _message_nj(self, mtype: MessageType, link: str, count: int) -> float:
        e = self.energy
        flits = e.data_flits if mtype.carries_data else e.ctrl_flits
        if link == "local":
            return 0.0
        if link == "intra":
            per_hop = e.hop_intra_nj
        elif link == "socket":
            per_hop = e.hop_remote_nj if self.config.disaggregated else e.hop_socket_nj
        elif link == "memory":
            # DRAM channel traversal; the access energy itself is separate.
            per_hop = e.hop_intra_nj
        else:
            raise ValueError(f"unknown link class {link!r}")
        return flits * per_hop * count

    # ------------------------------------------------------------------
    def compute(self, stats: RunStats) -> EnergyStats:
        """Fill and return ``stats.energy`` from the run's counters."""
        e = self.energy
        coh = stats.coherence
        cores = stats.cores

        out = EnergyStats()
        l1_accesses = coh.l1_accesses or (cores.loads + cores.stores + cores.rmws)
        out.cache_nj = (
            l1_accesses * e.l1_access_nj
            + coh.l2_accesses * e.l2_access_nj
            + coh.l3_accesses * e.l3_access_nj
        )
        out.dram_nj = coh.dram_accesses * e.dram_access_nj
        out.network_nj = sum(
            self._message_nj(mtype, link, count)
            for (mtype, link), count in coh.messages.items()
        )
        out.core_dynamic_nj = cores.instructions * e.core_dynamic_per_instr_nj
        out.core_static_nj = (
            stats.cycles
            * self.config.num_cores
            * e.static_nj_per_cycle_per_core()
        )
        stats.energy = out
        return out


def percent_savings(baseline_nj: float, improved_nj: float) -> float:
    """Energy savings in percent, as plotted in Figs. 7b/8b/12b."""
    if baseline_nj <= 0:
        return 0.0
    return (baseline_nj - improved_nj) / baseline_nj * 100.0
