"""Energy (McPAT stand-in) and area (CACTI stand-in) models."""

from repro.energy.cacti import region_cam_area_overhead, sectoring_area_overhead
from repro.energy.model import EnergyModel

__all__ = [
    "EnergyModel",
    "region_cam_area_overhead",
    "sectoring_area_overhead",
]
