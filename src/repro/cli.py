"""Command-line interface: regenerate the paper's tables and figures.

Usage (after ``pip install -e .``)::

    warden-repro specs                      # Table 2
    warden-repro table1                     # Sniper-validation ping-pong
    warden-repro figure fig7 [--size small] # single-socket speedup/energy
    warden-repro figure fig8 --json         # dual socket, machine-readable
    warden-repro figure fig8 --jobs 4       # parallel (protocol x seed) matrix
    warden-repro figure fig9|fig10|fig11    # dual-socket analysis figures
    warden-repro figure fig12               # disaggregated
    warden-repro run primes --protocol warden --machine dual [--json]
    warden-repro trace fib --size test --out trace.json   # Perfetto trace
    warden-repro profile fib --size test    # flame summary + region profile
    warden-repro bench --quick              # simulator throughput baseline
    warden-repro bench --quick --replay     # replay-kernel throughput
    warden-repro record fib --size test     # record a replayable trace
    warden-repro replay fib --size test     # replay it (bit-identical stats)
    warden-repro ingest ext.trace --matrix  # external text trace, whole zoo
    warden-repro synth zipf --set skew=2.0  # seeded synthetic service trace
    warden-repro run --workload synth-ring  # synth/trace: names run anywhere
    warden-repro verify --all [--json]      # race detector + conformance
    warden-repro area                       # §6.1 CACTI estimates

``figure`` and ``run`` read and write a persistent result cache under
``.warden-cache/`` (keyed by config + code content hashes); disable with
``--no-disk-cache``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.analysis.bench import (
    compare_to_baseline,
    find_default_baseline,
    load_report,
    render_report,
    run_bench_suite,
    write_report,
)
from repro.analysis.conformance import run_verify
from repro.analysis.metrics import compare_multi, summarize
from repro.analysis.pool import DEFAULT_CACHE_DIR, DiskCache, MatrixReport
from repro.analysis.run import run_benchmark, run_pairs, set_disk_cache
from repro.analysis.tables import (
    figure9,
    figure10,
    figure11,
    speedup_energy_figure,
    table1,
    table2,
)
from repro.bench import BENCHMARKS, DISAGGREGATED_SUBSET, PAPER_ORDER
from repro.bench.microbench import run_table1
from repro.coherence.registry import available_protocols, protocol_class
from repro.common.config import disaggregated, dual_socket, single_socket
from repro.common.errors import ReproError
from repro.energy.cacti import region_cam_area_overhead, sectoring_area_overhead
from repro.obs.collect import (
    LatencyHistogram,
    MultiSink,
    PhaseHistogram,
    RegionProfile,
    RingBufferSink,
)
from repro.obs.export import (
    flame_summary,
    manifest_json,
    run_manifest,
    write_chrome_trace,
)

FIGURES = ("fig7", "fig8", "fig9", "fig10", "fig11", "fig12")

#: machine presets selectable from the command line
MACHINES = {
    "single": single_socket,
    "dual": dual_socket,
    "disagg": disaggregated,
}


def _machine_config(args):
    return MACHINES[args.machine]()


def _configure_disk_cache(args) -> None:
    """Install the persistent result cache unless ``--no-disk-cache``."""
    if getattr(args, "no_disk_cache", False):
        set_disk_cache(None)
    else:
        set_disk_cache(DiskCache(getattr(args, "cache_dir", DEFAULT_CACHE_DIR)))


def _metrics_for(
    config, names: List[str], size: str, jobs: int = 1,
    timeout: Optional[float] = None, retries: int = 0, resume: bool = False,
    report: Optional[MatrixReport] = None,
):
    return [
        compare_multi(run_pairs(
            name, config, size=size, jobs=jobs,
            timeout=timeout, retries=retries, resume=resume, report=report,
        ))
        for name in names
    ]


def _robustness_report(args) -> Optional[MatrixReport]:
    """A MatrixReport when any robustness flag is in play, else None."""
    if args.timeout is not None or args.retries or args.resume:
        return MatrixReport()
    return None


def _print_robustness(report: Optional[MatrixReport]) -> None:
    if report is None or report.clean:
        return
    print(
        f"robustness: {report.retries} retries, {report.timeouts} timeouts, "
        f"{report.respawns} pool respawns, {report.fallbacks} serial "
        f"fallbacks, {report.resumed} tasks resumed from journal",
        file=sys.stderr,
    )


def cmd_specs(_args) -> int:
    print(table2(dual_socket()))
    return 0


def cmd_table1(args) -> int:
    print(table1(run_table1(iterations=args.iterations)))
    return 0


#: per-figure rendering: (machine preset, benchmark list, renderer).
#: argparse restricts ``figure`` to FIGURES, so this mapping is total.
_FIGURE_SPECS = {
    "fig7": (
        single_socket,
        lambda: PAPER_ORDER,
        lambda m: speedup_energy_figure(
            m, "Figure 7: performance and energy gains on single socket"
        ),
    ),
    "fig8": (
        dual_socket,
        lambda: PAPER_ORDER,
        lambda m: speedup_energy_figure(
            m, "Figure 8: performance and energy gains on dual socket"
        ),
    ),
    "fig9": (dual_socket, lambda: PAPER_ORDER, figure9),
    "fig10": (dual_socket, lambda: PAPER_ORDER, figure10),
    "fig11": (dual_socket, lambda: PAPER_ORDER, figure11),
    "fig12": (
        disaggregated,
        lambda: DISAGGREGATED_SUBSET,
        lambda m: speedup_energy_figure(
            m, "Figure 12: performance and energy gains on disaggregated"
        ),
    ),
}


def cmd_figure(args) -> int:
    _configure_disk_cache(args)
    config_fn, names_fn, renderer = _FIGURE_SPECS[args.figure]
    report = _robustness_report(args)
    metrics = _metrics_for(
        config_fn(), names_fn(), args.size, jobs=args.jobs,
        timeout=args.timeout, retries=args.retries, resume=args.resume,
        report=report,
    )
    if args.json:
        payload = {
            "figure": args.figure,
            "size": args.size,
            "rows": [dataclasses.asdict(m) for m in metrics],
            "summary": summarize(metrics),
        }
        if report is not None and not report.clean:
            payload["robustness"] = report.to_dict()
        print(json.dumps(payload, sort_keys=True))
    else:
        print(renderer(metrics))
        _print_robustness(report)
    return 0


def _pick_workload(args) -> str:
    """The workload under test: positional name or ``--workload`` (one)."""
    from repro.common.errors import ConfigError

    workload = getattr(args, "workload", None)
    if workload and args.benchmark and workload != args.benchmark:
        raise ConfigError(
            f"both a positional benchmark ({args.benchmark!r}) and "
            f"--workload ({workload!r}) given; pass one"
        )
    name = workload or args.benchmark
    if name is None:
        raise ConfigError(
            "no workload given: pass a benchmark name or --workload"
        )
    return name


def cmd_run(args) -> int:
    _configure_disk_cache(args)
    config = _machine_config(args)
    result = run_benchmark(
        _pick_workload(args),
        args.protocol,
        config,
        size=args.size,
        check_ward=protocol_class(args.protocol).supports_ward,
    )
    if args.json:
        print(manifest_json(run_manifest(result, config)))
        return 0
    s = result.stats
    print(f"benchmark : {result.benchmark} ({args.size})")
    print(f"protocol  : {result.protocol}")
    print(f"machine   : {result.machine}")
    print(f"cycles    : {s.cycles}")
    print(f"instrs    : {s.instructions}  (IPC {s.ipc:.4f})")
    print(f"inv/dg    : {s.coherence.invalidations}/{s.coherence.downgrades}")
    print(f"ward cov. : {s.coherence.ward_coverage:.2%}")
    print(f"energy    : {s.energy.processor_nj / 1e3:.1f} uJ "
          f"(network {s.energy.interconnect_nj / 1e3:.1f} uJ)")
    return 0


def cmd_trace(args) -> int:
    config = _machine_config(args)
    sink = RingBufferSink(capacity=args.capacity, sample_every=args.sample)
    result = run_benchmark(
        args.benchmark,
        args.protocol,
        config,
        size=args.size,
        check_ward=protocol_class(args.protocol).supports_ward,
        obs_sink=sink,
    )
    written = write_chrome_trace(
        args.out,
        sink.events(),
        config,
        extra={
            "benchmark": result.benchmark,
            "protocol": result.protocol,
            "machine": result.machine,
            "size": result.size,
            "events_seen": sink.seen,
            "events_recorded": len(sink),
            "events_dropped": sink.dropped,
        },
    )
    print(f"benchmark : {result.benchmark} ({args.size}) on {result.protocol}")
    print(f"events    : {sink.seen} seen, {len(sink)} recorded, "
          f"{sink.dropped} dropped by the ring buffer")
    print(f"trace     : {args.out} ({written} trace events; open in Perfetto "
          "or chrome://tracing)")
    return 0


def cmd_profile(args) -> int:
    config = _machine_config(args)
    ring = RingBufferSink(capacity=args.capacity)
    latencies = LatencyHistogram()
    phases = PhaseHistogram(bin_cycles=args.bin_cycles)
    regions = RegionProfile()
    result = run_benchmark(
        args.benchmark,
        args.protocol,
        config,
        size=args.size,
        check_ward=protocol_class(args.protocol).supports_ward,
        obs_sink=MultiSink(ring, latencies, phases, regions),
    )
    s = result.stats
    print(f"profile: {result.benchmark} ({args.size}) on {result.protocol}, "
          f"{result.machine} — {s.cycles} cycles, {s.instructions} instrs")
    print()
    print("== where the cycles went (flame-style, folded stacks) ==")
    print(flame_summary(ring.events(), config))
    print()
    print("== WARD region profile ==")
    print(regions.render())
    print()
    print("== access latencies ==")
    print(latencies.render())
    print()
    print(f"== coherence events per {args.bin_cycles}-cycle phase ==")
    print(phases.render())
    return 0


def cmd_bench(args) -> int:
    matrix_report = _robustness_report(args)
    mode = "replay" if args.replay else "sim"
    suite_kwargs = dict(
        quick=args.quick, repeats=args.repeats,
        timeout=args.timeout, retries=args.retries, resume=args.resume,
        report=matrix_report, mode=mode,
        extra_rows=[(w, "test") for w in (args.workload or [])],
    )
    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = run_bench_suite(**suite_kwargs)
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
        print(f"== cProfile: top {args.profile_top} by cumulative time ==")
        print(stream.getvalue())
    else:
        report = run_bench_suite(**suite_kwargs)
    write_report(args.out, report)
    baseline_path = args.baseline
    baseline_report = None
    baseline_note = None
    if baseline_path is None and not args.no_baseline:
        # No baseline given: auto-select the newest committed report of the
        # same mode (never the file we just wrote).
        found, found_report = find_default_baseline(
            ".", mode=mode, exclude=args.out
        )
        if found is not None:
            baseline_path = found
            baseline_report = found_report
            baseline_note = (
                f"baseline: auto-selected {found} (newest committed "
                f"{mode}-mode report; pass --baseline/--no-baseline to "
                "override)"
            )
    if baseline_note:
        print(baseline_note)
    print(render_report(report))
    _print_robustness(matrix_report)
    print(f"\nreport written to {args.out}")
    if baseline_path:
        if baseline_report is None:
            baseline_report = load_report(baseline_path)
        ok, message = compare_to_baseline(
            report, baseline_report, args.max_regress
        )
        print(message)
        if not ok and baseline_note is not None:
            # Auto-selected baselines inform; only an explicit --baseline
            # turns the comparison into an exit-code gate (CI does this).
            print("(informational: gate only applies with an explicit "
                  "--baseline)")
            return 0
        return 0 if ok else 1
    return 0


class _ReplayProgress:
    """Minimal obs sink: print replay-subsystem progress lines to stderr."""

    def emit(self, event) -> None:
        if getattr(event, "kind", "") != "replay":
            return
        detail = f" {event.detail}" if getattr(event, "detail", "") else ""
        print(
            f"[{event.action}] {event.benchmark}/{event.protocol} "
            f"events={event.events}{detail}",
            file=sys.stderr,
        )


def cmd_record(args) -> int:
    """Record one benchmark's protocol-event trace into the trace store."""
    from repro.analysis.pool import RunTask, task_fingerprint
    from repro.replay import TraceStore, record_benchmark

    config = _machine_config(args)
    store = TraceStore(args.trace_dir)
    fp = task_fingerprint(RunTask(
        benchmark=args.benchmark,
        protocol=args.protocol,
        config=config,
        size=args.size,
        seed=args.seed,
    ))
    trace, result = record_benchmark(
        args.benchmark, args.protocol, config,
        size=args.size, seed=args.seed, fingerprint=fp,
        obs_sink=_ReplayProgress(),
    )
    path = store.store(fp, trace)
    s = result.stats
    print(f"recorded  : {result.benchmark} ({args.size}) on {result.protocol}")
    print(f"events    : {len(trace)}")
    print(f"cycles    : {s.cycles}  instrs: {s.instructions}")
    if path is None:
        print("trace     : store failed (read-only trace dir?)",
              file=sys.stderr)
        return 1
    print(f"trace     : {path} ({path.stat().st_size} bytes)")
    return 0


def _replay_trace_file(args) -> int:
    """Replay a raw ``.wtrace`` file (``replay --trace FILE``).

    The protocol comes from the trace meta; an unregistered key is an
    operational error (exit 2) listing the registered protocols.
    """
    from repro.common.errors import ConfigError
    from repro.replay import replay_trace
    from repro.replay.trace import Trace

    try:
        with open(args.trace, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise ConfigError(f"cannot read trace {args.trace!r}: {exc}") from None
    import zlib

    try:
        trace = Trace.from_bytes(blob)
    except (ValueError, KeyError, EOFError, zlib.error) as exc:
        raise ConfigError(
            f"{args.trace!r} is not a valid .wtrace file: {exc}"
        ) from None
    result = replay_trace(trace, obs_sink=_ReplayProgress())
    s = result.stats
    print(f"trace     : {args.trace} ({len(trace)} events)")
    print(f"benchmark : {result.benchmark}")
    print(f"protocol  : {result.protocol}")
    print(f"machine   : {result.machine}")
    print(f"cycles    : {s.cycles}")
    print(f"instrs    : {s.instructions}  (IPC {s.ipc:.4f})")
    print(f"inv/dg    : {s.coherence.invalidations}/{s.coherence.downgrades}")
    return 0


def cmd_replay(args) -> int:
    """Replay one benchmark through the kernel (recording on first use)."""
    from repro.analysis.run import replay_benchmark
    from repro.common.errors import ConfigError
    from repro.replay import TraceStore

    if args.trace is not None:
        return _replay_trace_file(args)
    if args.benchmark is None:
        raise ConfigError(
            "no workload given: pass a benchmark name or --trace FILE"
        )
    config = _machine_config(args)
    result = replay_benchmark(
        args.benchmark,
        args.protocol,
        config,
        size=args.size,
        seed=args.seed,
        trace_store=TraceStore(args.trace_dir),
        obs_sink=_ReplayProgress(),
    )
    s = result.stats
    print(f"benchmark : {result.benchmark} ({args.size})")
    print(f"protocol  : {result.protocol}")
    print(f"machine   : {result.machine}")
    print(f"cycles    : {s.cycles}")
    print(f"instrs    : {s.instructions}  (IPC {s.ipc:.4f})")
    print(f"inv/dg    : {s.coherence.invalidations}/{s.coherence.downgrades}")
    print(f"ward cov. : {s.coherence.ward_coverage:.2%}")
    print(f"energy    : {s.energy.processor_nj / 1e3:.1f} uJ "
          f"(network {s.energy.interconnect_nj / 1e3:.1f} uJ)")
    return 0


def _workload_matrix(name: str, config, size: str, seed: int) -> int:
    """Engine-vs-replay bit-identity for one workload across the zoo.

    Returns 0 when every registered protocol produces bit-identical
    RunStats on both paths, 1 on any divergence.
    """
    from repro.analysis.conformance import stats_digest
    from repro.replay import record_benchmark, replay_trace

    failures = 0
    print(f"{'protocol':<10} {'cycles':>10} {'inv':>8} {'dg':>8}  engine=replay")
    for protocol in available_protocols():
        engine = run_benchmark(
            name, protocol, config, size=size, seed=seed,
            use_cache=False, use_disk_cache=False,
        )
        trace, _ = record_benchmark(
            name, protocol, config, size=size, seed=seed
        )
        replayed = replay_trace(trace, config)
        identical = stats_digest(engine.stats) == stats_digest(replayed.stats)
        failures += 0 if identical else 1
        s = engine.stats
        print(f"{protocol:<10} {s.cycles:>10} {s.coherence.invalidations:>8} "
              f"{s.coherence.downgrades:>8}  "
              f"{'ok' if identical else 'DIVERGED'}")
    if failures:
        print(f"ingest: {failures} protocol(s) diverged between engine and "
              "replay", file=sys.stderr)
    return 1 if failures else 0


def cmd_ingest(args) -> int:
    """Parse an external text trace; optionally run it through the zoo."""
    from repro.workloads import load_trace_file

    trace = load_trace_file(args.trace)
    loads, stores, rmws = trace.counts()
    blocks, shared = trace.footprint()
    print(f"trace     : {args.trace}")
    print(f"ops       : {len(trace)} ({loads} loads, {stores} stores, "
          f"{rmws} rmws)")
    print(f"threads   : {len(trace.threads())}")
    print(f"footprint : {blocks} blocks ({shared} shared between threads)")
    print(f"checksum  : {trace.checksum():#x}")
    if args.matrix:
        return _workload_matrix(
            f"trace:{args.trace}", _machine_config(args), "test", args.seed
        )
    if args.run:
        result = run_benchmark(
            f"trace:{args.trace}", args.protocol, _machine_config(args),
            size="test", seed=args.seed,
            use_cache=False, use_disk_cache=False,
        )
        s = result.stats
        print(f"protocol  : {result.protocol}")
        print(f"cycles    : {s.cycles}")
        print(f"instrs    : {s.instructions}  (IPC {s.ipc:.4f})")
        print(f"inv/dg    : {s.coherence.invalidations}/"
              f"{s.coherence.downgrades}")
    return 0


def _parse_knob(text: str):
    """One ``--set name=value`` override (int, then float, else error)."""
    from repro.common.errors import ConfigError

    name, sep, value = text.partition("=")
    if not sep or not name:
        raise ConfigError(f"--set expects name=value, got {text!r}")
    for caster in (int, float):
        try:
            return name, caster(value)
        except ValueError:
            continue
    raise ConfigError(f"--set {name}: {value!r} is not a number")


def cmd_synth(args) -> int:
    """Generate a seeded synthetic workload trace; optionally verify it."""
    from repro.workloads import make_trace

    knobs = dict(_parse_knob(item) for item in args.set or [])
    trace = make_trace(args.kind, seed=args.seed, ops_per_thread=args.ops,
                       **knobs)
    loads, stores, rmws = trace.counts()
    blocks, shared = trace.footprint()
    if args.out == "-":
        sys.stdout.write(trace.to_text())
        return 0
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(trace.to_text())
    print(f"workload  : {trace.name} (seed {args.seed})")
    print(f"ops       : {len(trace)} ({loads} loads, {stores} stores, "
          f"{rmws} rmws)")
    print(f"threads   : {len(trace.threads())}")
    print(f"footprint : {blocks} blocks ({shared} shared between threads)")
    print(f"trace     : {args.out}")
    if args.matrix:
        return _workload_matrix(
            f"trace:{args.out}", _machine_config(args), "test", args.seed
        )
    return 0


def cmd_verify(args) -> int:
    """Differential conformance + race detection (exit 1 on violation)."""
    _configure_disk_cache(args)
    config = _machine_config(args)
    if args.all:
        # Paper kernels plus the golden-pinned synthetic workloads — the
        # same cell set scripts/update_golden.py digests.
        from repro.workloads import GOLDEN_SYNTH

        names = list(PAPER_ORDER) + list(GOLDEN_SYNTH)
    elif getattr(args, "workload", None):
        names = [args.workload]
    else:
        names = [args.benchmark]
    report = _robustness_report(args)

    try:
        conformance = run_verify(
            names,
            config,
            size=args.size,
            seed=args.seed,
            protocol=args.protocol,
            baseline=args.baseline,
            jobs=args.jobs,
            check_oracle=not args.no_oracle,
            timeout=args.timeout,
            retries=args.retries,
            resume=args.resume,
            report=report,
        )
    except ReproError as exc:
        # Operational failure (injected fault, broken pool, timeout budget
        # exhausted...) — distinct from a conformance violation (exit 1).
        print(f"verify: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = conformance.to_dict()
        if report is not None and not report.clean:
            payload["robustness"] = report.to_dict()
        print(json.dumps(payload, sort_keys=True))
    else:
        print(f"conformance: {len(names)} benchmark(s), "
              f"{args.protocol} vs baseline {args.baseline}, "
              f"size {args.size}, machine {conformance.machine}, "
              f"seed {args.seed}")
        for r in conformance.results:
            verdict = "PASS" if r.passed else "FAIL"
            print(f"  {r.benchmark:<14} {verdict}  races={r.races} "
                  f"benign_waws={r.benign_waws} "
                  f"oracle_regions={r.oracle_regions} "
                  f"checked={r.detector.get('checked_accesses', 0)}")
            for failure in r.failures:
                print(f"    - {failure}")
        _print_robustness(report)
        print("verify: " + ("all benchmarks conform"
                            if conformance.passed else "VIOLATIONS FOUND"))
    return 0 if conformance.passed else 1


def cmd_area(_args) -> int:
    cfg = dual_socket()
    print(f"byte-sectoring area overhead : {sectoring_area_overhead():.1%} "
          "(paper: 7.9%)")
    print(f"1024-region CAM area overhead: {region_cam_area_overhead(cfg):.4%} "
          "(paper: <0.05%)")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _add_cache_args(parser) -> None:
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="do not read or write the persistent result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="persistent cache directory (default: %(default)s)")


def _add_robust_args(parser) -> None:
    """Robustness knobs shared by ``figure`` and ``bench`` (see pool.py)."""
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-task timeout; a hung simulation is killed "
                             "and retried in a fresh worker")
    parser.add_argument("--retries", type=_nonnegative_int, default=0,
                        metavar="N",
                        help="retry a failed or timed-out task up to N times "
                             "(exponential backoff, seeded jitter)")
    parser.add_argument("--resume", action="store_true",
                        help="checkpoint completed tasks to a journal under "
                             "the cache dir and resume an interrupted run "
                             "from it")


def _workload_name(text: str) -> str:
    """Argparse type for any runnable name: kernel, synth-*, trace:<path>.

    Membership of the static registries is checked here (argparse exit 2
    with the available names); ``trace:`` paths are validated at
    resolution time so the diagnostic can name the offending line.
    """
    from repro.workloads import TRACE_PREFIX, workload_names

    if text in BENCHMARKS or text in workload_names() \
            or text.startswith(TRACE_PREFIX):
        return text
    raise argparse.ArgumentTypeError(
        f"unknown benchmark or workload {text!r}; choose from "
        f"{sorted(BENCHMARKS) + workload_names()} or '{TRACE_PREFIX}<path>'"
    )


def _add_bench_args(
    parser, default_protocol: str = "warden", optional_benchmark: bool = False
) -> None:
    kwargs = {"nargs": "?", "default": None} if optional_benchmark else {}
    parser.add_argument(
        "benchmark", type=_workload_name, metavar="BENCHMARK",
        help="a paper kernel, a synth-* workload, or trace:<path>",
        **kwargs,
    )
    parser.add_argument("--protocol", default=default_protocol,
                        choices=available_protocols())
    parser.add_argument("--size", default="default",
                        choices=("test", "small", "default"))
    parser.add_argument("--machine", default="dual",
                        choices=sorted(MACHINES),
                        help="machine preset (default: dual-socket Table 2)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="warden-repro",
        description="Reproduce the tables and figures of the WARDen paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("specs", help="print Table 2").set_defaults(func=cmd_specs)

    p1 = sub.add_parser("table1", help="run the ping-pong validation")
    p1.add_argument("--iterations", type=int, default=300)
    p1.set_defaults(func=cmd_table1)

    pf = sub.add_parser("figure", help="regenerate one figure")
    pf.add_argument("figure", choices=FIGURES)
    pf.add_argument("--size", default="default",
                    choices=("test", "small", "default"))
    pf.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON instead of the table")
    pf.add_argument("--jobs", type=_positive_int, default=1,
                    help="run the (protocol x seed) matrix over N processes")
    _add_cache_args(pf)
    _add_robust_args(pf)
    pf.set_defaults(func=cmd_figure)

    pr = sub.add_parser("run", help="run one benchmark or workload")
    _add_bench_args(pr, optional_benchmark=True)
    pr.add_argument("--workload", type=_workload_name, default=None,
                    help="workload to run (synth-* or trace:<path>); "
                         "alternative spelling of the positional name")
    pr.add_argument("--json", action="store_true",
                    help="emit a JSONL run manifest instead of text")
    _add_cache_args(pr)
    pr.set_defaults(func=cmd_run)

    pb = sub.add_parser(
        "bench",
        help="time the simulator itself; emit a BENCH_*.json throughput report",
    )
    pb.add_argument("--quick", action="store_true",
                    help="CI smoke suite (seconds) instead of the full suite")
    pb.add_argument("--repeats", type=_positive_int, default=1,
                    help="time each row N times, keep the fastest")
    pb.add_argument("--out", default="BENCH_latest.json",
                    help="report output path (default: %(default)s)")
    pb.add_argument("--baseline", default=None,
                    help="compare against a committed BENCH_*.json; exit 1 "
                         "when steps/second regresses past --max-regress "
                         "(default: newest committed same-mode report)")
    pb.add_argument("--no-baseline", action="store_true",
                    help="skip the baseline comparison entirely")
    pb.add_argument("--replay", action="store_true",
                    help="time the vectorized replay kernel instead of the "
                         "interpreted engine (records each trace untimed "
                         "first)")
    pb.add_argument("--max-regress", type=float, default=0.30,
                    help="tolerated fractional throughput drop "
                         "(default: %(default)s)")
    pb.add_argument("--profile", action="store_true",
                    help="wrap the suite in cProfile and print the hottest "
                         "functions (for hunting simulator hot spots)")
    pb.add_argument("--profile-top", type=_positive_int, default=25,
                    help="number of functions to show with --profile "
                         "(default: %(default)s)")
    pb.add_argument("--workload", type=_workload_name, action="append",
                    default=None, metavar="NAME",
                    help="append a workload row (synth-* or trace:<path>, "
                         "timed at the test size) to the suite; repeatable")
    _add_robust_args(pb)
    pb.set_defaults(func=cmd_bench)

    pt = sub.add_parser(
        "trace", help="record a coherence event trace (Chrome trace JSON)"
    )
    _add_bench_args(pt)
    pt.add_argument("--out", default="trace.json",
                    help="output path for the Chrome trace (default: %(default)s)")
    pt.add_argument("--capacity", type=_positive_int, default=1_000_000,
                    help="ring-buffer capacity in events (default: %(default)s)")
    pt.add_argument("--sample", type=_positive_int, default=1,
                    help="keep every N-th event (default: record everything)")
    pt.set_defaults(func=cmd_trace)

    pp = sub.add_parser(
        "profile", help="run with collectors and print a profile summary"
    )
    _add_bench_args(pp)
    pp.add_argument("--capacity", type=_positive_int, default=1_000_000,
                    help="flame-summary ring-buffer capacity (default: %(default)s)")
    pp.add_argument("--bin-cycles", type=_positive_int, default=100_000,
                    help="phase-histogram bin width in cycles (default: %(default)s)")
    pp.set_defaults(func=cmd_profile)

    prc = sub.add_parser(
        "record",
        help="record one benchmark's protocol-event trace (replayable via "
             "'replay'; stored under the fingerprinted trace store)",
    )
    _add_bench_args(prc)
    prc.add_argument("--seed", type=int, default=42,
                     help="scheduler seed (default: %(default)s)")
    prc.add_argument("--trace-dir", default=None,
                     help="trace store directory (default: "
                          f"{DEFAULT_CACHE_DIR}/traces)")
    prc.set_defaults(func=cmd_record)

    prp = sub.add_parser(
        "replay",
        help="replay one benchmark through the vectorized kernel "
             "(bit-identical stats; records the trace on first use)",
    )
    _add_bench_args(prp, optional_benchmark=True)
    prp.add_argument("--seed", type=int, default=42,
                     help="scheduler seed (default: %(default)s)")
    prp.add_argument("--trace-dir", default=None,
                     help="trace store directory (default: "
                          f"{DEFAULT_CACHE_DIR}/traces)")
    prp.add_argument("--trace", default=None, metavar="FILE",
                     help="replay a raw .wtrace file instead of a named "
                          "benchmark (protocol comes from the trace meta)")
    prp.set_defaults(func=cmd_replay)

    pv = sub.add_parser(
        "verify",
        help="differential conformance: baseline vs candidate protocol vs "
             "the value oracle, plus happens-before race detection "
             "(exit 1 on violation)",
    )
    which = pv.add_mutually_exclusive_group(required=True)
    which.add_argument("--all", action="store_true",
                       help="verify every paper benchmark plus the "
                            "golden-pinned synthetic workloads")
    which.add_argument("--benchmark", choices=sorted(BENCHMARKS),
                       help="verify a single benchmark")
    which.add_argument("--workload", type=_workload_name, metavar="NAME",
                       help="verify a workload (synth-* or trace:<path>)")
    pv.add_argument("--protocol", default="warden",
                    choices=available_protocols(),
                    help="candidate protocol: the race-detector/oracle leg "
                         "runs under it and the differential leg diffs it "
                         "against --baseline (default: %(default)s)")
    pv.add_argument("--baseline", default="mesi",
                    choices=available_protocols(),
                    help="reference protocol of the differential leg "
                         "(default: %(default)s)")
    pv.add_argument("--size", default="test",
                    choices=("test", "small", "default"),
                    help="workload size (default: %(default)s)")
    pv.add_argument("--machine", default="dual", choices=sorted(MACHINES),
                    help="machine preset (default: dual-socket Table 2)")
    pv.add_argument("--seed", type=int, default=42,
                    help="scheduler seed (default: %(default)s)")
    pv.add_argument("--json", action="store_true",
                    help="emit the machine-readable conformance report")
    pv.add_argument("--jobs", type=_positive_int, default=1,
                    help="fan the differential runs over N processes")
    pv.add_argument("--no-oracle", action="store_true",
                    help="skip the value-level WardMemoryModel replay leg")
    _add_cache_args(pv)
    _add_robust_args(pv)
    pv.set_defaults(func=cmd_verify)

    pi = sub.add_parser(
        "ingest",
        help="parse an external text memory trace ('thread op address "
             "[size]' lines) and optionally run it through the protocol zoo",
    )
    pi.add_argument("trace", help="path to the text trace file")
    pi.add_argument("--protocol", default="warden",
                    choices=available_protocols())
    pi.add_argument("--machine", default="dual", choices=sorted(MACHINES),
                    help="machine preset (default: dual-socket Table 2)")
    pi.add_argument("--seed", type=int, default=42,
                    help="scheduler seed (default: %(default)s)")
    pi.add_argument("--run", action="store_true",
                    help="simulate the trace under --protocol after parsing")
    pi.add_argument("--matrix", action="store_true",
                    help="run under every registered protocol on both the "
                         "engine and replay paths; exit 1 on any "
                         "engine-vs-replay stats divergence")
    pi.set_defaults(func=cmd_ingest)

    ps = sub.add_parser(
        "synth",
        help="generate a seeded synthetic service workload as a text trace "
             "(runnable via 'ingest', 'run --workload trace:<path>', ...)",
    )
    from repro.workloads import GENERATORS as _GENERATORS

    ps.add_argument("kind", choices=sorted(_GENERATORS),
                    help="traffic shape to generate")
    ps.add_argument("--seed", type=int, default=42,
                    help="generator seed (default: %(default)s)")
    ps.add_argument("--ops", type=_positive_int, default=150,
                    metavar="N", help="ops per thread (default: %(default)s)")
    ps.add_argument("--set", action="append", metavar="KNOB=VALUE",
                    help="override a generator knob (e.g. skew=2.0, "
                         "threads=16); repeatable")
    ps.add_argument("--out", default=None, metavar="FILE",
                    help="output path (default: <kind>.trace; '-' for stdout)")
    ps.add_argument("--machine", default="dual", choices=sorted(MACHINES),
                    help="machine preset for --matrix (default: dual)")
    ps.add_argument("--matrix", action="store_true",
                    help="after writing, run the trace under every "
                         "registered protocol on both engine and replay "
                         "paths; exit 1 on divergence")
    ps.set_defaults(func=cmd_synth)

    sub.add_parser("area", help="§6.1 area estimates").set_defaults(func=cmd_area)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "out", None) is None and args.command == "synth":
        args.out = f"{args.kind}.trace"
    try:
        return args.func(args)
    except ReproError as exc:
        # Operational failure (malformed trace file, unknown protocol or
        # workload, unreadable store...) — never a traceback.
        print(f"{args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
