"""Command-line interface: regenerate the paper's tables and figures.

Usage (after ``pip install -e .``)::

    warden-repro specs                      # Table 2
    warden-repro table1                     # Sniper-validation ping-pong
    warden-repro figure fig7 [--size small] # single-socket speedup/energy
    warden-repro figure fig8                # dual socket
    warden-repro figure fig9|fig10|fig11    # dual-socket analysis figures
    warden-repro figure fig12               # disaggregated
    warden-repro run primes --protocol warden
    warden-repro area                       # §6.1 CACTI estimates
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import compare_multi
from repro.analysis.run import run_benchmark, run_pairs
from repro.analysis.tables import (
    figure9,
    figure10,
    figure11,
    speedup_energy_figure,
    table1,
    table2,
)
from repro.bench import BENCHMARKS, DISAGGREGATED_SUBSET, PAPER_ORDER
from repro.bench.microbench import run_table1
from repro.common.config import disaggregated, dual_socket, single_socket
from repro.energy.cacti import region_cam_area_overhead, sectoring_area_overhead

FIGURES = ("fig7", "fig8", "fig9", "fig10", "fig11", "fig12")


def _metrics_for(config, names: List[str], size: str):
    return [
        compare_multi(run_pairs(name, config, size=size)) for name in names
    ]


def cmd_specs(_args) -> int:
    print(table2(dual_socket()))
    return 0


def cmd_table1(args) -> int:
    print(table1(run_table1(iterations=args.iterations)))
    return 0


def cmd_figure(args) -> int:
    size = args.size
    if args.figure == "fig7":
        metrics = _metrics_for(single_socket(), PAPER_ORDER, size)
        print(speedup_energy_figure(
            metrics, "Figure 7: performance and energy gains on single socket"
        ))
    elif args.figure == "fig8":
        metrics = _metrics_for(dual_socket(), PAPER_ORDER, size)
        print(speedup_energy_figure(
            metrics, "Figure 8: performance and energy gains on dual socket"
        ))
    elif args.figure in ("fig9", "fig10", "fig11"):
        metrics = _metrics_for(dual_socket(), PAPER_ORDER, size)
        renderer = {"fig9": figure9, "fig10": figure10, "fig11": figure11}
        print(renderer[args.figure](metrics))
    elif args.figure == "fig12":
        metrics = _metrics_for(disaggregated(), DISAGGREGATED_SUBSET, size)
        print(speedup_energy_figure(
            metrics, "Figure 12: performance and energy gains on disaggregated"
        ))
    else:
        print(f"unknown figure {args.figure}; choose from {FIGURES}",
              file=sys.stderr)
        return 2
    return 0


def cmd_run(args) -> int:
    result = run_benchmark(
        args.benchmark,
        args.protocol,
        dual_socket(),
        size=args.size,
        check_ward=args.protocol == "warden",
    )
    s = result.stats
    print(f"benchmark : {result.benchmark} ({args.size})")
    print(f"protocol  : {result.protocol}")
    print(f"cycles    : {s.cycles}")
    print(f"instrs    : {s.instructions}  (IPC {s.ipc:.4f})")
    print(f"inv/dg    : {s.coherence.invalidations}/{s.coherence.downgrades}")
    print(f"ward cov. : {s.coherence.ward_coverage:.2%}")
    print(f"energy    : {s.energy.processor_nj / 1e3:.1f} uJ "
          f"(network {s.energy.interconnect_nj / 1e3:.1f} uJ)")
    return 0


def cmd_area(_args) -> int:
    cfg = dual_socket()
    print(f"byte-sectoring area overhead : {sectoring_area_overhead():.1%} "
          "(paper: 7.9%)")
    print(f"1024-region CAM area overhead: {region_cam_area_overhead(cfg):.4%} "
          "(paper: <0.05%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="warden-repro",
        description="Reproduce the tables and figures of the WARDen paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("specs", help="print Table 2").set_defaults(func=cmd_specs)

    p1 = sub.add_parser("table1", help="run the ping-pong validation")
    p1.add_argument("--iterations", type=int, default=300)
    p1.set_defaults(func=cmd_table1)

    pf = sub.add_parser("figure", help="regenerate one figure")
    pf.add_argument("figure", choices=FIGURES)
    pf.add_argument("--size", default="default",
                    choices=("test", "small", "default"))
    pf.set_defaults(func=cmd_figure)

    pr = sub.add_parser("run", help="run one benchmark")
    pr.add_argument("benchmark", choices=sorted(BENCHMARKS))
    pr.add_argument("--protocol", default="warden", choices=("mesi", "warden"))
    pr.add_argument("--size", default="default",
                    choices=("test", "small", "default"))
    pr.set_defaults(func=cmd_run)

    sub.add_parser("area", help="§6.1 area estimates").set_defaults(func=cmd_area)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
