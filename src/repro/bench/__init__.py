"""The benchmark suite (PBBS stand-in, paper §7.1).

``BENCHMARKS`` maps benchmark name to its :class:`~repro.bench.common.Benchmark`
record.  The names match the paper's Figs. 7–12 exactly.
"""

from typing import Dict

from repro.bench import (
    dedup,
    dmm,
    fib,
    grep,
    make_array,
    msort,
    nn,
    nqueens,
    palindrome,
    primes,
    quickhull,
    ray,
    suffix_array,
    tokens,
)
from repro.bench.common import Benchmark

_MODULES = (
    dedup,
    dmm,
    fib,
    grep,
    make_array,
    msort,
    nn,
    nqueens,
    palindrome,
    primes,
    quickhull,
    ray,
    suffix_array,
    tokens,
)

BENCHMARKS: Dict[str, Benchmark] = {
    module.BENCHMARK.name: module.BENCHMARK for module in _MODULES
}

#: the paper's benchmark order in Figs. 7-11
PAPER_ORDER = [
    "dedup",
    "dmm",
    "fib",
    "grep",
    "make_array",
    "msort",
    "nn",
    "nqueens",
    "palindrome",
    "primes",
    "quickhull",
    "ray",
    "suffix-array",
    "tokens",
]

#: the subset evaluated on the disaggregated machine (Fig. 12)
DISAGGREGATED_SUBSET = ["dmm", "grep", "nn", "palindrome"]

assert sorted(BENCHMARKS) == sorted(PAPER_ORDER)


def get_benchmark(name: str) -> Benchmark:
    """Resolve any runnable workload name to its :class:`Benchmark`.

    Paper kernels come from ``BENCHMARKS``; registered synthetic
    workloads (``synth-*``) and external traces (``trace:<path>``)
    resolve through :mod:`repro.workloads` (imported lazily — the
    adapter depends on ``repro.bench.common``).  Unknown names raise
    :class:`~repro.common.errors.ConfigError`.
    """
    bench = BENCHMARKS.get(name)
    if bench is not None:
        return bench
    from repro.workloads import resolve_workload

    return resolve_workload(name)


def runnable_names():
    """Every statically-known workload name: paper kernels + synthetics.

    (``trace:<path>`` names are resolvable too but not enumerable.)
    """
    from repro.workloads import workload_names

    return sorted(BENCHMARKS) + workload_names()


__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "DISAGGREGATED_SUBSET",
    "PAPER_ORDER",
    "get_benchmark",
    "runnable_names",
]
