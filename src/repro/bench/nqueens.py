"""``nqueens`` — count all N-queens placements by parallel backtracking.

Fork-heavy search with small board state handed to children at every fork
(the closure handoff path); minimal heap data.
"""

from __future__ import annotations

from typing import Tuple

from repro.bench.common import Benchmark
from repro.sim.ops import ComputeOp

PAR_DEPTH = 3


def _safe(cols: Tuple[int, ...], col: int) -> bool:
    row = len(cols)
    for r, c in enumerate(cols):
        if c == col or abs(c - col) == row - r:
            return False
    return True


def _count_seq(n: int, cols: Tuple[int, ...]) -> Tuple[int, int]:
    """Returns (solutions, nodes visited) below this partial placement."""
    if len(cols) == n:
        return 1, 1
    total, nodes = 0, 1
    for col in range(n):
        if _safe(cols, col):
            sols, sub = _count_seq(n, cols + (col,))
            total += sols
            nodes += sub
    return total, nodes


def queens_task(ctx, n: int, cols: Tuple[int, ...]):
    if len(cols) == n:
        yield ComputeOp(1)
        return 1
    if len(cols) >= PAR_DEPTH:
        yield ComputeOp(2 * len(cols))
        sols, nodes = _count_seq(n, cols)
        yield ComputeOp(3 * nodes)
        return sols
    candidates = [col for col in range(n) if _safe(cols, col)]
    yield ComputeOp(2 * n)
    if not candidates:
        return 0
    results = yield from ctx.par(
        *[
            (lambda col: lambda c: queens_task(c, n, cols + (col,)))(col)
            for col in candidates
        ]
    )
    yield ComputeOp(len(results))
    return sum(results)


def build(rng, scale: int) -> int:
    return scale


def root_task(ctx, n: int):
    count = yield from queens_task(ctx, n, ())
    return count


def reference(n: int) -> int:
    return _count_seq(n, ())[0]


BENCHMARK = Benchmark(
    name="nqueens",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 5, "small": 6, "default": 7},
    description="N-queens counting via parallel backtracking",
)
