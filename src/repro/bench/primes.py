"""``primes`` — the recursive prime sieve of the paper's Fig. 4.

The flags array carries benign write-write races: several threads mark the
same composite index, always storing the same value (False).  The marking
phase runs under a library write-phase (``ward_begin``/``ward_end``), the
runtime-internal mechanism behind inject-style primitives — exactly the
"flags is a WARD region" property of §3.3.
"""

from __future__ import annotations

import math

from repro.bench.common import Benchmark
from repro.sim.ops import StoreBatchOp


def sieve_task(ctx, n: int):
    """Return the flags array for primality up to ``n`` (paper Fig. 4)."""
    flags = yield from ctx.tabulate_batch(
        n + 1, lambda i: True, grain=64, elem_size=1, name="flags"
    )
    yield from flags.set(0, False)
    if n >= 1:
        yield from flags.set(1, False)
    if n >= 4:
        root = math.isqrt(n)
        sqrtflags = yield from sieve_task(ctx, root)
        phase = ctx.ward_begin(flags)

        def mark_multiples(c, p):
            is_prime = yield from sqrtflags.get(p)
            if not is_prime:
                return
            # One strided batch per prime: the [ComputeOp(1), Store(p*m)]
            # pairs for m in [2, n//p] retire as a single fused op
            # (stream-identical to the per-multiple loop).
            yield StoreBatchOp(
                flags.addr(2 * p), p * flags.elem_size, n // p - 1,
                flags.elem_size, heap=flags.heap,
                instrs=1, compute_first=True,
            )
            for m in range(2, n // p + 1):
                flags.data[p * m] = False

        yield from ctx.parallel_for(2, root + 1, mark_multiples, grain=1)
        ctx.ward_end(phase)
    return flags


def build(rng, scale: int) -> int:
    return scale


def root_task(ctx, n: int):
    flags = yield from sieve_task(ctx, n)
    count = yield from ctx.reduce_array(
        flags, 0, n + 1, lambda a, b: int(a) + int(b), grain=64
    )
    return count


def reference(n: int) -> int:
    flags = [True] * (n + 1)
    flags[0] = False
    if n >= 1:
        flags[1] = False
    for p in range(2, math.isqrt(n) + 1):
        if flags[p]:
            for m in range(p * p, n + 1, p):
                flags[m] = False
    return sum(flags)


BENCHMARK = Benchmark(
    name="primes",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 100, "small": 600, "default": 2000},
    description="recursive prime sieve with benign WAW races (Fig. 4)",
)
