"""The true-sharing ping-pong microbenchmark of Fig. 6 / Table 1.

Two hardware threads alternately write a shared word, each spinning until
the other's value appears.  Run in the engine's pinned mode (no scheduler),
it measures raw coherence latency under three placements: same core,
different core same socket, different sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.config import MachineConfig, dual_socket, validation_machine
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.ops import LoadOp, StoreOp

#: the paper's Table 1 numbers (cycles per iteration)
PAPER_TABLE1 = {
    "same-core": {"real_hw": 8.738, "sniper": 11.21},
    "same-socket": {"real_hw": 479.68, "sniper": 286.01},
    "cross-socket": {"real_hw": 1163.23, "sniper": 1213.59},
}

SCENARIOS = ("same-core", "same-socket", "cross-socket")


class TimedCell:
    """A shared word whose cross-thread visibility honours store timing.

    Python-side state updates are instantaneous, but a TSO store only
    becomes architecturally visible once it drains from the store buffer
    and its coherence transaction completes.  The cell keeps (previous,
    current, visible_at) so a spinning reader observes the old value until
    the writer's store has actually landed in simulated time.
    """

    __slots__ = ("prev", "cur", "visible_at")

    def __init__(self, initial: int) -> None:
        self.prev = initial
        self.cur = initial
        self.visible_at = 0

    def write(self, value: int, visible_at: int) -> None:
        self.prev = self.cur
        self.cur = value
        self.visible_at = visible_at

    def read(self, now: int) -> int:
        return self.cur if now >= self.visible_at else self.prev


def pingpong_kernel(machine, buf_addr: int, cell: TimedCell, thread: int,
                    my_id: int, partner_id: int, iterations: int):
    """Fig. 6: ``while (buf != partnerID); buf = myID;`` repeated."""
    core = machine.cores[thread]
    for _ in range(iterations):
        while True:
            yield LoadOp(buf_addr, 8, spin=True)
            if cell.read(core.clock) == partner_id:
                break
        latency = yield StoreOp(buf_addr, 8)
        cell.write(my_id, core.clock + latency)


@dataclass
class PingPongResult:
    scenario: str
    cycles_per_iteration: float
    total_cycles: int
    iterations: int


def _threads_for(scenario: str, config: MachineConfig):
    if scenario == "same-core":
        return 0, 1
    if scenario == "same-socket":
        return 0, 1
    if scenario == "cross-socket":
        return 0, config.cores_per_socket  # first core of the second socket
    raise ValueError(f"unknown scenario {scenario!r}")


def config_for(scenario: str) -> MachineConfig:
    if scenario == "same-core":
        return validation_machine(same_core=True)
    return dual_socket()


def run_pingpong(
    scenario: str,
    iterations: int = 300,
    protocol: str = "mesi",
) -> PingPongResult:
    """Run one Table-1 scenario; returns measured cycles per iteration."""
    config = config_for(scenario)
    machine = Machine(config, protocol)
    engine = Engine(machine)
    buf_addr = machine.sbrk(64, 64)
    machine.place(buf_addr, 64, 0)  # the shared word lives on socket 0
    cell = TimedCell(1)  # thread 0 observes its partner's id first and starts
    t0, t1 = _threads_for(scenario, config)
    engine.pin(t0, pingpong_kernel(machine, buf_addr, cell, t0, 0, 1, iterations))
    engine.pin(t1, pingpong_kernel(machine, buf_addr, cell, t1, 1, 0, iterations))
    engine.run()
    total = max(machine.cores[t0].clock, machine.cores[t1].clock)
    return PingPongResult(
        scenario=scenario,
        cycles_per_iteration=total / iterations,
        total_cycles=total,
        iterations=iterations,
    )


def run_table1(iterations: int = 300) -> Dict[str, PingPongResult]:
    return {s: run_pingpong(s, iterations) for s in SCENARIOS}
