"""``nn`` — all-nearest-neighbour queries over a point set.

Every query task scans the (read-shared) reference points and writes its
nearest index into the output: computational geometry with broadcast reads.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp


def build(rng: random.Random, scale: int) -> Dict:
    nrefs = scale
    nqueries = max(scale // 3, 4)
    refs = [(rng.randrange(1024), rng.randrange(1024)) for _ in range(nrefs)]
    queries = [(rng.randrange(1024), rng.randrange(1024)) for _ in range(nqueries)]
    return {"refs": refs, "queries": queries}


def root_task(ctx, workload):
    refs = workload["refs"]
    queries = workload["queries"]
    rx = yield from input_array(ctx, [p[0] for p in refs], name="rx")
    ry = yield from input_array(ctx, [p[1] for p in refs], name="ry")
    qx = yield from input_array(ctx, [p[0] for p in queries], name="qx")
    qy = yield from input_array(ctx, [p[1] for p in queries], name="qy")

    def nearest(c, q):
        x = yield from qx.get(q)
        y = yield from qy.get(q)
        best, best_d = -1, None
        for r in range(len(refs)):
            px = yield from rx.get(r)
            py = yield from ry.get(r)
            yield ComputeOp(4)
            d = (px - x) * (px - x) + (py - y) * (py - y)
            if best_d is None or d < best_d:
                best, best_d = r, d
        return best

    out = yield from ctx.tabulate(len(queries), nearest, grain=2, name="nearest")
    checksum = yield from ctx.reduce(
        0, len(queries), lambda c, i: out.get(i), lambda a, b: a + b, grain=8
    )
    return out.to_list(), checksum


def reference(workload):
    refs, queries = workload["refs"], workload["queries"]
    out = []
    for (x, y) in queries:
        best, best_d = -1, None
        for r, (px, py) in enumerate(refs):
            d = (px - x) ** 2 + (py - y) ** 2
            if best_d is None or d < best_d:
                best, best_d = r, d
        out.append(best)
    return out, sum(out)


BENCHMARK = Benchmark(
    name="nn",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 24, "small": 80, "default": 160},
    description="nearest-neighbour queries with broadcast reference reads",
)
