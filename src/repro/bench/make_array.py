"""``make_array`` — allocate and initialise an array, nothing else.

Pure tabulate: all writes, no cross-thread reads.  The paper singles this
benchmark out as one where WARDen's tracking/reconciliation overhead shows
with minimal benefit (§7.2) — we keep it write-only on purpose.
"""

from __future__ import annotations

from repro.bench.common import Benchmark


def build(rng, scale: int) -> int:
    return scale


def root_task(ctx, n: int):
    # Host-computable body: coalesced tabulate ([ComputeOp(2), Store] per
    # element, one fused batch per leaf).
    arr = yield from ctx.tabulate_batch(
        n, lambda i: (i * 2654435761) & 0xFFFF, grain=64, name="made", instrs=2
    )
    # Checksum computed host-side: the benchmark itself is the initialisation.
    return sum(arr.data) & 0xFFFFFFFF


def reference(n: int) -> int:
    return sum((i * 2654435761) & 0xFFFF for i in range(n)) & 0xFFFFFFFF


BENCHMARK = Benchmark(
    name="make_array",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 256, "small": 2048, "default": 8192},
    description="array allocation + initialisation (write-only tabulate)",
)
