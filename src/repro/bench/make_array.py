"""``make_array`` — allocate and initialise an array, nothing else.

Pure tabulate: all writes, no cross-thread reads.  The paper singles this
benchmark out as one where WARDen's tracking/reconciliation overhead shows
with minimal benefit (§7.2) — we keep it write-only on purpose.
"""

from __future__ import annotations

from repro.bench.common import Benchmark
from repro.sim.ops import ComputeOp


def build(rng, scale: int) -> int:
    return scale


def root_task(ctx, n: int):
    def body(c, i):
        yield ComputeOp(2)
        return (i * 2654435761) & 0xFFFF

    arr = yield from ctx.tabulate(n, body, grain=64, name="made")
    # Checksum computed host-side: the benchmark itself is the initialisation.
    return sum(arr.data) & 0xFFFFFFFF


def reference(n: int) -> int:
    return sum((i * 2654435761) & 0xFFFF for i in range(n)) & 0xFFFFFFFF


BENCHMARK = Benchmark(
    name="make_array",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 256, "small": 2048, "default": 8192},
    description="array allocation + initialisation (write-only tabulate)",
)
