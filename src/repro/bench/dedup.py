"""``dedup`` — remove duplicate records (sort-based deduplication).

Sort, mark first occurrences, pack: reuses the msort kernel plus the
flag/pack combinators.  The paper finds dedup among the least accelerated
benchmarks (Fig. 8) — most of its time is the sort's compute.
"""

from __future__ import annotations

import random
from typing import List

from repro.bench.common import Benchmark, input_array
from repro.bench.msort import sort_task
from repro.sim.ops import ComputeOp


def build(rng: random.Random, scale: int) -> List[int]:
    # ~4x duplication factor
    universe = max(scale // 4, 4)
    return [rng.randrange(universe) for _ in range(scale)]


def root_task(ctx, values: List[int]):
    src = yield from input_array(ctx, values, name="input")
    sorted_arr = yield from sort_task(ctx, src, 0, len(src))

    def first_occurrence(c, i):
        value = yield from sorted_arr.get(i)
        if i == 0:
            return value
        prev = yield from sorted_arr.get(i - 1)
        yield ComputeOp(1)
        return value if value != prev else -1

    marked = yield from ctx.tabulate(
        len(sorted_arr), first_occurrence, grain=32, name="marked"
    )
    unique = yield from ctx.filter_array(marked, lambda v: v >= 0, grain=32)
    return unique.to_list()


def reference(values: List[int]) -> List[int]:
    return sorted(set(values))


BENCHMARK = Benchmark(
    name="dedup",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 80, "small": 400, "default": 1200},
    description="sort-based duplicate removal",
)
