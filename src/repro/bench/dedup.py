"""``dedup`` — remove duplicate records (sort-based deduplication).

Sort, mark first occurrences, pack: reuses the msort kernel plus the
flag/pack combinators.  The paper finds dedup among the least accelerated
benchmarks (Fig. 8) — most of its time is the sort's compute.
"""

from __future__ import annotations

import random
from typing import List

from repro.bench.common import Benchmark, input_array
from repro.bench.msort import sort_task
from repro.sim.ops import ComputeOp


def build(rng: random.Random, scale: int) -> List[int]:
    # ~4x duplication factor
    universe = max(scale // 4, 4)
    return [rng.randrange(universe) for _ in range(scale)]


def root_task(ctx, values: List[int]):
    src = yield from input_array(ctx, values, name="input")
    sorted_arr = yield from sort_task(ctx, src, 0, len(src))

    # out[i] = sorted[i] if it differs from its left neighbour (coalesced
    # [Load(i), Load(i-1), Compute, Store] gather; element 0 has no
    # neighbour and keeps its original scalar [Load, Store] stream).
    def first_elem(c, i):
        value = yield from sorted_arr.get(i)
        return value

    marked = yield from ctx.tabulate_gather(
        len(sorted_arr), [sorted_arr, (sorted_arr, -1)],
        lambda i, value, prev: value if value != prev else -1,
        grain=32, name="marked", instrs=1, dense_lo=1, edge_body=first_elem,
    )
    unique = yield from ctx.filter_array(marked, lambda v: v >= 0, grain=32)
    return unique.to_list()


def reference(values: List[int]) -> List[int]:
    return sorted(set(values))


BENCHMARK = Benchmark(
    name="dedup",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 80, "small": 400, "default": 1200},
    description="sort-based duplicate removal",
)
