"""``grep`` — find every occurrence of a pattern in a text.

Read-shared input text, per-position match flags written by many tasks,
then a pack (filter) of the matching positions: text processing with a
read-mostly sharing pattern.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp

ALPHABET = "abcd"
PATTERN = "abca"


def build(rng: random.Random, scale: int) -> Dict:
    text = "".join(rng.choice(ALPHABET) for _ in range(scale))
    return {"text": text, "pattern": PATTERN}


def root_task(ctx, workload):
    text = workload["text"]
    pattern = workload["pattern"]
    n, m = len(text), len(pattern)
    chars = yield from input_array(ctx, [ord(ch) for ch in text], name="text")
    pat = yield from input_array(ctx, [ord(ch) for ch in pattern], name="pattern")

    def match_at(c, i):
        for j in range(m):
            tc = yield from chars.get(i + j)
            pc = yield from pat.get(j)
            yield ComputeOp(1)
            if tc != pc:
                return 0
        return 1

    flags = yield from ctx.tabulate(max(n - m + 1, 0), match_at, grain=32, name="hits")
    positions = yield from ctx.tabulate_batch(
        len(flags), lambda i: i, grain=64, name="idx"
    )

    # Pack the matching positions (filter over index/flag pairs); the dense
    # [Load(flag), Load(pos), Store] body coalesces into gather batches.
    marked = yield from ctx.tabulate_gather(
        len(flags), [flags, positions],
        lambda i, flag, pos: pos if flag else -1,
        grain=32, name="marked",
    )
    matches = yield from ctx.filter_array(marked, lambda v: v >= 0, grain=32)
    return matches.to_list()


def reference(workload) -> List[int]:
    text, pattern = workload["text"], workload["pattern"]
    out = []
    start = 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return out
        out.append(idx)
        start = idx + 1


BENCHMARK = Benchmark(
    name="grep",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 200, "small": 1200, "default": 4000},
    description="pattern search with pack of match positions",
)
