"""``suffix-array`` — suffix array construction by prefix doubling.

Each round builds composite keys (rank pairs), sorts them with the parallel
merge sort, and scatters new dense ranks through a write-phase: repeated
sort/scatter rounds over shared arrays.
"""

from __future__ import annotations

import random
from typing import List

from repro.bench.common import Benchmark, input_array, read_run
from repro.bench.msort import sort_task
from repro.sim.ops import ComputeOp


def suffix_array_task(ctx, chars, n: int):
    if n <= 1:
        yield ComputeOp(1)
        return list(range(n))
    rank = yield from ctx.tabulate_gather(
        n, [chars], lambda i, ch: ch, grain=32, name="rank0"
    )
    k = 1
    order = None
    while k < n:
        # key[i] = (rank[i], rank[i+k], i): a [Load, Load, Compute, Store]
        # gather for i < n-k; the tail has no i+k neighbour and keeps its
        # original scalar [Load, Compute, Store] stream.
        def tail_key(c, i):
            r1 = yield from rank.get(i)
            yield ComputeOp(1)
            return (r1, -1, i)

        keys = yield from ctx.tabulate_gather(
            n, [rank, (rank, k)],
            lambda i, r1, r2: (r1, r2, i),
            grain=32, name="keys", instrs=1, dense_hi=n - k,
            edge_body=tail_key,
        )
        order = yield from sort_task(ctx, keys, 0, n)

        # Dense re-ranking: sequential scan over the sorted keys (one
        # coalesced [Load, ComputeOp(1)]-per-key batch), then a parallel
        # scatter of the new ranks through a write-phase.
        keys_sorted = yield from read_run(order, 0, n, instrs=1)
        dense = []
        r = 0
        prev = None
        for key in keys_sorted:
            if prev is not None and (key[0], key[1]) != (prev[0], prev[1]):
                r += 1
            dense.append(r)
            prev = key

        newrank = yield from ctx.alloc_array(n, name="newrank")
        phase = ctx.ward_begin(newrank)

        def scatter(c, j):
            key = yield from order.get(j)
            yield from newrank.set(key[2], dense[j])

        yield from ctx.parallel_for(0, n, scatter, grain=32)
        ctx.ward_end(phase)
        rank = newrank
        if r == n - 1:
            break
        k *= 2

    final_keys = yield from read_run(order, 0, n)
    return [key[2] for key in final_keys]


def build(rng: random.Random, scale: int) -> str:
    return "".join(rng.choice("abab$") for _ in range(scale))


def root_task(ctx, text: str):
    n = len(text)
    chars = yield from input_array(ctx, [ord(ch) for ch in text], name="text")
    result = yield from suffix_array_task(ctx, chars, n)
    return result


def reference(text: str) -> List[int]:
    return sorted(range(len(text)), key=lambda i: text[i:])


BENCHMARK = Benchmark(
    name="suffix-array",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 32, "small": 96, "default": 224},
    description="suffix array via prefix doubling (sort + scatter rounds)",
)
