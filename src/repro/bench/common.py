"""Benchmark framework: the contract every PBBS-style kernel implements.

Also hosts the coalesced array-run helpers (:func:`read_run`,
:func:`write_run`): dense sequential loops over a :class:`SimArray` yield
one strided batch op instead of one scalar op per element.  The engine
expands a batch one micro-op per step, so the machine observes the exact
same address/compute stream as the element-by-element loop — only the
Python-side yield count and allocations drop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.sim.ops import LoadBatchOp, StoreBatchOp


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: deterministic input builder, HLPL kernel, reference.

    * ``build(rng, scale)`` returns a plain-Python workload object.
    * ``root_task(ctx, workload)`` is the fork-join kernel (generator).
    * ``reference(workload)`` computes the expected result in plain Python.
    * ``scales`` maps a named size ("test", "small", "default") to the
      integer scale passed to ``build`` — "test" keeps unit tests fast,
      "default" is what the figure harnesses run.
    """

    name: str
    build: Callable[[random.Random, int], Any]
    root_task: Callable
    reference: Callable[[Any], Any]
    scales: Dict[str, int] = field(default_factory=dict)
    description: str = ""

    def scale(self, size: str = "default") -> int:
        try:
            return self.scales[size]
        except KeyError:
            raise KeyError(
                f"benchmark {self.name} has no size {size!r}; "
                f"choose from {sorted(self.scales)}"
            ) from None

    def workload(self, size: str = "default", seed: int = 42) -> Any:
        return self.build(random.Random(seed), self.scale(size))


def input_array(ctx, values, elem_size: int = 8, name: str = "input"):
    """Materialise pre-loaded input data in the current task's heap.

    The values arrive without simulated stores, and the blocks are installed
    in the home LLC slices: the input loader has just written them, so the
    measured kernel starts LLC-warm (PBBS measures the algorithm, not input
    I/O).  Generator — use via ``yield from``.
    """
    arr = yield from ctx.alloc_array(len(values), elem_size, name=name)
    arr.data[:] = list(values)
    machine = ctx.rt.machine
    bs = machine.config.block_size
    thread = ctx.rt.current_thread
    from repro.common.types import block_range

    for block in block_range(arr.base, max(len(values), 1) * elem_size, bs):
        machine.llc_warm_fill(block, thread)
    return arr


def read_run(arr, lo: int, hi: int, instrs: int = 0) -> List[Any]:
    """Load ``arr[lo:hi)`` as one coalesced strided batch; return the values.

    With ``instrs`` each load is followed by that much local compute —
    stream-identical to ``for i: arr.get(i); yield ComputeOp(instrs)``.
    Generator — use via ``yield from``.
    """
    if not 0 <= lo <= hi <= arr.length:
        raise IndexError(
            f"run [{lo}, {hi}) out of range for {arr.name or 'array'}"
            f"[{arr.length}]"
        )
    n = hi - lo
    if n == 0:
        return []
    yield LoadBatchOp(
        arr.addr(lo), arr.elem_size, n, arr.elem_size,
        heap=arr.heap, instrs=instrs,
    )
    return arr.data[lo:hi]


def write_run(arr, lo: int, values, instrs: int = 0):
    """Store ``values`` into ``arr[lo:lo+len(values))`` as one batch.

    With ``instrs`` each store is *preceded* by that much compute — the
    tabulate write pattern ``yield ComputeOp(instrs); arr.set(i, v)``.
    Generator — use via ``yield from``.
    """
    values = list(values)
    n = len(values)
    if not 0 <= lo <= lo + n <= arr.length:
        raise IndexError(
            f"run [{lo}, {lo + n}) out of range for {arr.name or 'array'}"
            f"[{arr.length}]"
        )
    if n == 0:
        return
    yield StoreBatchOp(
        arr.addr(lo), arr.elem_size, n, arr.elem_size,
        heap=arr.heap, instrs=instrs, compute_first=True,
    )
    arr.data[lo:lo + n] = values
