"""Benchmark framework: the contract every PBBS-style kernel implements."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: deterministic input builder, HLPL kernel, reference.

    * ``build(rng, scale)`` returns a plain-Python workload object.
    * ``root_task(ctx, workload)`` is the fork-join kernel (generator).
    * ``reference(workload)`` computes the expected result in plain Python.
    * ``scales`` maps a named size ("test", "small", "default") to the
      integer scale passed to ``build`` — "test" keeps unit tests fast,
      "default" is what the figure harnesses run.
    """

    name: str
    build: Callable[[random.Random, int], Any]
    root_task: Callable
    reference: Callable[[Any], Any]
    scales: Dict[str, int] = field(default_factory=dict)
    description: str = ""

    def scale(self, size: str = "default") -> int:
        try:
            return self.scales[size]
        except KeyError:
            raise KeyError(
                f"benchmark {self.name} has no size {size!r}; "
                f"choose from {sorted(self.scales)}"
            ) from None

    def workload(self, size: str = "default", seed: int = 42) -> Any:
        return self.build(random.Random(seed), self.scale(size))


def input_array(ctx, values, elem_size: int = 8, name: str = "input"):
    """Materialise pre-loaded input data in the current task's heap.

    The values arrive without simulated stores, and the blocks are installed
    in the home LLC slices: the input loader has just written them, so the
    measured kernel starts LLC-warm (PBBS measures the algorithm, not input
    I/O).  Generator — use via ``yield from``.
    """
    arr = yield from ctx.alloc_array(len(values), elem_size, name=name)
    arr.data[:] = list(values)
    protocol = ctx.rt.machine.protocol
    bs = ctx.rt.machine.config.block_size
    from repro.common.types import block_range

    for block in block_range(arr.base, max(len(values), 1) * elem_size, bs):
        protocol._llc_fill(block)
    return arr
