"""``tokens`` — whitespace tokenisation of a text.

Boundary flags via tabulate, token count via reduce, token start offsets via
pack: the PBBS ``tokens`` shape.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp

WORDS = ["lorem", "ipsum", "dolor", "sit", "amet", "a", "be", "sea"]


def build(rng: random.Random, scale: int) -> Dict:
    text = " ".join(rng.choice(WORDS) for _ in range(scale))
    # sprinkle double spaces to exercise empty-token handling
    text = text.replace(" a ", "  a  ")
    return {"text": text}


def root_task(ctx, workload):
    text = workload["text"]
    n = len(text)
    chars = yield from input_array(ctx, [ord(ch) for ch in text], name="text")

    def is_start(c, i):
        ch = yield from chars.get(i)
        yield ComputeOp(1)
        if ch == 32:
            return 0
        if i == 0:
            return 1
        prev = yield from chars.get(i - 1)
        yield ComputeOp(1)
        return 1 if prev == 32 else 0

    starts = yield from ctx.tabulate(n, is_start, grain=32, name="starts")
    count = yield from ctx.reduce_array(
        starts, 0, n, lambda a, b: a + b, grain=64
    )

    # keep[i] = i where a token starts ([Load, Store] gather batches)
    marked = yield from ctx.tabulate_gather(
        n, [starts], lambda i, flag: i if flag else -1, grain=32, name="marked"
    )
    offsets = yield from ctx.filter_array(marked, lambda v: v >= 0, grain=32)
    return count, offsets.to_list()[:8]


def reference(workload):
    text = workload["text"]
    offsets = [
        i
        for i, ch in enumerate(text)
        if ch != " " and (i == 0 or text[i - 1] == " ")
    ]
    return len(offsets), offsets[:8]


BENCHMARK = Benchmark(
    name="tokens",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 40, "small": 250, "default": 800},
    description="whitespace tokenisation (flags + reduce + pack)",
)
