"""``quickhull`` — 2D convex hull by recursive partitioning.

Reduce (farthest point) + filter (partitions into fresh local arrays) +
par recursion: the allocation-and-pack-heavy computational-geometry shape.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp

Point = Tuple[int, int]


def _cross(o: Point, a: Point, b: Point) -> int:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _hull_side(ctx, pts, a: Point, b: Point):
    """Hull points strictly left of a->b, between a and b (exclusive of a,
    inclusive of nothing)."""
    if len(pts) == 0:
        return []

    def dist_leaf(c, i):
        p = yield from pts.get(i)
        yield ComputeOp(4)
        return (_cross(a, b, p), p)

    best = yield from ctx.reduce(0, len(pts), dist_leaf, max, grain=16)
    far = best[1]

    left = yield from ctx.filter_array(
        pts, lambda p: _cross(a, far, p) > 0, grain=16, name="left"
    )
    right = yield from ctx.filter_array(
        pts, lambda p: _cross(far, b, p) > 0, grain=16, name="right"
    )
    hull_left, hull_right = yield from ctx.par(
        lambda c: _hull_side(c, left, a, far),
        lambda c: _hull_side(c, right, far, b),
    )
    return hull_left + [far] + hull_right


def quickhull_task(ctx, pts):
    n = len(pts)

    def minmax_leaf(c, i):
        p = yield from pts.get(i)
        yield ComputeOp(2)
        return (p, p)

    lo, hi = yield from ctx.reduce(
        0,
        n,
        minmax_leaf,
        lambda u, v: (min(u[0], v[0]), max(u[1], v[1])),
        grain=16,
    )
    upper = yield from ctx.filter_array(
        pts, lambda p: _cross(lo, hi, p) > 0, grain=16, name="upper"
    )
    lower = yield from ctx.filter_array(
        pts, lambda p: _cross(hi, lo, p) > 0, grain=16, name="lower"
    )
    hull_up, hull_down = yield from ctx.par(
        lambda c: _hull_side(c, upper, lo, hi),
        lambda c: _hull_side(c, lower, hi, lo),
    )
    return [lo] + hull_up + [hi] + hull_down


def build(rng: random.Random, scale: int) -> List[Point]:
    return list(
        {(rng.randrange(-500, 500), rng.randrange(-500, 500)) for _ in range(scale)}
    )


def root_task(ctx, points: List[Point]):
    pts = yield from input_array(ctx, points, name="points")
    hull = yield from quickhull_task(ctx, pts)
    return sorted(hull)


def reference(points: List[Point]) -> List[Point]:
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    def half(iterable):
        out: List[Point] = []
        for p in iterable:
            while len(out) >= 2 and _cross(out[-2], out[-1], p) <= 0:
                out.pop()
            out.append(p)
        return out

    lower = half(pts)
    upper = half(reversed(pts))
    return sorted(lower[:-1] + upper[:-1])


BENCHMARK = Benchmark(
    name="quickhull",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 48, "small": 160, "default": 420},
    description="2D convex hull via recursive partitioning",
)
