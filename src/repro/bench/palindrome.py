"""``palindrome`` — longest palindromic substring by parallel center
expansion.

Every task reads the shared text around its center (heavily read-shared,
overlapping windows) and writes one radius: the read-dominant sharing mix
that makes this benchmark one of the paper's best performers (Figs. 8, 12).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp


def build(rng: random.Random, scale: int) -> Dict:
    # biased alphabet so palindromes actually occur
    text = "".join(rng.choice("aab") for _ in range(scale))
    return {"text": text}


def root_task(ctx, workload):
    text = workload["text"]
    n = len(text)
    chars = yield from input_array(ctx, [ord(ch) for ch in text], name="text")

    def radius_at(c, k):
        # odd centers at k//2 when k even, even centers between chars
        center2 = k  # center position in half-index units
        lo = (center2 - 1) // 2
        hi = (center2 + 2) // 2
        radius = 0
        while lo >= 0 and hi < n:
            a = yield from chars.get(lo)
            b = yield from chars.get(hi)
            yield ComputeOp(1)
            if a != b:
                break
            radius = hi - lo + 1
            lo -= 1
            hi += 1
        return radius

    radii = yield from ctx.tabulate(2 * n - 1, radius_at, grain=16, name="radii")
    best = yield from ctx.reduce(
        0, 2 * n - 1, lambda c, i: radii.get(i), max, grain=64
    )
    return best


def reference(workload) -> int:
    text = workload["text"]
    n = len(text)
    best = 0
    for k in range(2 * n - 1):
        lo = (k - 1) // 2
        hi = (k + 2) // 2
        length = 0
        while lo >= 0 and hi < n and text[lo] == text[hi]:
            length = hi - lo + 1
            lo -= 1
            hi += 1
        best = max(best, length)
    return best


BENCHMARK = Benchmark(
    name="palindrome",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 64, "small": 350, "default": 1100},
    description="longest palindromic substring via parallel center expansion",
)
