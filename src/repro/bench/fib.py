"""``fib`` — recursive Fibonacci, the classic fork-join stress test.

Compute-bound and allocation-light: it measures pure fork/join overhead
(closure handoff, join counters, steals).  The paper finds fib gains little
because only 2.65% of its avoided coherence events are downgrades (Fig. 10).
"""

from __future__ import annotations

from repro.bench.common import Benchmark
from repro.sim.ops import ComputeOp

SEQUENTIAL_CUTOFF = 5


def fib_seq(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def fib_task(ctx, n: int):
    if n < 2:
        yield ComputeOp(1)
        return n
    if n <= SEQUENTIAL_CUTOFF:
        yield ComputeOp(3 * n)
        return fib_seq(n)
    left, right = yield from ctx.par(
        lambda c: fib_task(c, n - 1),
        lambda c: fib_task(c, n - 2),
    )
    yield ComputeOp(1)
    return left + right


def build(rng, scale: int) -> int:
    return scale


def root_task(ctx, n: int):
    result = yield from fib_task(ctx, n)
    return result


def reference(n: int) -> int:
    return fib_seq(n)


BENCHMARK = Benchmark(
    name="fib",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 8, "small": 11, "default": 13},
    description="recursive Fibonacci (fork/join overhead stress)",
)
