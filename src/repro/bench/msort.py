"""``msort`` — functional parallel merge sort.

Allocation-heavy in the MPL style: every recursion level produces fresh
arrays in the task's own heap (all WARD while the leaf lives), and merges
read the children's freshly-merged heaps — the fork/join handoff pattern of
§5.3 end to end.
"""

from __future__ import annotations

import random
from typing import List

from repro.bench.common import Benchmark, input_array, read_run, write_run
from repro.sim.ops import ComputeOp

SEQ_CUTOFF = 32
MERGE_CUTOFF = 48


def _seq_sort(ctx, src, lo, hi):
    """Sort src[lo:hi) into a fresh local array (sequential base case).

    The dense read and write loops retire as coalesced batch runs (the
    merge loops above the cutoff stay per-op: their order is data
    dependent).
    """
    n = hi - lo
    out = yield from ctx.alloc_array(n, name="leafsort")
    values = yield from read_run(src, lo, hi)
    values.sort()
    yield ComputeOp(2 * n)  # comparison work of the host-side sort
    yield from write_run(out, 0, values)
    return out


def _binary_search(ctx, arr, value):
    """Smallest index with arr[idx] >= value (simulated loads)."""
    lo, hi = 0, len(arr)
    while lo < hi:
        mid = (lo + hi) // 2
        probe = yield from arr.get(mid)
        yield ComputeOp(1)
        if probe < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _merge_range(ctx, left, llo, lhi, right, rlo, rhi, out, olo):
    """Parallel merge of left[llo:lhi) and right[rlo:rhi) into out[olo:)."""
    ln, rn = lhi - llo, rhi - rlo
    if ln + rn <= MERGE_CUTOFF:
        i, j, k = llo, rlo, olo
        a = (yield from left.get(i)) if i < lhi else None
        b = (yield from right.get(j)) if j < rhi else None
        while i < lhi or j < rhi:
            yield ComputeOp(1)
            if j >= rhi or (i < lhi and a <= b):
                yield from out.set(k, a)
                i += 1
                a = (yield from left.get(i)) if i < lhi else None
            else:
                yield from out.set(k, b)
                j += 1
                b = (yield from right.get(j)) if j < rhi else None
            k += 1
        return
    if ln < rn:
        left, llo, lhi, right, rlo, rhi = right, rlo, rhi, left, llo, lhi
        ln, rn = rn, ln
    lmid = (llo + lhi) // 2
    pivot = yield from left.get(lmid)
    rmid = yield from _binary_search_range(ctx, right, rlo, rhi, pivot)
    omid = olo + (lmid - llo) + (rmid - rlo)
    yield from out.set(omid, pivot)
    yield from ctx.par(
        lambda c: _merge_range(c, left, llo, lmid, right, rlo, rmid, out, olo),
        lambda c: _merge_range(
            c, left, lmid + 1, lhi, right, rmid, rhi, out, omid + 1
        ),
    )


def _binary_search_range(ctx, arr, lo, hi, value):
    while lo < hi:
        mid = (lo + hi) // 2
        probe = yield from arr.get(mid)
        yield ComputeOp(1)
        if probe < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def sort_task(ctx, src, lo, hi):
    """Return a new sorted array of src[lo:hi)."""
    n = hi - lo
    if n <= SEQ_CUTOFF:
        out = yield from _seq_sort(ctx, src, lo, hi)
        return out
    mid = (lo + hi) // 2
    left, right = yield from ctx.par(
        lambda c: sort_task(c, src, lo, mid),
        lambda c: sort_task(c, src, mid, hi),
    )
    out = yield from ctx.alloc_array(n, name="merged")
    region = ctx.rt.construct_begin(out)
    yield from _merge_range(
        ctx, left, 0, len(left), right, 0, len(right), out, 0
    )
    ctx.rt.construct_end(region)
    return out


def build(rng: random.Random, scale: int) -> List[int]:
    return [rng.randrange(1 << 16) for _ in range(scale)]


def root_task(ctx, values: List[int]):
    src = yield from input_array(ctx, values, name="input")
    out = yield from sort_task(ctx, src, 0, len(src))
    return out.to_list()


def reference(values: List[int]) -> List[int]:
    return sorted(values)


BENCHMARK = Benchmark(
    name="msort",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 96, "small": 512, "default": 1536},
    description="functional parallel merge sort with parallel merges",
)
