"""``dmm`` — dense matrix-matrix multiplication.

``C = A x B`` with one task per output tile row segment; A rows are private
to a task, B columns are read-shared by every task.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp


def build(rng: random.Random, scale: int) -> Dict:
    n = scale
    a = [rng.randrange(8) for _ in range(n * n)]
    b = [rng.randrange(8) for _ in range(n * n)]
    return {"n": n, "a": a, "b": b}


def root_task(ctx, workload):
    n = workload["n"]
    a = yield from input_array(ctx, workload["a"], name="A")
    b = yield from input_array(ctx, workload["b"], name="B")

    def cell(c, idx):
        i, j = divmod(idx, n)
        acc = 0
        for k in range(n):
            x = yield from a.get(i * n + k)
            y = yield from b.get(k * n + j)
            yield ComputeOp(2)
            acc += x * y
        return acc

    out = yield from ctx.tabulate(n * n, cell, grain=max(n // 2, 4), name="C")
    # Consume the product: Frobenius-style checksum (reads C across tasks).
    checksum = yield from ctx.reduce(
        0, n * n, lambda c, i: out.get(i), lambda a, b: a + b, grain=max(n, 8)
    )
    return out.to_list(), checksum


def reference(workload):
    n, a, b = workload["n"], workload["a"], workload["b"]
    out = [0] * (n * n)
    for i in range(n):
        for k in range(n):
            aik = a[i * n + k]
            if not aik:
                continue
            row = k * n
            for j in range(n):
                out[i * n + j] += aik * b[row + j]
    return out, sum(out)


BENCHMARK = Benchmark(
    name="dmm",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 6, "small": 12, "default": 18},
    description="dense matrix multiply (read-shared B, tiled output)",
)
