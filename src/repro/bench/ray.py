"""``ray`` — ray casting against a triangle soup.

Each ray task reads the shared triangle arrays and records the nearest hit
parameter: graphics-style broadcast reads plus per-ray private output.  The
paper highlights ray's busy-wait/IPC interplay (Fig. 11).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.bench.common import Benchmark, input_array
from repro.sim.ops import ComputeOp

SCALE_1 = 1000  # fixed-point scale for the host-side geometry


def _intersect(ray_o, ray_d, tri) -> Optional[int]:
    """Möller–Trumbore in integer fixed point; returns t*SCALE_1 or None."""
    (ax, ay, az), (bx, by, bz), (cx, cy, cz) = tri
    e1 = (bx - ax, by - ay, bz - az)
    e2 = (cx - ax, cy - ay, cz - az)
    # p = d x e2
    px = ray_d[1] * e2[2] - ray_d[2] * e2[1]
    py = ray_d[2] * e2[0] - ray_d[0] * e2[2]
    pz = ray_d[0] * e2[1] - ray_d[1] * e2[0]
    det = e1[0] * px + e1[1] * py + e1[2] * pz
    if det == 0:
        return None
    tx = ray_o[0] - ax
    ty = ray_o[1] - ay
    tz = ray_o[2] - az
    u_num = tx * px + ty * py + tz * pz
    if det > 0 and (u_num < 0 or u_num > det):
        return None
    if det < 0 and (u_num > 0 or u_num < det):
        return None
    qx = ty * e1[2] - tz * e1[1]
    qy = tz * e1[0] - tx * e1[2]
    qz = tx * e1[1] - ty * e1[0]
    v_num = ray_d[0] * qx + ray_d[1] * qy + ray_d[2] * qz
    if det > 0 and (v_num < 0 or u_num + v_num > det):
        return None
    if det < 0 and (v_num > 0 or u_num + v_num < det):
        return None
    t_num = e2[0] * qx + e2[1] * qy + e2[2] * qz
    t = t_num * SCALE_1 // det
    return t if t > 0 else None


def build(rng: random.Random, scale: int) -> Dict:
    ntris = scale
    nrays = scale * 2
    tris = []
    for _ in range(ntris):
        ax, ay = rng.randrange(-40, 40), rng.randrange(-40, 40)
        az = rng.randrange(10, 60)
        tris.append(
            (
                (ax, ay, az),
                (ax + rng.randrange(1, 14), ay, az + rng.randrange(-3, 4)),
                (ax, ay + rng.randrange(1, 14), az + rng.randrange(-3, 4)),
            )
        )
    rays = [
        ((rng.randrange(-30, 30), rng.randrange(-30, 30), 0), (0, 0, 1))
        for _ in range(nrays)
    ]
    return {"tris": tris, "rays": rays}


def root_task(ctx, workload):
    tris = workload["tris"]
    rays = workload["rays"]
    tri_arr = yield from input_array(ctx, tris, name="tris")
    ray_arr = yield from input_array(ctx, rays, name="rays")

    def cast(c, r):
        origin_dir = yield from ray_arr.get(r)
        nearest = -1
        nearest_t = None
        for ti in range(len(tris)):
            tri = yield from tri_arr.get(ti)
            yield ComputeOp(24)
            t = _intersect(origin_dir[0], origin_dir[1], tri)
            if t is not None and (nearest_t is None or t < nearest_t):
                nearest, nearest_t = ti, t
        return nearest

    hits = yield from ctx.tabulate(len(rays), cast, grain=2, name="hits")
    checksum = yield from ctx.reduce(
        0, len(rays), lambda c, i: hits.get(i), lambda a, b: a + b, grain=8
    )
    return hits.to_list(), checksum


def reference(workload):
    out = []
    for origin, direction in workload["rays"]:
        nearest, nearest_t = -1, None
        for ti, tri in enumerate(workload["tris"]):
            t = _intersect(origin, direction, tri)
            if t is not None and (nearest_t is None or t < nearest_t):
                nearest, nearest_t = ti, t
        out.append(nearest)
    return out, sum(out)


BENCHMARK = Benchmark(
    name="ray",
    build=build,
    root_task=root_task,
    reference=reference,
    scales={"test": 8, "small": 24, "default": 48},
    description="ray casting against a shared triangle soup",
)
