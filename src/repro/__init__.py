"""WARDen reproduction: specializing cache coherence for high-level parallel
languages (Wilkins et al., CGO 2023).

The package implements the paper's full stack from scratch:

* :mod:`repro.coherence` — directory-based MESI and the WARDen protocol
  (the W state, WARD-region CAM, sectored reconciliation);
* :mod:`repro.sim` — a conservative min-clock multicore simulator (cores,
  private L1/L2, shared per-socket LLC, NUMA interconnect);
* :mod:`repro.hlpl` — an MPL-like fork-join runtime (spawn tree, heap
  hierarchy, work stealing, WARD marking by construction);
* :mod:`repro.bench` — the PBBS-style benchmark suite of the evaluation;
* :mod:`repro.energy` — McPAT/CACTI-style energy and area models;
* :mod:`repro.analysis` — harnesses regenerating every table and figure;
* :mod:`repro.verify` — dynamic WARD/disentanglement checkers.

Quickstart::

    from repro import Machine, Runtime, dual_socket

    def program(ctx, n):
        arr = yield from ctx.tabulate(n, lambda c, i: c.value(i * i))
        total = yield from ctx.reduce(0, n, lambda c, i: arr.get(i),
                                      lambda a, b: a + b)
        return total

    machine = Machine(dual_socket(), "warden")
    result, stats = Runtime(machine).run(program, 1024)
"""

from repro.analysis.metrics import ComparisonMetrics, compare, compare_multi
from repro.analysis.run import BenchResult, run_benchmark, run_pair, run_pairs
from repro.bench import BENCHMARKS, PAPER_ORDER
from repro.coherence.mesi import MESIProtocol
from repro.coherence.warden import WARDenProtocol
from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    MachineConfig,
    disaggregated,
    dual_socket,
    single_socket,
    validation_machine,
)
from repro.common.stats import RunStats
from repro.energy.model import EnergyModel
from repro.hlpl.api import TaskContext
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from repro.verify.ward_checker import WardChecker

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "CacheConfig",
    "ComparisonMetrics",
    "EnergyConfig",
    "EnergyModel",
    "MESIProtocol",
    "Machine",
    "MachineConfig",
    "MarkingPolicy",
    "PAPER_ORDER",
    "RunStats",
    "Runtime",
    "TaskContext",
    "WARDenProtocol",
    "WardChecker",
    "compare",
    "compare_multi",
    "disaggregated",
    "dual_socket",
    "run_benchmark",
    "run_pair",
    "run_pairs",
    "single_socket",
    "validation_machine",
]
