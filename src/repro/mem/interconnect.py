"""Interconnect latency/traffic model.

Three link classes, mirroring the paper's three validation scenarios
(Table 1) and the disaggregated study (§7.3):

* ``LOCAL``  — requester and responder share a tile (same core's caches).
* ``INTRA``  — on-die hop(s) between a core and its socket's LLC/directory.
* ``SOCKET`` — the inter-socket link (UPI-like), or the 1 us remote link
  when the machine is disaggregated.

Message *energy* is not computed here — the interconnect records per-class
message counts into :class:`~repro.common.stats.CoherenceStats`, and
:mod:`repro.energy.model` converts them afterwards.
"""

from __future__ import annotations

import enum

from repro.common.config import MachineConfig
from repro.common.stats import CoherenceStats
from repro.common.types import MessageType


class LinkClass(enum.Enum):
    LOCAL = "local"
    INTRA = "intra"
    SOCKET = "socket"
    MEMORY = "memory"

    __hash__ = object.__hash__  # identity hash (see common.types)


_LOCAL = LinkClass.LOCAL
_INTRA = LinkClass.INTRA
_SOCKET = LinkClass.SOCKET


class Interconnect:
    """Computes hop latencies and records traffic between topology points."""

    def __init__(
        self, config: MachineConfig, stats: CoherenceStats, tracer=None
    ) -> None:
        self.config = config
        self.stats = stats
        #: optional :class:`repro.obs.tracer.Tracer` (per-message events)
        self.tracer = tracer
        # hoisted topology/latency tables for the per-message hot path
        self._socket_of_core = tuple(
            config.socket_of_core(c) for c in range(config.num_cores)
        )
        self._latency = {
            LinkClass.LOCAL: 0,
            LinkClass.INTRA: config.hop_intra_latency,
            LinkClass.SOCKET: config.cross_socket_latency(),
            LinkClass.MEMORY: config.dram_latency,
        }
        #: link -> (link.value, latency): one lookup per message instead of
        #: a latency lookup plus a .value descriptor call
        self._link_info = {
            link: (link.value, lat) for link, lat in self._latency.items()
        }

    # ------------------------------------------------------------------
    def link_between_cores(self, core_a: int, core_b: int) -> LinkClass:
        if core_a == core_b:
            return _LOCAL
        socket_of = self._socket_of_core
        if socket_of[core_a] == socket_of[core_b]:
            return _INTRA
        return _SOCKET

    def link_core_to_socket(self, core: int, socket: int) -> LinkClass:
        if self._socket_of_core[core] == socket:
            return _INTRA
        return _SOCKET

    def latency(self, link: LinkClass) -> int:
        return self._latency[link]

    # ------------------------------------------------------------------
    def send(self, mtype: MessageType, link: LinkClass, count: int = 1) -> int:
        """Record ``count`` messages on ``link``; return one-way latency."""
        value, lat = self._link_info[link]
        self.stats.messages[(mtype, value)] += count
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.message(mtype.value, value, count)
        return lat

    def core_to_home(self, core: int, home_socket: int, mtype: MessageType) -> int:
        """Send a request from a core's private cache to a home LLC slice."""
        link = (
            _INTRA
            if self._socket_of_core[core] == home_socket
            else _SOCKET
        )
        return self.send(mtype, link)

    def home_to_core(self, home_socket: int, core: int, mtype: MessageType) -> int:
        link = (
            _INTRA
            if self._socket_of_core[core] == home_socket
            else _SOCKET
        )
        return self.send(mtype, link)

    def core_to_core(self, core_a: int, core_b: int, mtype: MessageType) -> int:
        """Cache-to-cache transfer (forwarded requests / data responses)."""
        return self.send(mtype, self.link_between_cores(core_a, core_b))
