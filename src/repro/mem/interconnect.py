"""Interconnect latency/traffic model.

Three link classes, mirroring the paper's three validation scenarios
(Table 1) and the disaggregated study (§7.3):

* ``LOCAL``  — requester and responder share a tile (same core's caches).
* ``INTRA``  — on-die hop(s) between a core and its socket's LLC/directory.
* ``SOCKET`` — the inter-socket link (UPI-like), or the 1 us remote link
  when the machine is disaggregated.

Message *energy* is not computed here — the interconnect records per-class
message counts into :class:`~repro.common.stats.CoherenceStats`, and
:mod:`repro.energy.model` converts them afterwards.
"""

from __future__ import annotations

import enum

from repro.common.config import MachineConfig
from repro.common.stats import CoherenceStats
from repro.common.types import MessageType


class LinkClass(enum.Enum):
    LOCAL = "local"
    INTRA = "intra"
    SOCKET = "socket"
    MEMORY = "memory"


class Interconnect:
    """Computes hop latencies and records traffic between topology points."""

    def __init__(
        self, config: MachineConfig, stats: CoherenceStats, tracer=None
    ) -> None:
        self.config = config
        self.stats = stats
        #: optional :class:`repro.obs.tracer.Tracer` (per-message events)
        self.tracer = tracer

    # ------------------------------------------------------------------
    def link_between_cores(self, core_a: int, core_b: int) -> LinkClass:
        if core_a == core_b:
            return LinkClass.LOCAL
        if self.config.socket_of_core(core_a) == self.config.socket_of_core(core_b):
            return LinkClass.INTRA
        return LinkClass.SOCKET

    def link_core_to_socket(self, core: int, socket: int) -> LinkClass:
        if self.config.socket_of_core(core) == socket:
            return LinkClass.INTRA
        return LinkClass.SOCKET

    def latency(self, link: LinkClass) -> int:
        if link is LinkClass.LOCAL:
            return 0
        if link is LinkClass.INTRA:
            return self.config.hop_intra_latency
        if link is LinkClass.SOCKET:
            return self.config.cross_socket_latency()
        return self.config.dram_latency

    # ------------------------------------------------------------------
    def send(self, mtype: MessageType, link: LinkClass, count: int = 1) -> int:
        """Record ``count`` messages on ``link``; return one-way latency."""
        self.stats.count_message(mtype, link.value, count)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.message(mtype.value, link.value, count)
        return self.latency(link)

    def core_to_home(self, core: int, home_socket: int, mtype: MessageType) -> int:
        """Send a request from a core's private cache to a home LLC slice."""
        return self.send(mtype, self.link_core_to_socket(core, home_socket))

    def home_to_core(self, home_socket: int, core: int, mtype: MessageType) -> int:
        return self.send(mtype, self.link_core_to_socket(core, home_socket))

    def core_to_core(self, core_a: int, core_b: int, mtype: MessageType) -> int:
        """Cache-to-cache transfer (forwarded requests / data responses)."""
        return self.send(mtype, self.link_between_cores(core_a, core_b))
