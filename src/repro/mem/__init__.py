"""Memory-system substrate: cache arrays, blocks, and the interconnect model."""

from repro.mem.block import CacheBlock
from repro.mem.cache import SetAssocCache
from repro.mem.interconnect import Interconnect, LinkClass

__all__ = ["CacheBlock", "SetAssocCache", "Interconnect", "LinkClass"]
