"""A cache block (line) with coherence state and sectored write tracking."""

from __future__ import annotations

from repro.common.types import CoherenceState


class CacheBlock:
    """One cache line held by a private cache hierarchy or LLC slice.

    ``written_mask`` is the sectored-cache byte write mask of §6.1: bit *i* is
    set when byte *i* has been written locally since the block was installed
    (or since the last reconciliation).  Only meaningful in the M and W
    states.
    """

    __slots__ = ("addr", "state", "written_mask")

    def __init__(
        self,
        addr: int,
        state: CoherenceState = CoherenceState.INVALID,
        written_mask: int = 0,
    ) -> None:
        self.addr = addr
        self.state = state
        self.written_mask = written_mask

    @property
    def dirty(self) -> bool:
        return self.written_mask != 0 or self.state is CoherenceState.MODIFIED

    def mark_written(self, mask: int) -> None:
        self.written_mask |= mask

    def clear_written(self) -> None:
        self.written_mask = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheBlock(addr={self.addr:#x}, state={self.state.value}, "
            f"mask={self.written_mask:#x})"
        )
