"""Set-associative cache array with true-LRU replacement.

The cache stores :class:`~repro.mem.block.CacheBlock` objects keyed by
block-aligned address.  Sets are ordered dicts (insertion order = LRU order,
refreshed on access), which gives O(1) lookup, touch, and eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional

from repro.common.config import CacheConfig
from repro.common.types import CoherenceState
from repro.mem.block import CacheBlock

EvictionHook = Callable[[CacheBlock], None]


def set_index_params(config: CacheConfig) -> tuple:
    """``(num_sets, block_shift, set_mask)`` for a cache geometry.

    ``block_shift``/``set_mask`` are -1 when the block size / set count is
    not a power of two (the caller must then use the slow arithmetic).
    Shared between :class:`SetAssocCache` and the replay kernel so both
    sides index sets identically by construction.
    """
    num_sets = config.num_sets
    bs = config.block_size
    block_shift = bs.bit_length() - 1 if bs & (bs - 1) == 0 else -1
    set_mask = (
        num_sets - 1
        if block_shift >= 0 and num_sets & (num_sets - 1) == 0
        else -1
    )
    return num_sets, block_shift, set_mask


class SetAssocCache:
    """An LRU set-associative cache of :class:`CacheBlock` entries."""

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        on_evict: Optional[EvictionHook] = None,
        tracer=None,
    ) -> None:
        config.validate()
        self.config = config
        self.name = name
        self.on_evict = on_evict
        #: optional :class:`repro.obs.tracer.Tracer` (eviction events)
        self.tracer = tracer
        self.assoc = config.associativity
        self.block_size = config.block_size
        # Block sizes are powers of two in every paper configuration, so the
        # divide in set indexing becomes a shift; when the set count is also
        # a power of two the modulo becomes a mask.  -1 marks "not a power
        # of two, use the slow arithmetic".
        self.num_sets, self._block_shift, self._set_mask = set_index_params(
            config
        )
        self._sets: Dict[int, "OrderedDict[int, CacheBlock]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def set_index(self, block_addr: int) -> int:
        mask = self._set_mask
        if mask >= 0:
            return (block_addr >> self._block_shift) & mask
        if self._block_shift >= 0:
            return (block_addr >> self._block_shift) % self.num_sets
        return (block_addr // self.block_size) % self.num_sets

    def _set_for(self, block_addr: int) -> "OrderedDict[int, CacheBlock]":
        idx = self.set_index(block_addr)
        existing = self._sets.get(idx)
        if existing is None:
            existing = OrderedDict()
            self._sets[idx] = existing
        return existing

    # ------------------------------------------------------------------
    def lookup(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the block if present (and valid), refreshing LRU order."""
        mask = self._set_mask
        if mask >= 0:  # inlined set_index (hot path)
            idx = (block_addr >> self._block_shift) & mask
        else:
            idx = self.set_index(block_addr)
        cset = self._sets.get(idx)
        if cset is None:
            self.misses += 1
            return None
        block = cset.get(block_addr)
        if block is None or block.state is CoherenceState.INVALID:
            self.misses += 1
            return None
        if touch:
            cset.move_to_end(block_addr)
        self.hits += 1
        return block

    def probe(self, block_addr: int):
        """Side-effect-free two-phase variant of :meth:`lookup`.

        Returns ``(cset, block)`` — ``block`` is None when absent/invalid.
        Callers that decide to go through with the access commit the probe
        with :meth:`commit_hit` (or by incrementing ``misses`` on a miss);
        together these replicate lookup()'s statistical effects exactly,
        without a second set-index/dict walk.  Callers that back out touch
        nothing.
        """
        mask = self._set_mask
        if mask >= 0:  # inlined set_index (hot path)
            idx = (block_addr >> self._block_shift) & mask
        else:
            idx = self.set_index(block_addr)
        cset = self._sets.get(idx)
        if cset is None:
            return None, None
        block = cset.get(block_addr)
        if block is None or block.state is CoherenceState.INVALID:
            return cset, None
        return cset, block

    def commit_hit(self, cset, block_addr: int) -> None:
        """Record the hit of a successful :meth:`probe` (counters + LRU)."""
        self.hits += 1
        cset.move_to_end(block_addr)

    def peek(self, block_addr: int) -> Optional[CacheBlock]:
        """Non-statistical, non-LRU-refreshing lookup (for checkers/tests)."""
        cset = self._sets.get(self.set_index(block_addr))
        if cset is None:
            return None
        block = cset.get(block_addr)
        if block is None or block.state is CoherenceState.INVALID:
            return None
        return block

    def _make_room(self, cset: "OrderedDict[int, CacheBlock]") -> None:
        """Evict LRU ways until the set has a free way."""
        while len(cset) >= self.assoc:
            _, victim = cset.popitem(last=False)
            self.evictions += 1
            if victim.state is not CoherenceState.INVALID:
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.eviction(self.name, victim.addr, victim.state.value)
                if self.on_evict is not None:
                    self.on_evict(victim)

    def install(self, block_addr: int, state: CoherenceState) -> CacheBlock:
        """Insert a block (evicting the LRU way if the set is full)."""
        cset = self._set_for(block_addr)
        block = cset.get(block_addr)
        if block is not None:
            block.state = state
            cset.move_to_end(block_addr)
            return block
        self._make_room(cset)
        block = CacheBlock(block_addr, state)
        cset[block_addr] = block
        return block

    def install_block(self, block: CacheBlock) -> CacheBlock:
        """Insert an existing :class:`CacheBlock` object (shared with another
        level of the same private hierarchy, so state updates stay coherent
        between L1 and L2 by construction)."""
        cset = self._set_for(block.addr)
        if block.addr in cset:
            cset[block.addr] = block
            cset.move_to_end(block.addr)
            return block
        self._make_room(cset)
        cset[block.addr] = block
        return block

    def invalidate(self, block_addr: int) -> Optional[CacheBlock]:
        """Remove a block without triggering the eviction hook."""
        cset = self._sets.get(self.set_index(block_addr))
        if cset is None:
            return None
        return cset.pop(block_addr, None)

    # ------------------------------------------------------------------
    def __contains__(self, block_addr: int) -> bool:
        return self.peek(block_addr) is not None

    def __len__(self) -> int:
        """Number of valid blocks (INVALID ways are dead, as in blocks())."""
        return sum(
            1
            for cset in self._sets.values()
            for block in cset.values()
            if block.state is not CoherenceState.INVALID
        )

    def blocks(self) -> Iterator[CacheBlock]:
        for cset in self._sets.values():
            for block in cset.values():
                if block.state is not CoherenceState.INVALID:
                    yield block

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
