"""MOESI: MESI plus the Owned state (dirty sharing without writeback).

A dirty line that another core reads is *not* written back to the LLC;
the owner keeps the (still dirty) data in state O and supplies readers
cache-to-cache.  The home LLC only sees the data again when the owner
evicts or a writer claims the line.  Compared to the MESI baseline this
trades LLC/DRAM writeback traffic for longer ownership chains — a useful
third point between MESI and WARDen for the paper's sharing studies.

Invariant (checked by :meth:`MOESIProtocol.check_invariants` and the
protocol fuzzer): **owned implies dirty** — an O copy always has a
nonzero written-sector mask, because O is only ever entered from M and
keeps the mask.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.common.types import AccessType, CoherenceState, MessageType
from repro.coherence.directory import DirEntry
from repro.coherence.mesi import _MESI_HANDLERS, MESIProtocol
from repro.coherence.registry import coherence_protocol
from repro.coherence.spec import ProtocolSpec, Row, TransitionTable
from repro.mem.block import CacheBlock

I = CoherenceState.INVALID
S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED
O = CoherenceState.OWNED

_LOAD = AccessType.LOAD
_PUT_M = MessageType.PUT_M
_FWD_GET_S = MessageType.FWD_GET_S
_FWD_GET_M = MessageType.FWD_GET_M
_DATA = MessageType.DATA
_DATA_E = MessageType.DATA_E

MOESI_SPEC = ProtocolSpec(
    name="MOESI",
    states=("I", "S", "E", "M", "O"),
    initial="I",
    handlers=_MESI_HANDLERS,
    tables=(
        TransitionTable(
            role="cache",
            events=("load", "store", "Fwd-GetS", "Fwd-GetM", "Inv", "Evict"),
            rows=(
                Row("I", "load", "E", ("miss",), guard="directory I"),
                Row("I", "load", "S", ("miss",), guard="otherwise"),
                Row("I", "store", "M", ("miss",)),
                Row("S", "load", "S", ("silent",)),
                Row("S", "store", "M", ("upgrade",)),
                Row("E", "load", "E", ("silent",)),
                Row("E", "store", "M", ("silent",)),
                Row("M", "load", "M", ("silent",)),
                Row("M", "store", "M", ("silent",)),
                # The MOESI twist: a read of a dirty line downgrades the
                # owner to O with no writeback; O reads stay silent and an
                # O store must reclaim exclusivity from the directory.
                Row("M", "Fwd-GetS", "O", ("fwd",)),
                Row("O", "load", "O", ("silent",)),
                Row("O", "store", "M", ("upgrade",)),
                Row("O", "Fwd-GetS", "O", ("fwd",)),
                Row("O", "Fwd-GetM", "I", ("fwd",)),
                Row("O", "Inv", "I", ("inv",)),
                Row("S", "Inv", "I", ("inv",)),
                Row("E", "Fwd-GetS", "S", ("fwd",)),
                Row("E", "Fwd-GetM", "I", ("fwd",)),
                Row("M", "Fwd-GetM", "I", ("fwd",)),
                Row("S", "Evict", "I", ("evict",)),
                Row("E", "Evict", "I", ("evict",)),
                Row("M", "Evict", "I", ("evict", "writeback")),
                Row("O", "Evict", "I", ("evict", "writeback")),
            ),
            impossible=(
                ("I", "Fwd-GetS"), ("I", "Fwd-GetM"), ("I", "Inv"),
                ("I", "Evict"), ("E", "Inv"), ("M", "Inv"),
                ("S", "Fwd-GetS"), ("S", "Fwd-GetM"),
            ),
        ),
        TransitionTable(
            role="directory",
            events=("GetS", "GetM", "Upgrade", "Put"),
            rows=(
                Row("I", "GetS", "E", ("fetch", "install")),
                Row("I", "GetM", "M", ("fetch", "install")),
                Row("S", "GetS", "S", ("fetch", "install")),
                Row("S", "GetM", "M", ("inv", "fetch", "install")),
                Row("S", "Upgrade", "M", ("inv",)),
                Row("E", "GetS", "S", ("fwd",)),
                Row("M", "GetS", "O", ("fwd",)),
                Row("E", "GetM", "M", ("fwd",)),
                Row("M", "GetM", "M", ("fwd",)),
                Row("O", "GetS", "O", ("fwd",)),
                Row("O", "GetM", "M", ("inv", "fwd")),
                Row("O", "Upgrade", "M", ("inv",)),
                Row("S", "Put", "S", ("evict",), guard="sharers remain"),
                Row("S", "Put", "I", ("evict",), guard="last sharer"),
                Row("E", "Put", "I", ("evict",)),
                Row("M", "Put", "I", ("evict", "writeback")),
                Row("O", "Put", "O", ("evict",), guard="a sharer evicts"),
                Row("O", "Put", "S", ("evict", "writeback"),
                    guard="owner evicts, sharers remain"),
                Row("O", "Put", "I", ("evict", "writeback"),
                    guard="owner evicts last copy"),
            ),
            impossible=(
                ("I", "Put"), ("I", "Upgrade"),
                ("E", "Upgrade"), ("M", "Upgrade"),
            ),
        ),
    ),
)


@coherence_protocol("moesi", MOESI_SPEC)
class MOESIProtocol(MESIProtocol):
    """MESI + Owned.  Only the dirty-sharing paths differ from the base:
    read-forwards on M keep the data with the owner (dir state O), O
    owners answer later readers cache-to-cache, and writers reclaim the
    line by invalidating the owner alongside the sharers."""

    name = "MOESI"

    # ------------------------------------------------------------------
    # Directory dispatch: the O entry and the M->O read-forward
    # ------------------------------------------------------------------
    def _handle_at_directory(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        atype: AccessType,
        mask: int,
    ) -> int:
        if entry.state is not O:
            return super()._handle_at_directory(core, block_addr, entry, atype, mask)
        home = self.home(block_addr)
        owner = entry.owner
        if owner is None or owner == core:
            raise ProtocolError(f"bad owner {owner} for miss by {core}: {entry}")
        owner_block = self.l2[owner].peek(block_addr)
        if owner_block is None:
            raise ProtocolError(
                f"directory says core {owner} owns {block_addr:#x} "
                "but no private copy exists"
            )
        tracer = self.tracer
        if atype is _LOAD:
            # Another reader: the owner supplies the dirty data c2c and
            # stays O — still no writeback (the point of the state).
            latency = self.noc.home_to_core(home, owner, _FWD_GET_S)
            latency += self.noc.core_to_core(owner, core, _DATA)
            self._install_private(core, block_addr, S, 0)
            entry.sharers.add(core)
            self.stats.extra["dirty_shares"] += 1
            return latency
        # A writer claims the line: invalidate the sharers and the owner.
        inv_latency = self._invalidate_sharers(block_addr, entry, exclude=core)
        latency = self.noc.home_to_core(home, owner, _FWD_GET_M)
        latency += self.noc.core_to_core(owner, core, _DATA)
        self.stats.invalidations += 1
        if tracer.enabled:
            tracer.transition(f"L2-{owner}", block_addr, "O", "I")
        self.l2[owner].invalidate(block_addr)
        self.l1[owner].invalidate(block_addr)
        owner_block.state = I
        owner_block.clear_written()
        self._install_private(core, block_addr, M, mask)
        entry.set_state(M, tracer)
        entry.owner = core
        entry.sharers.clear()
        return max(inv_latency, latency)

    def _forward_to_owner(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        atype: AccessType,
        mask: int,
    ) -> int:
        if atype is not _LOAD or entry.state is not M:
            # E-GetS (clean, plain downgrade) and all GetM forwards keep
            # their MESI behaviour.
            return super()._forward_to_owner(core, block_addr, entry, atype, mask)
        # Fwd-GetS on a dirty line: owner M -> O, data c2c, NO writeback.
        home = self.home(block_addr)
        owner = entry.owner
        if owner is None or owner == core:
            raise ProtocolError(f"bad owner {owner} for miss by {core}: {entry}")
        owner_block = self.l2[owner].peek(block_addr)
        if owner_block is None:
            raise ProtocolError(
                f"directory says core {owner} owns {block_addr:#x} "
                "but no private copy exists"
            )
        latency = self.noc.home_to_core(home, owner, _FWD_GET_S)
        latency += self.noc.core_to_core(owner, core, _DATA)
        self.stats.downgrades += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.transition(f"L2-{owner}", block_addr, "M", "O")
        owner_block.state = O  # written mask retained: owned implies dirty
        self._install_private(core, block_addr, S, 0)
        entry.set_state(O, tracer)
        entry.sharers.add(core)
        self.stats.extra["dirty_shares"] += 1
        return latency

    # ------------------------------------------------------------------
    # Store upgrade with a dirty owner in the picture
    # ------------------------------------------------------------------
    def _handle_upgrade_at_dir(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        block: CacheBlock,
        mask: int,
    ) -> int:
        if entry.state is not O:
            return super()._handle_upgrade_at_dir(core, block_addr, entry, block, mask)
        home = self.home(block_addr)
        owner = entry.owner
        if owner is None or (owner != core and core not in entry.sharers):
            raise ProtocolError(
                f"upgrade for {block_addr:#x} but directory shows {entry}"
            )
        latency = self._invalidate_sharers(block_addr, entry, exclude=core)
        if owner == core:
            # The owner itself writes again: sharers gone, O -> M in place.
            latency += self.noc.home_to_core(home, core, _DATA_E)
        else:
            # A sharer writes: the owner forwards the dirty line and dies.
            fwd = self.noc.home_to_core(home, owner, _FWD_GET_M)
            fwd += self.noc.core_to_core(owner, core, _DATA)
            latency = max(latency, fwd)
            self.stats.invalidations += 1
            owner_block = self.l2[owner].peek(block_addr)
            tracer = self.tracer
            if tracer.enabled:
                tracer.transition(f"L2-{owner}", block_addr, "O", "I")
            self.l2[owner].invalidate(block_addr)
            self.l1[owner].invalidate(block_addr)
            if owner_block is not None:
                owner_block.state = I
                owner_block.clear_written()
        entry.set_state(M, self.tracer)
        entry.owner = core
        entry.sharers.clear()
        block.state = M
        block.mark_written(mask)
        return latency

    # ------------------------------------------------------------------
    # Evictions: the O owner's dirty line finally reaches the LLC here
    # ------------------------------------------------------------------
    def _evict_private(self, core: int, block: CacheBlock) -> None:
        if block.state is not O:
            super()._evict_private(core, block)
            return
        self.l1[core].invalidate(block.addr)
        entry = self.dir_entry(block.addr)
        home = self.home(block.addr)
        if entry.owner != core:
            raise ProtocolError(
                f"evicting owned block {block.addr:#x} but directory "
                f"says owner={entry.owner}"
            )
        # Dirty by the owned-implies-dirty invariant: deferred writeback.
        self.noc.core_to_home(core, home, _PUT_M)
        self.stats.writebacks += 1
        self._llc_fill(block.addr)
        entry.owner = None
        entry.set_state(S if entry.sharers else I, self.tracer)
        block.state = I
        block.clear_written()

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        for directory in self.dirs:
            for entry in directory.entries():
                if entry.state is not O:
                    continue
                owned = self.l2[entry.owner].peek(entry.addr)
                if owned is None or owned.state is not O:
                    raise ProtocolError(f"owner copy missing/wrong for {entry}")
                if not owned.written_mask:
                    raise ProtocolError(
                        f"owned-implies-dirty violated at {entry.addr:#x}: "
                        "O copy has an empty written mask"
                    )
                if entry.owner in entry.sharers:
                    raise ProtocolError(f"{entry} owner listed as sharer")
                for sharer in entry.sharers:
                    copy = self.l2[sharer].peek(entry.addr)
                    if copy is None or copy.state is not S:
                        raise ProtocolError(
                            f"sharer {sharer} copy wrong for {entry}"
                        )
