"""Declarative protocol descriptions: (state x event -> guard/actions/next).

A :class:`ProtocolSpec` is the table form of one coherence protocol: its
state alphabet, its event alphabet(s), and one :class:`Row` per
(state, event) transition.  The spec serves three purposes:

1. **Documentation that cannot rot.**  The table *is* the protocol: the
   ``protocol-lint`` CI step runs :meth:`ProtocolSpec.validate` against the
   implementing class, so a row naming a handler that no longer exists, an
   unreachable state, or a missing/duplicate (state, event) cell fails CI.

2. **Fast-path compilation.**  :meth:`ProtocolSpec.compile` derives the
   frozensets the engine's hot paths dispatch on — which states absorb a
   store silently (``try_fast_access``/epoch-batch safety), which silent
   store transition applies (E -> M), which states need a directory
   upgrade, and which states count as WARD coverage.  MESI, WARDen, MOESI,
   and SI/SD all run the *same* generalized hit path in
   :class:`~repro.coherence.mesi.MESIProtocol`, parameterized only by
   these compiled tables.

3. **A uniform shape for new protocols.**  Adding a protocol means writing
   a spec plus the handler methods its rows name; the registry
   (:mod:`repro.coherence.registry`) then plugs it into conformance,
   fuzzing, golden digests, replay, and the figure generators.

Rows use string state/event names (the spec layer is pure data); compile()
maps states onto :class:`~repro.common.types.CoherenceState` members by
value, so specs can only name states the simulator actually models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.common.types import CoherenceState

#: action verbs with engine-level meaning; everything else must name a
#: handler method on the implementing protocol class
BUILTIN_ACTIONS = frozenset({
    "silent",      # resolved inside the private cache, no messages
    "upgrade",     # store on a shared copy: ask the directory for M
    "miss",        # not cached: full GetS/GetM transaction
    "stall",       # (documentational) transient; engine models it as latency
})

#: event names understood by the compiled fast path
EV_LOAD = "load"
EV_STORE = "store"


@dataclass(frozen=True)
class Row:
    """One transition: in ``state``, on ``event`` (when ``guard`` holds),
    run ``actions`` and move to ``next_state``.

    ``guard`` is a human-readable side condition ("dirty", "in-region",
    ...).  Two rows for the same (state, event) are nondeterministic
    unless their guards differ — validate() flags exact duplicates.
    """

    state: str
    event: str
    next_state: str
    actions: Tuple[str, ...] = ()
    guard: str = ""


@dataclass(frozen=True)
class TransitionTable:
    """The rows of one FSA role (``cache`` side or ``directory`` side)."""

    role: str
    events: Tuple[str, ...]
    rows: Tuple[Row, ...]
    #: (state, event) cells that are impossible by construction — the
    #: author must list them explicitly, so "missing row" keeps meaning
    #: "forgotten", not "intentionally absent"
    impossible: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class SpecIssue:
    """One finding from :meth:`ProtocolSpec.validate`."""

    code: str       # "unreachable-state" | "missing-row" | "duplicate-row"
                    # | "unknown-state" | "unknown-event" | "unknown-action"
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.code}] {self.message}"


@dataclass(frozen=True)
class FastPath:
    """The compiled dispatch tables the generalized hit paths run on."""

    #: states whose store hit completes inside the private cache
    silent_write: FrozenSet[CoherenceState]
    #: silent store transition (e.g. E -> M); states absent stay put
    silent_next: Dict[CoherenceState, CoherenceState]
    #: states whose store hit must ask the directory (Upgrade)
    upgrade_states: FrozenSet[CoherenceState]
    #: states counted as WARD coverage on a hit
    ward_states: FrozenSet[CoherenceState]


class ProtocolSpec:
    """Table-driven description of one coherence protocol."""

    def __init__(
        self,
        name: str,
        states: Tuple[str, ...],
        tables: Tuple[TransitionTable, ...],
        initial: str = "I",
        ward_states: Tuple[str, ...] = (),
        handlers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.name = name
        self.states = tuple(states)
        self.tables = tuple(tables)
        self.initial = initial
        self.ward_states = tuple(ward_states)
        #: action verb -> method name on the implementing class
        self.handlers = dict(handlers or {})

    # ------------------------------------------------------------------
    def table(self, role: str) -> Optional[TransitionTable]:
        for t in self.tables:
            if t.role == role:
                return t
        return None

    def lookup(self, role: str, state: str, event: str) -> List[Row]:
        t = self.table(role)
        if t is None:
            return []
        return [r for r in t.rows if r.state == state and r.event == event]

    # ------------------------------------------------------------------
    # Static checking (the protocol-lint satellite)
    # ------------------------------------------------------------------
    def validate(self, handler_cls: Optional[type] = None) -> List[SpecIssue]:
        """Return every structural problem in the spec (empty = clean).

        Checks, per table: rows referencing unknown states/events,
        missing (state, event) cells not declared impossible, and exact
        duplicate rows (same state/event/guard — nondeterministic).
        Across tables: states unreachable from ``initial`` via
        ``next_state`` edges.  With ``handler_cls``, every non-builtin
        action must resolve (through :attr:`handlers`) to a method.
        """
        issues: List[SpecIssue] = []
        known = set(self.states)
        if self.initial not in known:
            issues.append(SpecIssue(
                "unknown-state", f"initial state {self.initial!r} not in states"
            ))
        for ws in self.ward_states:
            if ws not in known:
                issues.append(SpecIssue(
                    "unknown-state", f"ward state {ws!r} not in states"
                ))

        for t in self.tables:
            events = set(t.events)
            seen: Dict[Tuple[str, str, str], int] = {}
            covered = set()
            for row in t.rows:
                if row.state not in known:
                    issues.append(SpecIssue(
                        "unknown-state",
                        f"{t.role}: row references state {row.state!r}",
                    ))
                if row.next_state not in known:
                    issues.append(SpecIssue(
                        "unknown-state",
                        f"{t.role}: row {row.state}/{row.event} moves to "
                        f"unknown state {row.next_state!r}",
                    ))
                if row.event not in events:
                    issues.append(SpecIssue(
                        "unknown-event",
                        f"{t.role}: row references event {row.event!r}",
                    ))
                key = (row.state, row.event, row.guard)
                seen[key] = seen.get(key, 0) + 1
                covered.add((row.state, row.event))
            for (state, event, guard), n in seen.items():
                if n > 1:
                    issues.append(SpecIssue(
                        "duplicate-row",
                        f"{t.role}: {n} identical rows for ({state}, {event})"
                        + (f" guard={guard!r}" if guard else "")
                        + " — nondeterministic",
                    ))
            impossible = set(t.impossible)
            for state in self.states:
                for event in t.events:
                    if (state, event) in covered:
                        continue
                    if (state, event) in impossible:
                        continue
                    issues.append(SpecIssue(
                        "missing-row",
                        f"{t.role}: no row for ({state}, {event}) and the "
                        "cell is not declared impossible",
                    ))

        # Reachability over the union of all tables' next_state edges.
        edges: Dict[str, set] = {s: set() for s in self.states}
        for t in self.tables:
            for row in t.rows:
                if row.state in edges and row.next_state in known:
                    edges[row.state].add(row.next_state)
        reached = set()
        frontier = [self.initial] if self.initial in known else []
        while frontier:
            s = frontier.pop()
            if s in reached:
                continue
            reached.add(s)
            frontier.extend(edges.get(s, ()))
        for state in self.states:
            if state not in reached:
                issues.append(SpecIssue(
                    "unreachable-state",
                    f"state {state!r} is unreachable from {self.initial!r}",
                ))

        if handler_cls is not None:
            for t in self.tables:
                for row in t.rows:
                    for action in row.actions:
                        if action in BUILTIN_ACTIONS:
                            continue
                        method = self.handlers.get(action, action)
                        if not callable(getattr(handler_cls, method, None)):
                            issues.append(SpecIssue(
                                "unknown-action",
                                f"{t.role}: action {action!r} "
                                f"({row.state}/{row.event}) has no handler "
                                f"{handler_cls.__name__}.{method}",
                            ))
        return issues

    # ------------------------------------------------------------------
    # Fast-path compilation
    # ------------------------------------------------------------------
    def compile(self) -> FastPath:
        """Derive the hit-path dispatch tables from the cache-side rows.

        A ``store`` row with the ``silent`` action puts its state in
        ``silent_write`` (and, when it changes state, in ``silent_next``);
        a ``store`` row with the ``upgrade`` action puts its state in
        ``upgrade_states``.  The WARD coverage set comes straight from
        :attr:`ward_states`.
        """
        by_value = {s.value: s for s in CoherenceState}
        cache = self.table("cache")
        silent: set = set()
        upgrade: set = set()
        nxt: Dict[CoherenceState, CoherenceState] = {}
        if cache is not None:
            for row in cache.rows:
                if row.event != EV_STORE or row.state not in by_value:
                    continue
                st = by_value[row.state]
                if "silent" in row.actions:
                    silent.add(st)
                    if row.next_state != row.state and row.next_state in by_value:
                        nxt[st] = by_value[row.next_state]
                elif "upgrade" in row.actions:
                    upgrade.add(st)
        ward = frozenset(
            by_value[s] for s in self.ward_states if s in by_value
        )
        return FastPath(
            silent_write=frozenset(silent),
            silent_next=nxt,
            upgrade_states=frozenset(upgrade),
            ward_states=ward,
        )


def install_spec(cls: type, spec: ProtocolSpec) -> type:
    """Attach a spec's compiled fast-path tables to a protocol class.

    The generalized hit paths in :class:`~repro.coherence.mesi.
    MESIProtocol` read these class attributes; installing at class-
    definition time keeps the per-access cost identical to the old
    hard-coded identity checks (frozenset membership on enum members is
    one hash of a cached identity hash).
    """
    fast = spec.compile()
    cls.SPEC = spec
    cls._silent_write = fast.silent_write
    cls._silent_next = fast.silent_next
    cls._upgrade_states = fast.upgrade_states
    cls._ward_states = fast.ward_states
    return cls
