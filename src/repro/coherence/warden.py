"""The WARDen protocol: MESI + the W state + reconciliation (paper §5).

Behavioural summary (Fig. 5):

* The directory tracks active WARD regions (globally, via the region CAM of
  §6.1, modeled by :class:`~repro.coherence.regions.RegionTable`).
* A directory request for a block whose address lies in an active region
  moves the block to the ``W`` state.  While in ``W``, every GetS/GetM/Upgrade
  is approved immediately with data furnished by the shared cache — no
  invalidations, no downgrades, no forwards.  Each requesting core receives
  an effectively-exclusive copy (private state ``W``: silent local reads and
  writes thereafter), so false and benign-true sharing cost nothing.
* Private caches are unmodified: they track written sectors (byte-granular
  masks, §6.1) exactly as a sectored MESI cache would.
* When software removes a region, reconciliation (§5.2) merges each W
  block: single-sharer blocks convert in place to E/M; multi-sharer blocks
  write their written sectors back to the home LLC (any arrival order is
  correct by WAW-apathy) and the surviving copies downgrade to S.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.common.errors import ProtocolError
from repro.common.stats import CoherenceStats
from repro.common.types import AccessType, CoherenceState, MessageType, block_range
from repro.coherence.directory import DirEntry
from repro.coherence.mesi import _MESI_HANDLERS, MESIProtocol
from repro.coherence.regions import RegionTable, WardRegion
from repro.coherence.registry import coherence_protocol
from repro.coherence.spec import ProtocolSpec, Row, TransitionTable
from repro.mem.block import CacheBlock

I = CoherenceState.INVALID
S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED
W = CoherenceState.WARD


def reconcile_plan(masks):
    """Merge decision for one W block's private copies (§5.2).

    ``masks`` is the ordered list of written-sector masks, one per private
    copy (ascending core order).  Returns ``(union_mask, true_sharing,
    keep_flags)`` where ``keep_flags[i]`` says copy ``i`` is fully current
    (it wrote every written sector, or nothing was written) and may be
    retained in state S; the rest are stale and must be invalidated.

    Pure so the object protocol and the vectorized replay kernel share one
    definition of the merge — they cannot drift apart.
    """
    union_mask = 0
    true_sharing = False
    seen = 0
    for mask in masks:
        if mask & seen:
            true_sharing = True
        seen |= mask
        union_mask |= mask
    keep_flags = [mask == union_mask for mask in masks]
    return union_mask, true_sharing, keep_flags


WARDEN_SPEC = ProtocolSpec(
    name="WARDen",
    states=("I", "S", "E", "M", "W"),
    initial="I",
    ward_states=("W",),
    handlers={
        **_MESI_HANDLERS,
        "ward_grant": "_ward_grant",
        "enter_ward": "_enter_ward",
        "reconcile": "_reconcile_block",
        "flush": "_flush_ward_copy",
    },
    tables=(
        TransitionTable(
            role="cache",
            events=(
                "load", "store", "Fwd-GetS", "Fwd-GetM", "Inv", "Evict",
                "Reconcile",
            ),
            rows=(
                # MESI portion: unchanged outside active regions (§5.1).
                Row("I", "load", "E", ("miss",), guard="directory I"),
                Row("I", "load", "S", ("miss",), guard="otherwise"),
                Row("I", "load", "W", ("miss",), guard="in active region"),
                Row("I", "store", "M", ("miss",)),
                Row("I", "store", "W", ("miss",), guard="in active region"),
                Row("S", "load", "S", ("silent",)),
                Row("S", "store", "M", ("upgrade",)),
                Row("S", "store", "W", ("upgrade",), guard="in active region"),
                Row("E", "load", "E", ("silent",)),
                Row("E", "store", "M", ("silent",)),
                Row("M", "load", "M", ("silent",)),
                Row("M", "store", "M", ("silent",)),
                Row("S", "Inv", "I", ("inv",)),
                Row("E", "Fwd-GetS", "S", ("fwd",)),
                Row("M", "Fwd-GetS", "S", ("fwd", "writeback")),
                Row("E", "Fwd-GetM", "I", ("fwd",)),
                Row("M", "Fwd-GetM", "I", ("fwd",)),
                Row("S", "Evict", "I", ("evict",)),
                Row("E", "Evict", "I", ("evict",)),
                Row("M", "Evict", "I", ("evict", "writeback")),
                # WARD portion (Fig. 5): silent local reads and writes;
                # evictions pre-pay reconciliation (§5.3); region removal
                # merges written sectors back (§5.2).
                Row("W", "load", "W", ("silent",)),
                Row("W", "store", "W", ("silent",)),
                Row("W", "Evict", "I", ("flush", "writeback"), guard="dirty"),
                Row("W", "Evict", "I", ("flush",), guard="clean"),
                Row("W", "Reconcile", "S", ("reconcile",),
                    guard="copy fully current"),
                Row("W", "Reconcile", "I", ("reconcile",),
                    guard="stale copy"),
            ),
            impossible=(
                ("I", "Fwd-GetS"), ("I", "Fwd-GetM"), ("I", "Inv"),
                ("I", "Evict"), ("E", "Inv"), ("M", "Inv"),
                ("S", "Fwd-GetS"), ("S", "Fwd-GetM"),
                # the directory never bothers a W copy until reconciliation
                ("W", "Fwd-GetS"), ("W", "Fwd-GetM"), ("W", "Inv"),
                ("I", "Reconcile"), ("S", "Reconcile"),
                ("E", "Reconcile"), ("M", "Reconcile"),
            ),
        ),
        TransitionTable(
            role="directory",
            events=("GetS", "GetM", "Upgrade", "Put", "Region-Remove"),
            rows=(
                Row("I", "GetS", "E", ("fetch", "install")),
                Row("I", "GetM", "M", ("fetch", "install")),
                Row("S", "GetS", "S", ("fetch", "install")),
                Row("S", "GetM", "M", ("inv", "fetch", "install")),
                Row("S", "Upgrade", "M", ("inv",)),
                Row("E", "GetS", "S", ("fwd",)),
                Row("M", "GetS", "S", ("fwd", "writeback")),
                Row("E", "GetM", "M", ("fwd",)),
                Row("M", "GetM", "M", ("fwd",)),
                Row("S", "Put", "S", ("evict",), guard="sharers remain"),
                Row("S", "Put", "I", ("evict",), guard="last sharer"),
                Row("E", "Put", "I", ("evict",)),
                Row("M", "Put", "I", ("evict", "writeback")),
                # Any request on an in-region block enters W first; existing
                # copies are absorbed rather than invalidated (§5.1).
                Row("I", "GetS", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("I", "GetM", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("S", "GetS", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("S", "GetM", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("E", "GetS", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("E", "GetM", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("M", "GetS", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("M", "GetM", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                Row("S", "Upgrade", "W", ("enter_ward", "ward_grant"),
                    guard="in active region"),
                # W entries approve everything immediately (§5.1).
                Row("W", "GetS", "W", ("ward_grant",)),
                Row("W", "GetM", "W", ("ward_grant",)),
                Row("W", "Upgrade", "W", ("ward_grant",)),
                Row("W", "Put", "W", ("flush",)),
                Row("W", "Region-Remove", "S", ("reconcile",),
                    guard="current copies remain"),
                Row("W", "Region-Remove", "I", ("reconcile",),
                    guard="no current copies"),
            ),
            impossible=(
                ("I", "Put"), ("I", "Upgrade"),
                ("E", "Upgrade"), ("M", "Upgrade"),
                ("I", "Region-Remove"), ("S", "Region-Remove"),
                ("E", "Region-Remove"), ("M", "Region-Remove"),
            ),
        ),
    ),
)


@coherence_protocol("warden", WARDEN_SPEC)
class WARDenProtocol(MESIProtocol):
    """MESI augmented with the WARD state; full MESI behaviour is preserved
    for every address outside an active WARD region (legacy apps run
    unencumbered, §5.1).

    The inherited :meth:`~MESIProtocol.try_fast_access` epoch fast path is
    correct here without modification: a private W-state hit generates no
    directory traffic *by design* (silent local reads and writes until
    reconciliation, §5.2), so W hits are epoch-safe exactly like M/E hits;
    region membership only matters on the directory paths, which the fast
    path never takes (misses and S-store upgrades return None-must-slow-path
    before any region lookup would be consulted).
    """

    name = "WARDen"
    supports_ward = True
    avoids_invalidations = True

    def __init__(
        self,
        config: MachineConfig,
        stats: Optional[CoherenceStats] = None,
        tracer=None,
    ):
        super().__init__(config, stats, tracer=tracer)
        self.region_table = RegionTable(capacity=config.max_ward_regions)
        #: total cycles spent by directories reconciling blocks (overlappable)
        self.reconcile_cycles = 0

    # ------------------------------------------------------------------
    # Region management ("Add/Remove Region" instructions, §6.1)
    # ------------------------------------------------------------------
    def add_region(self, start: int, end: int) -> Optional[WardRegion]:
        """Activate a WARD region; returns None when the region CAM is full
        (the addresses then simply stay under normal MESI — always safe)."""
        region = self.region_table.add(start, end)
        tracer = self.tracer
        if region is not None:
            self.stats.ward_region_adds += 1
            self.stats.count_message(MessageType.REGION_ADD, "intra")
            if tracer.enabled:
                tracer.region("add", region.region_id, start, end)
        elif tracer.enabled:
            tracer.region("reject", -1, start, end)
        return region

    def remove_region(self, region: Optional[WardRegion]) -> int:
        """Deactivate a region and reconcile its W blocks (§5.2).

        Returns the directory cycles consumed — the caller may overlap them
        with execution (§6.1 finds ~1 block per 50k cycles in practice).
        """
        if region is None:
            return 0
        self.region_table.remove(region)
        self.stats.ward_region_removes += 1
        self.stats.count_message(MessageType.REGION_REMOVE, "intra")
        reconciled = 0
        for block_addr in sorted(region.blocks):
            entry = self.directory_for(block_addr).peek(block_addr)
            if entry is None or entry.state is not W:
                continue  # already evicted/reconciled
            if self.region_table.contains(block_addr):
                continue  # still covered by an overlapping active region
            self._reconcile_block(entry, region.region_id)
            reconciled += 1
        cycles = reconciled * self.config.reconcile_cycles_per_block
        self.reconcile_cycles += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.region(
                "remove", region.region_id, region.start, region.end,
                blocks=reconciled, reconcile_cycles=cycles,
            )
        return cycles

    # ------------------------------------------------------------------
    # Reconciliation (§5.2): no sharing / false sharing / true sharing
    # ------------------------------------------------------------------
    def _reconcile_block(self, entry: DirEntry, region_id: int = -1) -> None:
        """Merge one W block back to the MESI side (§5.2/§6.1).

        Every copy's written sectors are written back to the home LLC and
        merged in arrival order (any order is correct: by the WARD property
        each sector was written by at most one thread — false sharing — or
        the WAWs are apathetic — true sharing).  The LLC ends up holding the
        merged block, so future readers anywhere get a shared-cache hit
        instead of downgrading some private cache — the §5.3 handoff.

        Private copies that are fully current (they wrote every written
        sector, or nothing was written at all) are retained, downgraded to
        S, so the writing core's own subsequent reads still hit locally.
        Copies missing another core's sectors are stale and must be
        invalidated.
        """
        home = self.home(entry.addr)
        copies = []
        for core in sorted(entry.sharers):
            block = self.l2[core].peek(entry.addr)
            if block is None:
                continue  # evicted (and flushed) earlier
            copies.append((core, block))

        self.stats.reconciled_blocks += 1
        union_mask, true_sharing, keep_flags = reconcile_plan(
            [block.written_mask for _, block in copies]
        )

        keep = set()
        writebacks = 0
        for (core, block), current in zip(copies, keep_flags):
            if block.written_mask:
                self.noc.core_to_home(core, home, MessageType.RECONCILE)
                self.stats.writebacks += 1
                writebacks += 1
                block.clear_written()
            if current:
                block.state = S
                keep.add(core)
            else:
                block.state = I
                self.l2[core].invalidate(entry.addr)
                self.l1[core].invalidate(entry.addr)
        if union_mask:
            self._llc_fill(entry.addr)
        if len(copies) > 1:
            self.stats.reconciled_shared_blocks += 1
            if true_sharing:
                self.stats.reconciled_true_sharing_blocks += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.reconcile(
                entry.addr, region_id, len(copies), true_sharing, writebacks
            )
        entry.owner = None
        entry.sharers = keep
        entry.set_state(S if keep else I, tracer)

    # ------------------------------------------------------------------
    # Directory dispatch: intercept WARD blocks, else defer to MESI
    # ------------------------------------------------------------------
    def _handle_at_directory(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        atype: AccessType,
        mask: int,
    ) -> int:
        if entry.state is W:
            return self._ward_grant(core, block_addr, entry, mask)
        if self.region_table.contains(block_addr):
            self._enter_ward(block_addr, entry)
            return self._ward_grant(core, block_addr, entry, mask)
        return super()._handle_at_directory(core, block_addr, entry, atype, mask)

    def _handle_upgrade_at_dir(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        block: CacheBlock,
        mask: int,
    ) -> int:
        if entry.state is W or self.region_table.contains(block_addr):
            if entry.state is not W:
                self._enter_ward(block_addr, entry)
            # The requester's own S copy becomes its W copy; no data needed.
            latency = self.noc.home_to_core(self.home(block_addr), core, MessageType.DATA_E)
            entry.sharers.add(core)
            self._register_ward_block(block_addr)
            tracer = self.tracer
            if tracer.enabled:
                tracer.transition(f"L2-{core}", block_addr, "S", "W")
            block.state = W
            block.mark_written(mask)
            self.stats.ward_accesses += 1
            return latency
        return super()._handle_upgrade_at_dir(core, block_addr, entry, block, mask)

    # ------------------------------------------------------------------
    def _enter_ward(self, block_addr: int, entry: DirEntry) -> None:
        """Move a directory entry into W, absorbing any existing copies.

        Existing private copies stay valid in their caches (the directory
        simply stops bothering them); their cores join the sharer list so
        reconciliation can find their written sectors later.
        """
        if entry.owner is not None:
            entry.sharers.add(entry.owner)
            owned = self.l2[entry.owner].peek(block_addr)
            if owned is not None:
                tracer = self.tracer
                if tracer.enabled:
                    tracer.transition(
                        f"L2-{entry.owner}", block_addr, owned.state.value, "W"
                    )
                owned.state = W
        entry.owner = None
        entry.set_state(W, self.tracer)
        self._register_ward_block(block_addr)

    def _register_ward_block(self, block_addr: int) -> None:
        for region in self.region_table.regions_containing(block_addr):
            region.blocks.add(block_addr)

    def _ward_grant(self, core: int, block_addr: int, entry: DirEntry, mask: int) -> int:
        """Approve a request on a W block: data from the shared cache, an
        effectively-exclusive copy to the requester, nobody else disturbed."""
        latency = self._fetch_data_at_home(block_addr)
        latency += self.noc.home_to_core(self.home(block_addr), core, MessageType.DATA_E)
        entry.sharers.add(core)
        self._register_ward_block(block_addr)
        self._install_private(core, block_addr, W, mask)
        self.stats.ward_accesses += 1
        return latency

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        for directory in self.dirs:
            for entry in directory.entries():
                if entry.state is not W:
                    continue
                for sharer in entry.sharers:
                    block = self.l2[sharer].peek(entry.addr)
                    if block is not None and block.state is I:
                        raise ProtocolError(
                            f"stale invalid sharer {sharer} at {entry.addr:#x}"
                        )
        if len(self.region_table) > self.region_table.capacity:
            raise ProtocolError("region table exceeded its CAM capacity")


def blocks_in_region(start: int, end: int, block_size: int):
    """Convenience: every block base overlapped by region ``[start, end)``."""
    return block_range(start, end - start, block_size)
