"""Full-map directory state, one logical directory per socket (home-sliced).

Directory entries follow the paper's Fig. 5 FSA states.  The map is
unbounded (a full-map directory with no entry evictions) — a standard
simulator simplification that errs *against* WARDen, since a finite
directory would add extra invalidations to the MESI baseline.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.common.errors import ProtocolError
from repro.common.types import CoherenceState


class DirEntry:
    """Directory view of one block: state, owner, sharer set."""

    __slots__ = ("addr", "state", "owner", "sharers")

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.state = CoherenceState.INVALID
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()

    def set_state(self, new_state: CoherenceState, tracer=None) -> None:
        """Transition the entry, emitting a directory-side trace event.

        Protocols route their Fig. 5 FSA transitions through here so an
        installed tracer sees the directory timeline; with no tracer (or a
        disabled one) this is just the assignment.
        """
        if tracer is not None and tracer.enabled and new_state is not self.state:
            tracer.transition(
                "dir", self.addr, self.state.value, new_state.value
            )
        self.state = new_state

    def check_invariants(self) -> None:
        """SWMR-style directory sanity (used heavily by tests)."""
        if self.state in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
            if self.owner is None:
                raise ProtocolError(f"{self} owned state without owner")
            if self.sharers and self.sharers != {self.owner}:
                raise ProtocolError(f"{self} owner coexists with sharers")
        elif self.state is CoherenceState.SHARED:
            if not self.sharers:
                raise ProtocolError(f"{self} shared without sharers")
            if self.owner is not None:
                raise ProtocolError(f"{self} shared with an owner")
        elif self.state is CoherenceState.OWNED:
            # MOESI: a dirty owner may coexist with clean sharers, but the
            # owner is tracked separately, never in the sharer set.
            if self.owner is None:
                raise ProtocolError(f"{self} owned state without owner")
            if self.owner in self.sharers:
                raise ProtocolError(f"{self} owner listed as sharer")
        elif self.state is CoherenceState.INVALID:
            if self.owner is not None or self.sharers:
                raise ProtocolError(f"{self} invalid but tracked copies exist")
        # WARD: any sharer set is legal, no owner.
        elif self.state is CoherenceState.WARD and self.owner is not None:
            raise ProtocolError(f"{self} WARD entries have no owner")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirEntry({self.addr:#x}, {self.state.value}, owner={self.owner}, "
            f"sharers={sorted(self.sharers)})"
        )


class Directory:
    """Home directory for the blocks of one socket."""

    def __init__(self, socket: int) -> None:
        self.socket = socket
        self._entries: Dict[int, DirEntry] = {}

    def entry(self, block_addr: int) -> DirEntry:
        e = self._entries.get(block_addr)
        if e is None:
            e = DirEntry(block_addr)
            self._entries[block_addr] = e
        return e

    def peek(self, block_addr: int) -> Optional[DirEntry]:
        return self._entries.get(block_addr)

    def entries(self):
        return self._entries.values()

    def __len__(self) -> int:
        return len(self._entries)
