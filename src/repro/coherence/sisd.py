"""SI/SD: self-invalidation + self-downgrade, no directory state at all.

The third design point the paper positions WARDen against (§2/§8's
DeNovo/VIPS lineage): instead of a directory tracking sharers, each core
keeps whatever copies it likes and *itself* restores coherence at
synchronization points — dirty lines are self-downgraded (written
sectors pushed to the home LLC) and cached copies self-invalidated, so
the next reader always refetches current data.  Data-race-free programs
observe exactly the same values as under MESI; the protocol simply never
sends an invalidation or downgrade to another core.

Mapping onto this codebase's WARD machinery: the runtime's Add/Remove
Region instructions *are* the synchronization annotations.  Blocks
touched inside an active region are tagged W; removing the region is the
sync point that self-downgrades/self-invalidates them.  Atomics (RMWs)
bypass the private caches and execute at the home LLC slice, since
without a directory a private copy is never provably exclusive.

Invariant (checked by :meth:`SISDProtocol.check_invariants` and the
protocol fuzzer): directories stay empty forever, and ``invalidations``
and ``downgrades`` stay zero — nothing ever disturbs a remote cache.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.common.errors import ProtocolError
from repro.common.stats import CoherenceStats
from repro.common.types import AccessType, CoherenceState, MessageType
from repro.coherence.mesi import MESIProtocol
from repro.coherence.regions import RegionTable, WardRegion
from repro.coherence.registry import coherence_protocol
from repro.coherence.spec import ProtocolSpec, Row, TransitionTable
from repro.mem.block import CacheBlock

I = CoherenceState.INVALID
S = CoherenceState.SHARED
M = CoherenceState.MODIFIED
W = CoherenceState.WARD

_LOAD = AccessType.LOAD
_RMW = AccessType.RMW
_GET_S = MessageType.GET_S
_GET_M = MessageType.GET_M
_DATA = MessageType.DATA
_WB_DATA = MessageType.WB_DATA

SISD_SPEC = ProtocolSpec(
    name="SI/SD",
    states=("I", "S", "M", "W"),
    initial="I",
    ward_states=("W",),
    handlers={
        "remote_rmw": "_rmw_at_home",
        "self_downgrade": "_self_downgrade",
        "self_invalidate": "_self_invalidate",
        "evict": "_evict_private",
        "writeback": "_llc_fill",
    },
    tables=(
        # One table: there is no directory FSA — the home side is just the
        # LLC slice serving data.
        TransitionTable(
            role="cache",
            events=("load", "store", "rmw", "sync", "Evict"),
            rows=(
                Row("I", "load", "S", ("miss",), guard="outside regions"),
                Row("I", "load", "W", ("miss",), guard="in active region"),
                Row("I", "store", "M", ("miss",), guard="outside regions"),
                Row("I", "store", "W", ("miss",), guard="in active region"),
                Row("I", "rmw", "I", ("remote_rmw",)),
                Row("S", "load", "S", ("silent",)),
                # No directory to ask: a store on any cached copy completes
                # locally; DRF + self-invalidation makes that safe.
                Row("S", "store", "M", ("silent",)),
                Row("S", "rmw", "I", ("self_invalidate", "remote_rmw")),
                Row("M", "load", "M", ("silent",)),
                Row("M", "store", "M", ("silent",)),
                Row("M", "rmw", "I",
                    ("self_downgrade", "self_invalidate", "remote_rmw")),
                Row("W", "load", "W", ("silent",)),
                Row("W", "store", "W", ("silent",)),
                Row("W", "rmw", "I",
                    ("self_downgrade", "self_invalidate", "remote_rmw"),
                    guard="dirty"),
                Row("W", "rmw", "I", ("self_invalidate", "remote_rmw"),
                    guard="clean"),
                # sync = the covering region is removed.
                Row("W", "sync", "I", ("self_downgrade", "self_invalidate"),
                    guard="dirty"),
                Row("W", "sync", "I", ("self_invalidate",), guard="clean"),
                Row("W", "sync", "W", (),
                    guard="still covered by another region"),
                Row("S", "Evict", "I", ("evict",)),
                Row("M", "Evict", "I", ("evict", "writeback")),
                Row("W", "Evict", "I", ("evict", "writeback"), guard="dirty"),
                Row("W", "Evict", "I", ("evict",), guard="clean"),
            ),
            impossible=(
                # sync only ever finds W copies; nothing evicts an I slot.
                ("I", "sync"), ("S", "sync"), ("M", "sync"), ("I", "Evict"),
            ),
        ),
    ),
)


@coherence_protocol("sisd", SISD_SPEC)
class SISDProtocol(MESIProtocol):
    """Self-invalidation/self-downgrade.  Inherits the MESI cache plumbing
    (hierarchy, NoC, LLC/DRAM fetch, the generalized hit paths) but never
    creates directory state: misses are served by the home LLC slice
    directly, evictions are silent unless dirty, and coherence work
    happens only at sync points, locally."""

    name = "SI/SD"
    supports_ward = True
    avoids_invalidations = True

    def __init__(
        self,
        config: MachineConfig,
        stats: Optional[CoherenceStats] = None,
        tracer=None,
    ):
        super().__init__(config, stats, tracer=tracer)
        self.region_table = RegionTable(capacity=config.max_ward_regions)
        #: total cycles spent self-invalidating at sync points (overlappable,
        #: same accounting slot as WARDen's reconciliation)
        self.sync_cycles = 0

    # ------------------------------------------------------------------
    # Region (synchronization) interface
    # ------------------------------------------------------------------
    def add_region(self, start: int, end: int) -> Optional[WardRegion]:
        """Mark ``[start, end)`` as inside a synchronization epoch.

        Copies already cached are tagged W so the closing sync finds them;
        a full CAM means the addresses just stay on the plain SI/SD paths
        (safe — they self-invalidate at their next RMW/eviction instead).
        """
        region = self.region_table.add(start, end)
        tracer = self.tracer
        if region is not None:
            self.stats.ward_region_adds += 1
            self.stats.count_message(MessageType.REGION_ADD, "intra")
            if tracer.enabled:
                tracer.region("add", region.region_id, start, end)
            for core in range(self.config.num_cores):
                for block in list(self.l2[core].blocks()):
                    if start <= block.addr < end and block.state is not W:
                        if tracer.enabled:
                            tracer.transition(
                                f"L2-{core}", block.addr,
                                block.state.value, "W",
                            )
                        block.state = W
        elif tracer.enabled:
            tracer.region("reject", -1, start, end)
        return region

    def remove_region(self, region: Optional[WardRegion]) -> int:
        """Close a synchronization epoch: self-downgrade every dirty W copy
        in the region and self-invalidate all of them, on every core."""
        if region is None:
            return 0
        self.region_table.remove(region)
        self.stats.ward_region_removes += 1
        self.stats.count_message(MessageType.REGION_REMOVE, "intra")
        invalidated = 0
        for core in range(self.config.num_cores):
            doomed = [
                block
                for block in list(self.l2[core].blocks())
                if block.state is W
                and region.start <= block.addr < region.end
                and not self.region_table.contains(block.addr)
            ]
            for block in doomed:
                self._self_invalidate(core, block)
                invalidated += 1
        cycles = invalidated * self.config.reconcile_cycles_per_block
        self.sync_cycles += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.region(
                "remove", region.region_id, region.start, region.end,
                blocks=invalidated, reconcile_cycles=cycles,
            )
        return cycles

    # ------------------------------------------------------------------
    # SI and SD primitives (purely local: no remote cache is touched)
    # ------------------------------------------------------------------
    def _self_downgrade(self, core: int, block: CacheBlock) -> None:
        """SD: push the copy's written sectors to the home LLC slice."""
        if not block.written_mask:
            return
        self.noc.core_to_home(core, self.home(block.addr), _WB_DATA)
        self.stats.writebacks += 1
        self.stats.extra["self_downgrades"] += 1
        self._llc_fill(block.addr)
        block.clear_written()

    def _self_invalidate(self, core: int, block: CacheBlock) -> None:
        """SI: flush if dirty, then drop the local copy."""
        self._self_downgrade(core, block)
        self.stats.extra["self_invalidations"] += 1
        if self.tracer.enabled:
            self.tracer.transition(
                f"L2-{core}", block.addr, block.state.value, "I"
            )
        self.l2[core].invalidate(block.addr)
        self.l1[core].invalidate(block.addr)
        block.state = I

    # ------------------------------------------------------------------
    # The access paths
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, size: int, atype: AccessType) -> int:
        if atype is _RMW:
            return self._rmw_at_home(core, addr, size)
        return super().access(core, addr, size, atype)

    def _rmw_at_home(self, core: int, addr: int, size: int) -> int:
        """Atomics execute at the home LLC slice (there is no exclusivity
        a private copy could provide); any local copy is flushed first so
        the home sees current data."""
        bs = self._block_size
        block_addr = addr - (addr % bs)
        stats = self.stats
        stats.total_accesses += 1
        latency = self._l1_latency
        block = self.l1[core].lookup(block_addr)
        if block is None:
            latency += self._l2_latency
            block = self.l2[core].lookup(block_addr)
        if block is not None:
            self._self_invalidate(core, block)
        home = self.home(block_addr)
        latency += self.noc.core_to_home(core, home, _GET_M)
        latency += self.config.l3.latency
        latency += self._fetch_data_at_home(block_addr)
        latency += self.noc.home_to_core(home, core, _DATA)
        return latency

    def _miss(self, core: int, block_addr: int, atype: AccessType, mask: int) -> int:
        """Miss path: data straight from the home LLC slice.  No directory
        entry is created or consulted."""
        home = self.home(block_addr)
        mtype = _GET_M if atype is not _LOAD else _GET_S
        latency = self.noc.core_to_home(core, home, mtype)
        latency += self.config.l3.latency
        latency += self._fetch_data_at_home(block_addr)
        latency += self.noc.home_to_core(home, core, _DATA)
        if self.region_table.contains(block_addr):
            state = W
            self.stats.ward_accesses += 1
        elif atype is _LOAD:
            state = S
        else:
            state = M
        self._install_private(core, block_addr, state, mask)
        return latency

    # ------------------------------------------------------------------
    def _evict_private(self, core: int, block: CacheBlock) -> None:
        # No directory to keep exact: dirty copies self-downgrade, clean
        # ones vanish without a message.
        self.l1[core].invalidate(block.addr)
        self._self_downgrade(core, block)
        block.state = I

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        for directory in self.dirs:
            if len(directory):
                raise ProtocolError(
                    "SI/SD created directory state "
                    f"({len(directory)} entries on socket {directory.socket})"
                )
        if self.stats.invalidations or self.stats.downgrades:
            raise ProtocolError(
                "SI/SD sent remote invalidations/downgrades "
                f"(inv={self.stats.invalidations}, dg={self.stats.downgrades})"
            )
        for core in range(self.config.num_cores):
            for block in self.l2[core].blocks():
                if block.state not in (S, M, W):
                    raise ProtocolError(
                        f"core {core} holds {block.addr:#x} in "
                        f"non-SI/SD state {block.state}"
                    )
                if block.state is W and not self.region_table.contains(
                    block.addr
                ):
                    raise ProtocolError(
                        f"core {core} holds W copy of {block.addr:#x} "
                        "outside every active region"
                    )
        if len(self.region_table) > self.region_table.capacity:
            raise ProtocolError("region table exceeded its CAM capacity")
