"""Directory-based MESI protocol (the paper's baseline, §5 / Fig. 5).

Structure of the modeled hierarchy (matching Table 2):

* per-core private L1 + L2 (inclusive; coherence state is held once per
  ``(core, block)`` on a :class:`CacheBlock` shared by both tag arrays),
* one shared LLC slice + full-map directory per socket, home-interleaved
  by block address,
* DRAM behind each LLC slice.

The public entry point is :meth:`MESIProtocol.access`, which performs the
full coherence transaction for one load/store/RMW and returns its latency in
cycles.  Stores are issued eagerly (TSO store buffer timing is applied by the
core model, not here).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ProtocolError
from repro.common.stats import CoherenceStats
from repro.common.types import (
    AccessType,
    CoherenceState,
    MessageType,
    sector_mask,
)
from repro.coherence.directory import Directory, DirEntry
from repro.coherence.registry import coherence_protocol
from repro.coherence.spec import ProtocolSpec, Row, TransitionTable
from repro.mem.block import CacheBlock
from repro.mem.cache import SetAssocCache
from repro.mem.interconnect import Interconnect, LinkClass
from repro.obs.tracer import Tracer

I = CoherenceState.INVALID
S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED
W = CoherenceState.WARD

# enum member access through the class is a descriptor call; the fast path
# runs hundreds of thousands of times, so bind the members once
_LOAD = AccessType.LOAD
_RMW = AccessType.RMW
_GET_S = MessageType.GET_S
_GET_M = MessageType.GET_M
_UPGRADE = MessageType.UPGRADE
_PUT_M = MessageType.PUT_M
_FWD_GET_S = MessageType.FWD_GET_S
_FWD_GET_M = MessageType.FWD_GET_M
_INV = MessageType.INV
_INV_ACK = MessageType.INV_ACK
_DATA = MessageType.DATA
_DATA_E = MessageType.DATA_E
_WB_DATA = MessageType.WB_DATA


def llc_config(config: MachineConfig) -> CacheConfig:
    """Geometry of one socket's shared LLC slice.

    Table 2 gives the L3 size *per core*; a socket's slice aggregates the
    per-core allocations.  Shared with the replay kernel so both sides
    derive the same slice geometry from one rule.
    """
    return CacheConfig(
        size_bytes=config.l3.size_bytes * config.cores_per_socket,
        associativity=config.l3.associativity,
        block_size=config.block_size,
        latency=config.l3.latency,
    )


#: handler mapping shared by the MESI-family specs: action verb -> the
#: method that implements it (protocol-lint verifies these resolve)
_MESI_HANDLERS = {
    "inv": "_invalidate_sharers",
    "fwd": "_forward_to_owner",
    "evict": "_evict_private",
    "fetch": "_fetch_data_at_home",
    "install": "_install_private",
    "writeback": "_llc_fill",
}

MESI_SPEC = ProtocolSpec(
    name="MESI",
    states=("I", "S", "E", "M"),
    initial="I",
    handlers=_MESI_HANDLERS,
    tables=(
        TransitionTable(
            role="cache",
            events=("load", "store", "Fwd-GetS", "Fwd-GetM", "Inv", "Evict"),
            rows=(
                Row("I", "load", "E", ("miss",), guard="directory I"),
                Row("I", "load", "S", ("miss",), guard="otherwise"),
                Row("I", "store", "M", ("miss",)),
                Row("S", "load", "S", ("silent",)),
                Row("S", "store", "M", ("upgrade",)),
                Row("E", "load", "E", ("silent",)),
                Row("E", "store", "M", ("silent",)),
                Row("M", "load", "M", ("silent",)),
                Row("M", "store", "M", ("silent",)),
                Row("S", "Inv", "I", ("inv",)),
                Row("E", "Fwd-GetS", "S", ("fwd",)),
                Row("M", "Fwd-GetS", "S", ("fwd", "writeback")),
                Row("E", "Fwd-GetM", "I", ("fwd",)),
                Row("M", "Fwd-GetM", "I", ("fwd",)),
                Row("S", "Evict", "I", ("evict",)),
                Row("E", "Evict", "I", ("evict",)),
                Row("M", "Evict", "I", ("evict", "writeback")),
            ),
            impossible=(
                # the full-map directory is exact: nothing reaches an I copy,
                # owners see Fwd-* (never plain Inv), sharers are never the
                # target of a forward
                ("I", "Fwd-GetS"), ("I", "Fwd-GetM"), ("I", "Inv"),
                ("I", "Evict"), ("E", "Inv"), ("M", "Inv"),
                ("S", "Fwd-GetS"), ("S", "Fwd-GetM"),
            ),
        ),
        TransitionTable(
            role="directory",
            events=("GetS", "GetM", "Upgrade", "Put"),
            rows=(
                Row("I", "GetS", "E", ("fetch", "install")),
                Row("I", "GetM", "M", ("fetch", "install")),
                Row("S", "GetS", "S", ("fetch", "install")),
                Row("S", "GetM", "M", ("inv", "fetch", "install")),
                Row("S", "Upgrade", "M", ("inv",)),
                Row("E", "GetS", "S", ("fwd",)),
                Row("M", "GetS", "S", ("fwd", "writeback")),
                Row("E", "GetM", "M", ("fwd",)),
                Row("M", "GetM", "M", ("fwd",)),
                Row("S", "Put", "S", ("evict",), guard="sharers remain"),
                Row("S", "Put", "I", ("evict",), guard="last sharer"),
                Row("E", "Put", "I", ("evict",)),
                Row("M", "Put", "I", ("evict", "writeback")),
            ),
            impossible=(
                ("I", "Put"), ("I", "Upgrade"),
                ("E", "Upgrade"), ("M", "Upgrade"),
            ),
        ),
    ),
)


@coherence_protocol("mesi", MESI_SPEC)
class MESIProtocol:
    """The MESI baseline: every sharing event pays invalidations/downgrades.

    The hit paths dispatch on class-level tables compiled from the
    protocol's :class:`~repro.coherence.spec.ProtocolSpec` (installed by
    the :func:`~repro.coherence.registry.coherence_protocol` decorator):
    ``_silent_write`` (states whose store completes in the private cache),
    ``_silent_next`` (the silent store transition, E -> M here),
    ``_upgrade_states`` (stores that must ask the directory), and
    ``_ward_states`` (states counted as WARD coverage).  Subclasses swap
    the spec, not the code: WARDen adds W to the silent set, MOESI routes
    O through the upgrade set, SI/SD makes every valid state silent.
    """

    name = "MESI"
    supports_ward = False
    #: True for protocols engineered to dodge invalidation/downgrade storms
    #: (WARDen, SI/SD); the conformance harness only applies its event-count
    #: slack check when comparing such a protocol against one that is not.
    avoids_invalidations = False

    def __init__(
        self,
        config: MachineConfig,
        stats: Optional[CoherenceStats] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config
        self.stats = stats if stats is not None else CoherenceStats()
        # hoisted constants for the access hot path
        self._block_size = config.block_size
        self._l1_latency = config.l1.latency
        self._l2_latency = config.l2.latency
        self._num_sockets = config.num_sockets
        #: event bus shared with the machine; a standalone (disabled) one
        #: when the protocol is constructed directly
        self.tracer = tracer if tracer is not None else Tracer()
        self.noc = Interconnect(config, self.stats, tracer=self.tracer)
        ncores = config.num_cores
        self.l1: List[SetAssocCache] = []
        self.l2: List[SetAssocCache] = []
        for core in range(ncores):
            self.l1.append(SetAssocCache(config.l1, f"L1-{core}"))
            self.l2.append(
                SetAssocCache(
                    config.l2,
                    f"L2-{core}",
                    on_evict=self._make_evict_hook(core),
                    tracer=self.tracer,
                )
            )
        llc_cfg = llc_config(config)
        self.llc: List[SetAssocCache] = [
            SetAssocCache(llc_cfg, f"L3-{s}") for s in range(config.num_sockets)
        ]
        self.dirs: List[Directory] = [
            Directory(s) for s in range(config.num_sockets)
        ]
        #: NUMA first-touch placement map: page number -> home socket
        self._page_homes: dict = {}
        # per-core (l1, l1_sets, l1_shift, l1_mask, l2, l2_sets, l2_shift,
        # l2_mask) tuples for try_fast_access — the cache objects and their
        # set dicts are stable for the protocol's lifetime, so the fast path
        # skips the attribute chains entirely
        self._fast_meta = [
            (
                self.l1[c], self.l1[c]._sets,
                self.l1[c]._block_shift, self.l1[c]._set_mask,
                self.l2[c], self.l2[c]._sets,
                self.l2[c]._block_shift, self.l2[c]._set_mask,
            )
            for c in range(ncores)
        ]

    # ------------------------------------------------------------------
    # Topology / lookup helpers
    # ------------------------------------------------------------------
    def home(self, block_addr: int) -> int:
        """Home socket of a block: NUMA first-touch page placement when the
        allocator registered one, address-interleaved otherwise."""
        home = self._page_homes.get(block_addr >> self.PAGE_SHIFT)
        if home is not None:
            return home
        # inlined config.home_socket (hot: several calls per transaction)
        return (block_addr // self._block_size) % self._num_sockets

    PAGE_SHIFT = 6  # block-granularity placement (padded runtime words
    # would otherwise inherit a neighbour's 4 KB page home)

    def set_page_home(self, addr: int, size: int, socket: int) -> None:
        """Register first-touch NUMA placement for ``[addr, addr+size)``."""
        first = addr >> self.PAGE_SHIFT
        last = (addr + max(size, 1) - 1) >> self.PAGE_SHIFT
        for page in range(first, last + 1):
            self._page_homes.setdefault(page, socket)

    def directory_for(self, block_addr: int) -> Directory:
        return self.dirs[self.home(block_addr)]

    def dir_entry(self, block_addr: int) -> DirEntry:
        return self.directory_for(block_addr).entry(block_addr)

    def private_block(self, core: int, block_addr: int) -> Optional[CacheBlock]:
        """Non-statistical peek at a core's private copy (L2 is inclusive)."""
        return self.l2[core].peek(block_addr)

    # ------------------------------------------------------------------
    # Private-cache eviction (PutM/PutS), keeps the directory exact
    # ------------------------------------------------------------------
    def _make_evict_hook(self, core: int):
        def hook(block: CacheBlock) -> None:
            self._evict_private(core, block)

        return hook

    def _evict_private(self, core: int, block: CacheBlock) -> None:
        # L2 (inclusive) evicted the block: drop the L1 copy too.
        self.l1[core].invalidate(block.addr)
        entry = self.dir_entry(block.addr)
        home = self.home(block.addr)
        if block.state is W:
            self._flush_ward_copy(core, block, entry)
            return
        if block.state in (M, E):
            if entry.owner != core:
                raise ProtocolError(
                    f"evicting owned block {block.addr:#x} but directory "
                    f"says owner={entry.owner}"
                )
            mtype = _PUT_M if block.state is M else _PUT_M
            self.noc.core_to_home(core, home, mtype)
            if block.state is M:
                self.stats.writebacks += 1
                self._llc_fill(block.addr)
            entry.set_state(I, self.tracer)
            entry.owner = None
            entry.sharers.clear()
        elif block.state is S:
            # Explicit PutS so sharer sets stay exact (cheap control message).
            self.noc.core_to_home(core, home, _PUT_M)
            entry.sharers.discard(core)
            # Collapse to I only from dir-S: under MOESI an S copy can
            # leave while the entry is O (the owner still holds the data).
            if not entry.sharers and entry.state is S:
                entry.set_state(I, self.tracer)
        block.state = I

    def _flush_ward_copy(self, core: int, block: CacheBlock, entry: DirEntry) -> None:
        """W-state copy leaves a private cache: write back written sectors.

        §5.3 — evictions before the region ends pre-pay reconciliation.
        """
        home = self.home(block.addr)
        if block.written_mask:
            self.noc.core_to_home(core, home, _WB_DATA)
            self.stats.writebacks += 1
            self._llc_fill(block.addr)
        else:
            self.noc.core_to_home(core, home, _PUT_M)
        entry.sharers.discard(core)
        block.state = I
        block.clear_written()

    # ------------------------------------------------------------------
    # LLC / DRAM
    # ------------------------------------------------------------------
    def _llc_fill(self, block_addr: int) -> None:
        self.llc[self.home(block_addr)].install(block_addr, S)

    def _fetch_data_at_home(self, block_addr: int) -> int:
        """Latency of producing the block's data at the home LLC slice."""
        self.stats.l3_accesses += 1
        if self.llc[self.home(block_addr)].lookup(block_addr) is not None:
            return 0
        self.stats.dram_accesses += 1
        self.noc.send(_DATA, LinkClass.MEMORY)
        self._llc_fill(block_addr)
        return self.config.dram_latency

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------
    def try_fast_access(
        self, core: int, addr: int, size: int, atype: AccessType
    ) -> Optional[int]:
        """Epoch fast path: resolve the access iff it is a pure private hit.

        Returns the latency when the access completes entirely inside the
        core's private caches with no directory or interconnect message —
        exactly the hit paths of :meth:`access` — and None when the full
        transaction is required (miss, S-store upgrade, or any RMW; atomics
        go through :meth:`access` so their store-buffer fence always pairs
        with the full transaction).  A None return has NO side effects
        (non-statistical peeks only), so the caller can fall back to
        :meth:`access` without double counting; a non-None return performs
        the same statistical lookups and state changes access() would.
        """
        if atype is _RMW:
            return None
        bs = self._block_size
        block_addr = addr - (addr % bs)
        # Side-effect-free probe first (the cache probe/commit_hit protocol,
        # inlined here — this is the hottest function in the simulator);
        # committing a confirmed hit replays lookup()'s exact statistical
        # effects without a second dict walk.
        l1, sets1, shift1, mask1, l2, sets2, shift2, mask2 = self._fast_meta[core]
        if mask1 >= 0:
            idx = (block_addr >> shift1) & mask1
        else:
            idx = l1.set_index(block_addr)
        cset1 = sets1.get(idx)
        block = cset1.get(block_addr) if cset1 is not None else None
        if block is not None and block.state is I:
            block = None
        cset2 = None
        if block is None:
            if mask2 >= 0:
                idx = (block_addr >> shift2) & mask2
            else:
                idx = l2.set_index(block_addr)
            cset2 = sets2.get(idx)
            block = cset2.get(block_addr) if cset2 is not None else None
            if block is None or block.state is I:
                return None
        is_load = atype is _LOAD
        state = block.state
        if not is_load and state not in self._silent_write:
            return None  # store needs the directory (upgrade path)
        # Private hit confirmed: commit the exact effects of access().
        stats = self.stats
        stats.total_accesses += 1
        latency = self._l1_latency
        if cset2 is None:
            l1.hits += 1
            cset1.move_to_end(block_addr)
        else:
            l1.misses += 1
            latency += self._l2_latency
            l2.hits += 1
            cset2.move_to_end(block_addr)
            l1.install_block(block)
        if state in self._ward_states:
            stats.ward_accesses += 1
        if not is_load:
            nxt = self._silent_next.get(state)
            if nxt is not None:
                block.state = nxt  # silent upgrade (E -> M and kin)
                tracer = self.tracer
                if tracer.enabled:
                    tracer.transition(
                        "private", block.addr, state.value, nxt.value
                    )
            block.mark_written(sector_mask(addr, size, bs))
        return latency

    def access(self, core: int, addr: int, size: int, atype: AccessType) -> int:
        """Perform one memory access; return its latency in cycles."""
        bs = self._block_size
        block_addr = addr - (addr % bs)
        is_load = atype is _LOAD
        mask = 0 if is_load else sector_mask(addr, size, bs)
        stats = self.stats
        stats.total_accesses += 1

        latency = self._l1_latency
        block = self.l1[core].lookup(block_addr)
        if block is None:
            latency += self._l2_latency
            block = self.l2[core].lookup(block_addr)
            if block is not None:
                self.l1[core].install_block(block)

        if block is not None:
            state = block.state
            if is_load:
                # Read-hit fast path: every valid private state grants read,
                # so no permission dispatch and no messages are needed.
                if state in self._ward_states:
                    stats.ward_accesses += 1
                return latency
            if state in self._silent_write:
                if state in self._ward_states:
                    stats.ward_accesses += 1
                else:
                    nxt = self._silent_next.get(state)
                    if nxt is not None:
                        block.state = nxt  # silent upgrade (E -> M and kin)
                        tracer = self.tracer
                        if tracer.enabled:
                            tracer.transition(
                                "private", block.addr, state.value, nxt.value
                            )
                block.mark_written(mask)
                return latency
            if state in self._upgrade_states:
                return latency + self._upgrade(core, block_addr, block, mask)
            raise ProtocolError(
                f"unexpected private state {state} for {atype}"
            )
        return latency + self._miss(core, block_addr, atype, mask)

    # ------------------------------------------------------------------
    # Store upgrade: private S copy, needs M
    # ------------------------------------------------------------------
    def _upgrade(self, core: int, block_addr: int, block: CacheBlock, mask: int) -> int:
        home = self.home(block_addr)
        entry = self.dir_entry(block_addr)
        latency = self.noc.core_to_home(core, home, _UPGRADE)
        latency += self.config.l3.latency
        self.stats.l3_accesses += 1
        latency += self._handle_upgrade_at_dir(core, block_addr, entry, block, mask)
        return latency

    def _handle_upgrade_at_dir(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        block: CacheBlock,
        mask: int,
    ) -> int:
        if entry.state is not S or core not in entry.sharers:
            raise ProtocolError(
                f"upgrade for {block_addr:#x} but directory shows {entry}"
            )
        latency = self._invalidate_sharers(block_addr, entry, exclude=core)
        latency += self.noc.home_to_core(self.home(block_addr), core, _DATA_E)
        entry.set_state(M, self.tracer)
        entry.owner = core
        entry.sharers.clear()
        block.state = M
        block.mark_written(mask)
        return latency

    def _invalidate_sharers(
        self, block_addr: int, entry: DirEntry, exclude: int
    ) -> int:
        """Invalidate every sharer except ``exclude``; return added latency."""
        home = self.home(block_addr)
        tracer = self.tracer
        worst = 0
        for sharer in sorted(entry.sharers):
            if sharer == exclude:
                continue
            lat = self.noc.home_to_core(home, sharer, _INV)
            lat += self.noc.core_to_home(sharer, home, _INV_ACK)
            worst = max(worst, lat)
            self.stats.invalidations += 1
            if tracer.enabled:
                tracer.transition(f"L2-{sharer}", block_addr, "S", "I")
            victim = self.l2[sharer].invalidate(block_addr)
            self.l1[sharer].invalidate(block_addr)
            if victim is not None:
                victim.state = I
        return worst

    # ------------------------------------------------------------------
    # Full miss: GetS / GetM at the directory
    # ------------------------------------------------------------------
    def _miss(self, core: int, block_addr: int, atype: AccessType, mask: int) -> int:
        home = self.home(block_addr)
        entry = self.dir_entry(block_addr)
        mtype = _GET_M if atype is not _LOAD else _GET_S
        latency = self.noc.core_to_home(core, home, mtype)
        latency += self.config.l3.latency
        latency += self._handle_at_directory(core, block_addr, entry, atype, mask)
        return latency

    def _handle_at_directory(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        atype: AccessType,
        mask: int,
    ) -> int:
        """Directory FSA dispatch (Fig. 5, MESI portion). Returns latency."""
        home = self.home(block_addr)
        if entry.state is I:
            latency = self._fetch_data_at_home(block_addr)
            latency += self.noc.home_to_core(home, core, _DATA_E)
            if atype is not _LOAD:
                self._install_private(core, block_addr, M, mask)
                entry.set_state(M, self.tracer)
            else:
                self._install_private(core, block_addr, E, 0)
                entry.set_state(E, self.tracer)
            entry.owner = core
            entry.sharers.clear()
            return latency

        if entry.state is S:
            if atype is not _LOAD:
                inv_latency = self._invalidate_sharers(block_addr, entry, exclude=core)
                data_latency = self._fetch_data_at_home(block_addr)
                data_latency += self.noc.home_to_core(home, core, _DATA)
                self._install_private(core, block_addr, M, mask)
                entry.set_state(M, self.tracer)
                entry.owner = core
                entry.sharers.clear()
                return max(inv_latency, data_latency)
            latency = self._fetch_data_at_home(block_addr)
            latency += self.noc.home_to_core(home, core, _DATA)
            self._install_private(core, block_addr, S, 0)
            entry.sharers.add(core)
            return latency

        if entry.state in (E, M):
            return self._forward_to_owner(core, block_addr, entry, atype, mask)

        raise ProtocolError(
            f"MESI directory cannot handle state {entry.state} at {block_addr:#x}"
        )

    def _forward_to_owner(
        self,
        core: int,
        block_addr: int,
        entry: DirEntry,
        atype: AccessType,
        mask: int,
    ) -> int:
        home = self.home(block_addr)
        owner = entry.owner
        if owner is None or owner == core:
            raise ProtocolError(f"bad owner {owner} for miss by {core}: {entry}")
        owner_block = self.l2[owner].peek(block_addr)
        if owner_block is None:
            raise ProtocolError(
                f"directory says core {owner} owns {block_addr:#x} "
                "but no private copy exists"
            )
        tracer = self.tracer
        if atype is not _LOAD:
            # Fwd-GetM: invalidate the owner, transfer ownership.
            latency = self.noc.home_to_core(home, owner, _FWD_GET_M)
            latency += self.noc.core_to_core(owner, core, _DATA)
            self.stats.invalidations += 1
            if tracer.enabled:
                tracer.transition(
                    f"L2-{owner}", block_addr, owner_block.state.value, "I"
                )
            self.l2[owner].invalidate(block_addr)
            self.l1[owner].invalidate(block_addr)
            owner_block.state = I
            self._install_private(core, block_addr, M, mask)
            entry.set_state(M, tracer)
            entry.owner = core
            entry.sharers.clear()
            return latency
        # Fwd-GetS: downgrade the owner to S, write back if dirty.
        latency = self.noc.home_to_core(home, owner, _FWD_GET_S)
        latency += self.noc.core_to_core(owner, core, _DATA)
        self.stats.downgrades += 1
        if tracer.enabled:
            tracer.transition(
                f"L2-{owner}", block_addr, owner_block.state.value, "S"
            )
        if owner_block.state is M:
            self.noc.core_to_home(owner, home, _WB_DATA)
            self.stats.writebacks += 1
            self._llc_fill(block_addr)
        owner_block.state = S
        owner_block.clear_written()
        self._install_private(core, block_addr, S, 0)
        entry.set_state(S, tracer)
        entry.sharers = {owner, core}
        entry.owner = None
        return latency

    # ------------------------------------------------------------------
    def _install_private(
        self, core: int, block_addr: int, state: CoherenceState, mask: int
    ) -> CacheBlock:
        tracer = self.tracer
        if tracer.enabled:
            tracer.transition(f"L2-{core}", block_addr, "I", state.value)
        block = self.l2[core].install(block_addr, state)
        block.clear_written()
        if mask:
            block.mark_written(mask)
        self.l1[core].install_block(block)
        return block

    # ------------------------------------------------------------------
    # WARD API (no-ops for plain MESI; legacy behaviour, §5.1)
    # ------------------------------------------------------------------
    def add_region(self, start: int, end: int):
        return None

    def remove_region(self, region) -> int:
        return 0

    def check_invariants(self) -> None:
        """Cross-check directory vs private caches (test/debug helper)."""
        for directory in self.dirs:
            for entry in directory.entries():
                entry.check_invariants()
                if entry.state in (M, E):
                    block = self.l2[entry.owner].peek(entry.addr)
                    if block is None or block.state not in (M, E):
                        raise ProtocolError(f"owner copy missing for {entry}")
                    # SWMR: nobody else may hold the block.
                    for core in range(self.config.num_cores):
                        if core != entry.owner and self.l2[core].peek(entry.addr):
                            raise ProtocolError(
                                f"SWMR violated at {entry.addr:#x}: core {core} "
                                f"holds a copy alongside owner {entry.owner}"
                            )
                elif entry.state is S:
                    for sharer in entry.sharers:
                        block = self.l2[sharer].peek(entry.addr)
                        if block is None or block.state is not S:
                            raise ProtocolError(
                                f"sharer {sharer} copy wrong for {entry}"
                            )
