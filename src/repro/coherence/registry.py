"""The protocol registry: one place every harness discovers protocols from.

``Machine``, the CLI, the conformance harness, the fuzzer, the golden
corpus generator, and the replay path all resolve protocol keys here, so
registering a new protocol (a spec + a class, see
:mod:`repro.coherence.spec`) plugs it into every verification layer at
once.

Protocol modules self-register at import via :func:`coherence_protocol`;
:func:`_ensure_loaded` imports the built-in modules lazily so importing
this module never creates a cycle with them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.coherence.spec import ProtocolSpec, install_spec
from repro.common.errors import UnknownProtocolError

_REGISTRY: Dict[str, type] = {}


def coherence_protocol(key: str, spec: ProtocolSpec):
    """Class decorator: install ``spec``'s compiled fast path and register
    the class under ``key`` (the CLI/cache-key spelling, e.g. ``"moesi"``)."""

    def wrap(cls: type) -> type:
        install_spec(cls, spec)
        _REGISTRY[key] = cls
        return cls

    return wrap


def _ensure_loaded() -> None:
    # Imports only; each module registers itself via the decorator.
    from repro.coherence import mesi, moesi, sisd, warden  # noqa: F401


def available_protocols() -> List[str]:
    """Registered protocol keys, in a stable (registration) order."""
    _ensure_loaded()
    return list(_REGISTRY)


def protocol_class(key: str) -> Type:
    _ensure_loaded()
    try:
        return _REGISTRY[key.lower()]
    except KeyError:
        raise UnknownProtocolError(key, _REGISTRY) from None


def protocol_spec(key: str) -> ProtocolSpec:
    return protocol_class(key).SPEC


def protocol_map() -> Dict[str, type]:
    """Key -> class mapping (a copy; mutating it registers nothing)."""
    _ensure_loaded()
    return dict(_REGISTRY)


def protocol_key_of(cls_or_name) -> Optional[str]:
    """Reverse lookup: registry key for a class (or its ``name``)."""
    _ensure_loaded()
    for key, cls in _REGISTRY.items():
        if cls is cls_or_name or cls.name == cls_or_name:
            return key
    return None
