"""WARD region tracking — the software-visible half of the WARDen protocol.

The paper (§6.1) stores each region as two pointers (begin, end) in a
CAM-like fully-associative structure supporting up to 1024 simultaneous
regions, with range-compare lookups.  This module models that structure
functionally: interval bookkeeping, overlap semantics ("if an address is
somehow found in more than one region, we just mark it as WARD"), and the
capacity limit.  When the CAM is full, further ``add_region`` requests are
refused (the block simply stays under normal MESI coherence — always safe).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set


class WardRegion:
    """One active WARD region: ``[start, end)`` plus its tracked W blocks."""

    __slots__ = ("region_id", "start", "end", "blocks")

    def __init__(self, region_id: int, start: int, end: int) -> None:
        self.region_id = region_id
        self.start = start
        self.end = end
        #: block addresses that entered the W state while this region was
        #: active (registered by the directory; reconciled at removal)
        self.blocks: Set[int] = set()

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WardRegion({self.region_id}, {self.start:#x}..{self.end:#x})"


class RegionTable:
    """The set of active WARD regions, with fast point lookups.

    Lookups are O(log n + k) where k is the number of candidate intervals in
    the scan window; regions may overlap freely.
    """

    def __init__(self, capacity: Optional[int] = 1024) -> None:
        #: maximum simultaneous regions; None models an unbounded table
        #: (software-side consumers like the race detector, which must not
        #: silently drop regions the way the hardware CAM is allowed to)
        self.capacity = capacity
        self._next_id = 0
        self._regions: Dict[int, WardRegion] = {}
        #: sorted list of (start, region_id) for bisect lookups
        self._starts: List[tuple] = []
        self._max_len = 0
        self.adds = 0
        self.removes = 0
        self.rejected_adds = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._regions)

    def __bool__(self) -> bool:
        """True when any region is active (hot-path guard before lookup)."""
        return bool(self._regions)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._regions) >= self.capacity

    def add(self, start: int, end: int) -> Optional[WardRegion]:
        """Register ``[start, end)``; returns None if the CAM is full."""
        if end <= start:
            raise ValueError(f"empty region [{start:#x}, {end:#x})")
        if self.full:
            self.rejected_adds += 1
            return None
        region = WardRegion(self._next_id, start, end)
        self._next_id += 1
        self._regions[region.region_id] = region
        bisect.insort(self._starts, (start, region.region_id))
        self._max_len = max(self._max_len, end - start)
        self.adds += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._regions))
        return region

    def remove(self, region: WardRegion) -> WardRegion:
        """Deregister a region (the caller then reconciles ``region.blocks``)."""
        if region.region_id not in self._regions:
            raise KeyError(f"region {region.region_id} is not active")
        del self._regions[region.region_id]
        idx = bisect.bisect_left(self._starts, (region.start, region.region_id))
        self._starts.pop(idx)
        self.removes += 1
        return region

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[WardRegion]:
        """Return *an* active region containing ``addr`` (None if not WARD)."""
        if not self._starts or self._max_len == 0:
            return None
        # Candidates start in (addr - max_len, addr]; scan right-to-left.
        hi = bisect.bisect_right(self._starts, (addr, float("inf")))
        lo_bound = addr - self._max_len
        i = hi - 1
        while i >= 0:
            start, rid = self._starts[i]
            if start < lo_bound:
                break
            region = self._regions[rid]
            if region.contains(addr):
                return region
            i -= 1
        return None

    def contains(self, addr: int) -> bool:
        return self.lookup(addr) is not None

    def regions_containing(self, addr: int) -> List[WardRegion]:
        """All active regions containing ``addr`` (overlaps allowed)."""
        out = []
        if not self._starts:
            return out
        hi = bisect.bisect_right(self._starts, (addr, float("inf")))
        lo_bound = addr - self._max_len
        i = hi - 1
        while i >= 0:
            start, rid = self._starts[i]
            if start < lo_bound:
                break
            region = self._regions[rid]
            if region.contains(addr):
                out.append(region)
            i -= 1
        return out

    def active_regions(self) -> List[WardRegion]:
        return list(self._regions.values())
