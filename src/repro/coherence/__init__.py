"""Cache-coherence protocols, table-driven: the MESI baseline, the WARDen
extension, and the MOESI / SI/SD comparison points, all described by
:class:`~repro.coherence.spec.ProtocolSpec` tables and discovered through
:mod:`repro.coherence.registry`."""

from repro.coherence.directory import Directory, DirEntry
from repro.coherence.mesi import MESIProtocol
from repro.coherence.moesi import MOESIProtocol
from repro.coherence.regions import RegionTable, WardRegion
from repro.coherence.registry import (
    available_protocols,
    protocol_class,
    protocol_map,
    protocol_spec,
)
from repro.coherence.sisd import SISDProtocol
from repro.coherence.spec import ProtocolSpec, Row, SpecIssue, TransitionTable
from repro.coherence.warden import WARDenProtocol

__all__ = [
    "DirEntry",
    "Directory",
    "MESIProtocol",
    "MOESIProtocol",
    "ProtocolSpec",
    "RegionTable",
    "Row",
    "SISDProtocol",
    "SpecIssue",
    "TransitionTable",
    "WARDenProtocol",
    "WardRegion",
    "available_protocols",
    "protocol_class",
    "protocol_map",
    "protocol_spec",
]
