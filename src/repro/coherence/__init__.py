"""Cache-coherence protocols: the MESI baseline and the WARDen extension."""

from repro.coherence.directory import Directory, DirEntry
from repro.coherence.mesi import MESIProtocol
from repro.coherence.regions import RegionTable, WardRegion
from repro.coherence.warden import WARDenProtocol

__all__ = [
    "DirEntry",
    "Directory",
    "MESIProtocol",
    "RegionTable",
    "WARDenProtocol",
    "WardRegion",
]
