#!/usr/bin/env python
"""CI gate: the vectorized replay kernel must be bit-identical to the engine.

Records one cell (primes/warden at the small input on the dual-socket
machine) with the tracing engine, replays the trace through the packed
replay kernel — after a serialization round-trip, so the on-disk format is
on the hook too — and diffs the full ``RunStats.to_dict()``: cycles,
per-core counters, and the coherence message matrix.  Any mismatch prints
the differing keys and exits non-zero.

The broader matrix (every benchmark x protocol at the "test" size, both
the numpy and pure-Python preprocessing paths) lives in
tests/test_replay.py; this script is the cheap standalone smoke for the
replay-bit-identity CI job.

Usage: PYTHONPATH=src python scripts/check_replay_identity.py
       [benchmark] [protocol] [size]
"""

from __future__ import annotations

import sys


def diff_dicts(replayed: dict, reference: dict, prefix: str = "") -> list:
    diffs = []
    for key in sorted(set(replayed) | set(reference)):
        path = f"{prefix}{key}"
        left = replayed.get(key)
        right = reference.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            diffs.extend(diff_dicts(left, right, path + "."))
        elif left != right:
            diffs.append(f"  {path}: replayed={left!r} reference={right!r}")
    return diffs


def main(argv) -> int:
    name = argv[1] if len(argv) > 1 else "primes"
    protocol = argv[2] if len(argv) > 2 else "warden"
    size = argv[3] if len(argv) > 3 else "small"

    from repro.common.config import dual_socket
    from repro.replay import Trace, record_benchmark, replay_trace

    trace, reference = record_benchmark(
        name, protocol, dual_socket(), size=size
    )
    replayed = replay_trace(Trace.from_bytes(trace.to_bytes()))

    diffs = diff_dicts(replayed.stats.to_dict(), reference.stats.to_dict())
    if replayed.result != reference.result:
        diffs.append("  benchmark result values differ")
    if diffs:
        print(f"FAIL: {name}/{protocol}/{size} replay diverges from the "
              f"recording engine run:")
        print("\n".join(diffs))
        return 1
    print(f"ok: {name}/{protocol}/{size} replay bit-identical to the engine "
          f"({len(trace)} events, {replayed.stats.instructions} instructions, "
          f"{replayed.stats.cycles} cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
