#!/usr/bin/env python
"""CI gate: every registered protocol table must validate clean.

Runs :meth:`ProtocolSpec.validate` for each protocol in the registry
against its implementing class — a row naming a handler that no longer
exists, a missing/duplicate (state, event) cell, an unknown state/event,
or a state unreachable from the initial one fails the build.  Also
re-derives each class's compiled fast-path sets from the spec and checks
they match what is installed (a drifted table would silently change hot
path dispatch).

Usage: PYTHONPATH=src python scripts/protocol_lint.py [key ...]
       (no args = lint every registered protocol)
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def lint(key: str) -> int:
    from repro.coherence.registry import protocol_class, protocol_spec

    cls = protocol_class(key)
    spec = protocol_spec(key)
    issues = spec.validate(cls)
    for issue in issues:
        print(f"  {key}: {issue}")
    fast = spec.compile()
    for attr, want in (
        ("_silent_write", fast.silent_write),
        ("_silent_next", fast.silent_next),
        ("_upgrade_states", fast.upgrade_states),
        ("_ward_states", fast.ward_states),
    ):
        got = getattr(cls, attr, None)
        if got != want:
            print(f"  {key}: [stale-fast-path] {cls.__name__}.{attr} "
                  f"= {got!r} but the spec compiles to {want!r}")
            issues.append(attr)
    rows = sum(len(t.rows) for t in spec.tables)
    status = "FAIL" if issues else "ok"
    print(f"{status}: {key} ({spec.name}) — {len(spec.states)} states, "
          f"{rows} rows, {len(issues)} issue(s)")
    return len(issues)


def main(argv) -> int:
    from repro.coherence.registry import available_protocols

    keys = argv or available_protocols()
    problems = sum(lint(key) for key in keys)
    if problems:
        print(f"protocol-lint: {problems} issue(s) found", file=sys.stderr)
        return 1
    print(f"protocol-lint: {len(keys)} protocol table(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
