#!/usr/bin/env python
"""CI gate: epoch-batched engine must be bit-identical to per-op stepping.

Runs one fig8 cell (primes/warden at the small input on the dual-socket
machine) twice in-process — once with ``REPRO_EPOCH_BATCH=1`` and once
with ``=0`` — and diffs the full ``RunStats.to_dict()``: cycles, per-core
counters, and the coherence message matrix.  Any mismatch prints the
differing keys and exits non-zero.

The broader matrix (every benchmark x protocol at the "test" size, plus
engine-level batch-vs-scalar equivalence) lives in tests/test_epoch.py;
this script is the cheap standalone smoke for the perf-smoke CI job.

Usage: PYTHONPATH=src python scripts/check_epoch_identity.py
       [benchmark] [protocol] [size]
"""

from __future__ import annotations

import os
import sys


def run_cell(name: str, protocol: str, size: str, mode: str):
    # The engine samples REPRO_EPOCH_BATCH at construction time, so
    # toggling the environment between runs switches modes in-process.
    os.environ["REPRO_EPOCH_BATCH"] = mode
    from repro.analysis.run import clear_cache, run_benchmark
    from repro.common.config import dual_socket

    clear_cache()
    return run_benchmark(
        name,
        protocol,
        dual_socket(),
        size=size,
        use_cache=False,
        use_disk_cache=False,
    )


def diff_dicts(batched: dict, reference: dict, prefix: str = "") -> list:
    diffs = []
    for key in sorted(set(batched) | set(reference)):
        path = f"{prefix}{key}"
        left = batched.get(key)
        right = reference.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            diffs.extend(diff_dicts(left, right, path + "."))
        elif left != right:
            diffs.append(f"  {path}: batched={left!r} reference={right!r}")
    return diffs


def main(argv) -> int:
    name = argv[1] if len(argv) > 1 else "primes"
    protocol = argv[2] if len(argv) > 2 else "warden"
    size = argv[3] if len(argv) > 3 else "small"

    batched = run_cell(name, protocol, size, "1")
    reference = run_cell(name, protocol, size, "0")

    diffs = diff_dicts(batched.stats.to_dict(), reference.stats.to_dict())
    if batched.result != reference.result:
        diffs.append("  benchmark result values differ")
    if diffs:
        print(f"FAIL: {name}/{protocol}/{size} diverges between "
              f"REPRO_EPOCH_BATCH=1 and =0:")
        print("\n".join(diffs))
        return 1
    print(f"ok: {name}/{protocol}/{size} bit-identical between "
          f"REPRO_EPOCH_BATCH=1 and =0 "
          f"({batched.stats.instructions} instructions, "
          f"{batched.stats.cycles} cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
