#!/usr/bin/env python
"""Regenerate the golden RunStats-digest corpus (tests/golden/).

Runs every benchmark under every registered protocol at the pinned
configuration
(dual-socket machine, "test" size, seed 42) and records a sha256 digest of
each run's canonical ``RunStats.to_dict()`` JSON, plus the headline cycle
and instruction counts for human-readable diffs.  ``tests/test_golden_stats.py``
replays the same cells and fails on any digest drift.

The corpus pins *behaviour*, not correctness: after an intentional
simulator change (new counters, fixed accounting, different scheduling),
inspect the cycle/instruction deltas in the git diff of the regenerated
file and commit it alongside the change.

Usage: PYTHONPATH=src python scripts/update_golden.py [--check]

``--check`` regenerates in memory and exits non-zero on any difference
without touching the file (the CI-friendly mode).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "tests", "golden", "stats_digests.json"
)

SCHEMA = "warden-repro/golden/v1"
SIZE = "test"
SEED = 42


def protocols() -> tuple:
    from repro.coherence.registry import available_protocols

    return tuple(available_protocols())


def corpus_names() -> list:
    """The pinned cell rows: paper kernels + golden synthetic workloads."""
    from repro.bench import PAPER_ORDER
    from repro.workloads import GOLDEN_SYNTH

    return list(PAPER_ORDER) + list(GOLDEN_SYNTH)


def build_corpus() -> dict:
    from repro.analysis.conformance import stats_digest
    from repro.analysis.run import run_benchmark
    from repro.common.config import dual_socket

    config = dual_socket()
    entries = {}
    for name in corpus_names():
        for protocol in protocols():
            result = run_benchmark(
                name, protocol, config, size=SIZE, seed=SEED,
                use_disk_cache=False,
            )
            entries[f"{name}/{protocol}"] = {
                "digest": stats_digest(result.stats),
                "cycles": result.stats.cycles,
                "instructions": result.stats.instructions,
            }
            print(f"  {name}/{protocol}: {entries[f'{name}/{protocol}']['digest'][:16]}...")
    return {
        "schema": SCHEMA,
        "machine": config.name,
        "size": SIZE,
        "seed": SEED,
        "entries": entries,
    }


def main(argv) -> int:
    check = "--check" in argv
    corpus = build_corpus()
    payload = json.dumps(corpus, indent=2, sort_keys=True) + "\n"
    if check:
        try:
            with open(GOLDEN_PATH, encoding="utf-8") as handle:
                committed = handle.read()
        except FileNotFoundError:
            print(f"golden corpus missing: {GOLDEN_PATH}", file=sys.stderr)
            return 1
        if committed != payload:
            print("golden corpus is stale; rerun scripts/update_golden.py",
                  file=sys.stderr)
            return 1
        print("golden corpus up to date")
        return 0
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        handle.write(payload)
    print(f"wrote {len(corpus['entries'])} entries to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
