"""Ablation (ours): WARD-marking policies.

DESIGN.md calls out the choice between the paper's §4.2 mechanism alone
(leaf pages, unmark at forks) and our default that additionally scopes
construct outputs (tabulate/scatter) as WARD regions.  This harness
quantifies the difference, plus the NONE policy as a sanity floor (WARDen
with no regions must behave like MESI).
"""

import pytest

from benchmarks.conftest import emit, once
from repro.analysis.metrics import compare_multi, geomean
from repro.analysis.run import run_pairs
from repro.analysis.tables import render_table
from repro.common.config import dual_socket
from repro.hlpl.policy import MarkingPolicy

SUBSET = ["primes", "msort", "make_array", "grep", "suffix-array", "tokens"]


def test_ablation_marking_policies(benchmark, size, jobs):
    config = dual_socket()

    def run():
        out = {}
        for policy in MarkingPolicy:
            metrics = [
                compare_multi(
                    run_pairs(name, config, size=size, policy=policy, jobs=jobs)
                )
                for name in SUBSET
            ]
            out[policy] = metrics
        return out

    results = once(benchmark, run)
    rows = []
    for policy, metrics in results.items():
        rows.append(
            [policy.value, geomean(m.speedup for m in metrics)]
            + [f"{m.speedup:.2f}" for m in metrics]
        )
    emit(
        "ablation_policies",
        render_table(
            ["Policy", "geomean"] + SUBSET,
            rows,
            title="Ablation: WARD-marking policy (dual socket, speedup vs MESI)",
        ),
    )

    none = geomean(m.speedup for m in results[MarkingPolicy.NONE])
    full = geomean(m.speedup for m in results[MarkingPolicy.FULL])
    # no regions -> WARDen degenerates to MESI: speedup ~1.0
    assert none == pytest.approx(1.0, abs=0.1 if size == "test" else 0.05)
    if size != "test":
        # construct marking is where the wins come from
        assert full > none
