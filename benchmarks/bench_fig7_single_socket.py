"""Figure 7: performance and energy gains on the single-socket machine."""

from benchmarks.conftest import emit, once
from repro.analysis.metrics import compare_multi, summarize
from repro.analysis.run import run_pairs
from repro.analysis.tables import speedup_energy_figure
from repro.bench import PAPER_ORDER
from repro.common.config import single_socket


def test_fig7_single_socket(benchmark, size, jobs):
    config = single_socket()

    def run():
        return [
            compare_multi(run_pairs(name, config, size=size, jobs=jobs))
            for name in PAPER_ORDER
        ]

    metrics = once(benchmark, run)
    emit(
        "fig7",
        speedup_energy_figure(
            metrics, "Figure 7: performance and energy gains on single socket"
        ),
    )
    agg = summarize(metrics)
    if size == "test":  # smoke mode
        assert agg["speedup"] > 0.8
        return
    # paper: mean speedup 1.24x, mean savings ~17% — we expect the same sign
    assert agg["speedup"] > 1.0
    assert sum(1 for m in metrics if m.speedup >= 0.95) >= 12
