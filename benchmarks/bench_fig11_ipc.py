"""Figure 11: percentage IPC improvement under WARDen (dual socket)."""

from benchmarks.bench_fig8_dual_socket import dual_socket_metrics
from benchmarks.conftest import emit, once
from repro.analysis.metrics import mean
from repro.analysis.tables import figure11


def test_fig11_ipc_improvement(benchmark, size, jobs):
    metrics = once(benchmark, lambda: dual_socket_metrics(size, jobs))
    emit("fig11", figure11(metrics))

    if size == "test":
        return
    # benchmarks that avoid blocking downgrades retire instructions faster
    assert mean(m.ipc_improvement_pct for m in metrics) > 0
