"""Figure/table regeneration harnesses (pytest-benchmark)."""
