"""Table 1: validation of the timing model against the paper's ping-pong.

Regenerates the true-sharing microbenchmark (Fig. 6) in the three placement
scenarios and compares cycles/iteration against the paper's real-hardware
and Sniper measurements.
"""

from benchmarks.conftest import emit, once
from repro.analysis.tables import table1
from repro.bench.microbench import PAPER_TABLE1, run_table1


def test_table1_pingpong_validation(benchmark):
    results = once(benchmark, lambda: run_table1(iterations=300))
    emit("table1", table1(results))

    same_core = results["same-core"].cycles_per_iteration
    same_socket = results["same-socket"].cycles_per_iteration
    cross = results["cross-socket"].cycles_per_iteration
    # the paper's point: the scenarios separate by an order of magnitude
    assert same_core < same_socket < cross
    for scenario in ("same-socket", "cross-socket"):
        ours = results[scenario].cycles_per_iteration
        assert 0.5 < ours / PAPER_TABLE1[scenario]["sniper"] < 2.0
