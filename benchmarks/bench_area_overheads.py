"""§6.1 hardware-cost estimates (CACTI substitute): sectoring area and the
WARD-region CAM."""

from benchmarks.conftest import emit, once
from repro.analysis.tables import render_table
from repro.common.config import dual_socket
from repro.energy.cacti import region_cam_area_overhead, sectoring_area_overhead


def test_area_overheads(benchmark):
    def run():
        return (
            sectoring_area_overhead(64),
            region_cam_area_overhead(dual_socket(), 1024),
        )

    sectoring, cam = once(benchmark, run)
    emit(
        "area",
        render_table(
            ["Structure", "This repro", "Paper"],
            [
                ["byte sectoring (64B blocks)", f"{sectoring:.1%}", "7.9%"],
                ["1024-entry region CAM", f"{cam:.4%}", "<0.05%"],
            ],
            title="§6.1 area overheads",
        ),
    )
    assert abs(sectoring - 0.079) < 0.005
    assert cam < 0.0005
