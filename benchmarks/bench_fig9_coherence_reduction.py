"""Figure 9: dual-socket speedup vs avoided invalidations+downgrades.

The paper's claim is a positive correlation between the reduction in costly
coherence events (per kilo-instruction) and speedup.
"""

from benchmarks.bench_fig8_dual_socket import dual_socket_metrics
from benchmarks.conftest import emit, once
from repro.analysis.tables import figure9


def pearson(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs) ** 0.5
    vy = sum((y - my) ** 2 for y in ys) ** 0.5
    return cov / (vx * vy) if vx and vy else 0.0


def test_fig9_reduction_vs_speedup(benchmark, size, jobs):
    metrics = once(benchmark, lambda: dual_socket_metrics(size, jobs))
    emit("fig9", figure9(metrics))

    reductions = [m.inv_dg_reduced_per_kilo for m in metrics]
    speedups = [m.speedup for m in metrics]
    # WARDen genuinely removes coherence events almost everywhere ...
    assert sum(1 for r in reductions if r > 0) >= (8 if size == "test" else 12)
    if size == "test":
        return
    # ... and the removal correlates positively with speedup (Fig. 9's point)
    assert pearson(reductions, speedups) > 0.0
