"""Figure 10: share of the coherence-event reduction that is downgrades vs
invalidations, per benchmark."""

from benchmarks.bench_fig8_dual_socket import dual_socket_metrics
from benchmarks.conftest import emit, once
from repro.analysis.tables import figure10


def test_fig10_downgrade_invalidation_breakdown(benchmark, size, jobs):
    metrics = once(benchmark, lambda: dual_socket_metrics(size, jobs))
    emit("fig10", figure10(metrics))

    for m in metrics:
        total = m.downgrade_reduction_pct + m.invalidation_reduction_pct
        # percentages are a partition of the total reduction (or 0/0)
        assert total == 0 or abs(total - 100.0) < 1e-6
    # invalidations dominate raw counts (stores are frequent), yet some
    # benchmarks are downgrade-heavy — both classes must be represented
    assert any(m.downgrade_reduction_pct > 30 for m in metrics)
    assert any(m.invalidation_reduction_pct > 30 for m in metrics)
