"""Figure 8: performance and energy gains on the dual-socket machine.

The simulations here are shared (through the result cache) with the
Fig. 9/10/11 analysis harnesses.
"""

from benchmarks.conftest import emit, once
from repro.analysis.metrics import compare_multi, summarize
from repro.analysis.run import run_pairs
from repro.analysis.tables import speedup_energy_figure
from repro.bench import PAPER_ORDER
from repro.common.config import dual_socket


def dual_socket_metrics(size: str, jobs: int = 1):
    config = dual_socket()
    return [
        compare_multi(run_pairs(name, config, size=size, jobs=jobs))
        for name in PAPER_ORDER
    ]


def test_fig8_dual_socket(benchmark, size, jobs):
    metrics = once(benchmark, lambda: dual_socket_metrics(size, jobs))
    emit(
        "fig8",
        speedup_energy_figure(
            metrics, "Figure 8: performance and energy gains on dual socket"
        ),
    )
    agg = summarize(metrics)
    if size == "test":  # smoke mode: tiny inputs, no stable signal
        assert agg["speedup"] > 0.8
        return
    # paper: mean 1.46x speedup, 52.9% interconnect / 23.1% total savings;
    # we assert the signs and the interconnect > processor ordering
    assert agg["speedup"] > 1.0
    assert agg["interconnect_savings"] > 0
    assert agg["interconnect_savings"] > agg["processor_savings"]
