"""Figure 12: the disaggregated two-node machine (1 us remote access).

The paper evaluates the most promising benchmarks (dmm, grep, nn,
palindrome) and finds the benefits grow with the remote-access cost,
especially in network energy."""

from benchmarks.conftest import emit, once
from repro.analysis.metrics import compare_multi, summarize
from repro.analysis.run import run_pairs
from repro.analysis.tables import speedup_energy_figure
from repro.bench import DISAGGREGATED_SUBSET
from repro.common.config import disaggregated


def test_fig12_disaggregated(benchmark, size, jobs):
    config = disaggregated()

    def run():
        return [
            compare_multi(run_pairs(name, config, size=size, jobs=jobs))
            for name in DISAGGREGATED_SUBSET
        ]

    metrics = once(benchmark, run)
    emit(
        "fig12",
        speedup_energy_figure(
            metrics, "Figure 12: performance and energy gains on disaggregated"
        ),
    )
    agg = summarize(metrics)
    if size == "test":
        assert agg["speedup"] > 0.7
        return
    # coherence messages now cross a 1 us link: network savings must be
    # positive and exceed what the same benchmarks save in total
    assert agg["interconnect_savings"] > 0
    assert agg["speedup"] > 0.95
