"""Shared helpers for the figure-regeneration harnesses.

Every harness writes its rendered table to ``benchmarks/output/`` and prints
it (visible with ``pytest -s``).  Figures 8-11 share one set of dual-socket
simulations through the in-process result cache, so the whole suite runs the
expensive simulations only once.

Environment knob: ``REPRO_BENCH_SIZE`` (test | small | default) selects the
input scale; "default" reproduces the reported numbers, "test" is a fast
smoke run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "default")


@pytest.fixture(scope="session")
def size() -> str:
    return bench_size()


def emit(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
