"""Shared helpers for the figure-regeneration harnesses.

Every harness writes its rendered table to ``benchmarks/output/`` and prints
it (visible with ``pytest -s``).  Figures 8-11 share one set of dual-socket
simulations through the in-process result cache, so the whole suite runs the
expensive simulations only once.

Environment knobs:

- ``REPRO_BENCH_SIZE`` (test | small | default) selects the input scale;
  "default" reproduces the reported numbers, "test" is a fast smoke run.
- ``REPRO_BENCH_JOBS`` (int, default 1) fans the (protocol x seed) run
  matrix behind each figure out over that many worker processes; results
  are bit-identical to a serial run.
- ``REPRO_DISK_CACHE`` (directory path; "1" for the default
  ``.warden-cache/``) installs the persistent result cache for the whole
  session, so re-running the harnesses skips already-simulated runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "default")


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def size() -> str:
    return bench_size()


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


@pytest.fixture(scope="session", autouse=True)
def _disk_cache():
    """Honour REPRO_DISK_CACHE for the whole benchmark session."""
    from repro.analysis.pool import DEFAULT_CACHE_DIR, DiskCache
    from repro.analysis.run import set_disk_cache

    knob = os.environ.get("REPRO_DISK_CACHE", "")
    if not knob or knob == "0":
        yield
        return
    root = DEFAULT_CACHE_DIR if knob == "1" else knob
    previous = set_disk_cache(DiskCache(root))
    yield
    set_disk_cache(previous)


def emit(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
