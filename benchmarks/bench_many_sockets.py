"""§7.3 "Many Sockets": WARDen's network savings vs machine scale.

The paper expects WARDen's advantages "to become even more prevalent" as
socket counts (and thus interconnect latencies/energies) grow.  This
harness sweeps 1 -> 2 -> 4 sockets on two coherence-sensitive benchmarks
and tracks the interconnect energy savings trend.
"""

from benchmarks.conftest import emit, once
from repro.analysis.metrics import compare_multi, mean
from repro.analysis.run import run_pairs
from repro.analysis.tables import render_table
from repro.common.config import dual_socket, many_socket, single_socket

SUBSET = ["grep", "msort"]


def test_many_socket_scaling(benchmark, size, jobs):
    configs = [single_socket(), dual_socket(), many_socket(4)]

    def run():
        rows = []
        for config in configs:
            metrics = [
                compare_multi(run_pairs(name, config, size=size, jobs=jobs))
                for name in SUBSET
            ]
            rows.append(
                (
                    config.num_sockets,
                    mean(m.speedup for m in metrics),
                    mean(m.interconnect_savings for m in metrics),
                )
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "many_sockets",
        render_table(
            ["Sockets", "Mean speedup", "Mean network savings %"],
            rows,
            title="§7.3: WARDen benefit vs socket count (grep, msort)",
        ),
    )
    if size == "test":
        return
    savings = [r[2] for r in rows]
    # multi-socket machines save more network energy than the single socket
    assert max(savings[1:]) > savings[0]
    # and WARDen keeps winning at scale
    assert rows[-1][1] > 1.0
