"""Tracer/event-bus tests: no-op-when-off, ring buffer, trace schema."""

import json

from repro.analysis.run import run_benchmark
from repro.common.config import CacheConfig, dual_socket
from repro.common.stats import CoherenceStats
from repro.common.types import CoherenceState, MessageType
from repro.mem.cache import SetAssocCache
from repro.mem.interconnect import Interconnect, LinkClass
from repro.obs.collect import RingBufferSink
from repro.obs.export import chrome_trace
from repro.obs.tracer import ListSink, NULL_SINK, Tracer
from repro.sim.machine import Machine


class RecordingSink:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class TestDisabledTracer:
    def test_machine_tracer_disabled_by_default(self, mesi):
        assert mesi.tracer.enabled is False
        assert mesi.tracer.sink is NULL_SINK

    def test_disabled_sites_emit_nothing(self, config):
        """With no sink installed, instrumented layers never emit — even if
        a sink object is attached but ``enabled`` stays False."""
        tracer = Tracer()
        spy = RecordingSink()
        tracer.sink = spy  # attached but NOT enabled (install() not called)

        noc = Interconnect(config, CoherenceStats(), tracer=tracer)
        noc.send(MessageType.GET_S, LinkClass.INTRA)

        cache = SetAssocCache(CacheConfig(128, 1, 64), "L1-t", tracer=tracer)
        cache.install(0, CoherenceState.MODIFIED)
        cache.install(64 * 2, CoherenceState.MODIFIED)  # same set, evicts

        assert spy.events == []

    def test_disabled_run_matches_enabled_run_counters(self, config):
        """Tracing must observe, never perturb: counters are identical."""
        from repro.hlpl.runtime import Runtime
        from repro.bench import BENCHMARKS

        bench = BENCHMARKS["fib"]

        def run(sink):
            machine = Machine(config, "warden")
            if sink is not None:
                machine.tracer.install(sink)
            rt = Runtime(machine, seed=7)
            _, stats = rt.run(bench.root_task, bench.workload(size="test", seed=7))
            return stats

        plain = run(None)
        traced = run(ListSink())
        assert plain.cycles == traced.cycles
        assert plain.instructions == traced.instructions
        assert plain.coherence.invalidations == traced.coherence.invalidations
        assert plain.coherence.to_dict() == traced.coherence.to_dict()

    def test_install_uninstall_flips_enabled(self):
        tracer = Tracer()
        sink = ListSink()
        tracer.install(sink)
        assert tracer.enabled and tracer.sink is sink
        tracer.message("GetS", "intra")
        assert len(sink) == 1
        tracer.uninstall()
        assert not tracer.enabled and tracer.sink is NULL_SINK


class TestRingBufferSink:
    def test_eviction_at_capacity(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(i)
        assert len(sink) == 3
        assert sink.events() == [2, 3, 4]  # oldest evicted first
        assert sink.dropped == 2
        assert sink.seen == 5

    def test_sampling_keeps_every_nth(self):
        sink = RingBufferSink(capacity=100, sample_every=3)
        for i in range(1, 10):
            sink.emit(i)
        # events 3, 6, 9 survive (seen counter multiples of 3)
        assert sink.events() == [3, 6, 9]
        assert sink.seen == 9

    def test_rejects_bad_parameters(self):
        import pytest

        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)
        with pytest.raises(ValueError):
            RingBufferSink(capacity=1, sample_every=0)


class TestChromeTraceSchema:
    def test_traced_run_produces_valid_chrome_json(self):
        sink = RingBufferSink(capacity=100_000)
        config = dual_socket()
        run_benchmark(
            "fib", "warden", config, size="test", obs_sink=sink,
        )
        assert sink.seen > 0
        trace = json.loads(json.dumps(chrome_trace(sink.events(), config)))
        events = trace["traceEvents"]
        assert events, "trace must not be empty"
        for ev in events:
            assert "ph" in ev and "ts" in ev and "pid" in ev and "tid" in ev
        pids = {ev["pid"] for ev in events}
        # one process for the hardware threads, one for the coherence track
        assert len(pids) == 2
        from repro.obs.export import PID_COHERENCE, PID_THREADS

        thread_tids = {
            ev["tid"] for ev in events
            if ev["pid"] == PID_THREADS and ev["ph"] != "M"
        }
        assert len(thread_tids) > 1  # per-thread tracks
        assert any(ev["pid"] == PID_COHERENCE and ev["ph"] != "M"
                   for ev in events)

    def test_region_slices_are_paired(self):
        sink = RingBufferSink(capacity=100_000)
        config = dual_socket()
        run_benchmark("fib", "warden", config, size="test", obs_sink=sink)
        trace = chrome_trace(sink.events(), config)
        slices = [
            ev for ev in trace["traceEvents"]
            if ev["name"].startswith("WARD region") and ev["ph"] == "X"
        ]
        assert slices, "WARD regions should appear as duration slices"
        for ev in slices:
            assert ev["dur"] >= 1


class TestInstrumentationCoverage:
    def test_all_event_kinds_emitted_by_a_warden_run(self, config):
        """A scheduled WARDen run exercises every instrumented layer."""
        from repro.hlpl.runtime import Runtime
        from repro.bench import BENCHMARKS

        machine = Machine(config, "warden")
        sink = ListSink()
        machine.tracer.install(sink)
        bench = BENCHMARKS["fib"]
        Runtime(machine, seed=42).run(
            bench.root_task, bench.workload(size="test", seed=42)
        )
        kinds = {type(ev).kind for ev in sink.events}
        assert {"access", "message", "transition", "region",
                "reconcile", "steal", "strand"} <= kinds
