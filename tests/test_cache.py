"""Unit + property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.common.types import CoherenceState
from repro.mem.block import CacheBlock
from repro.mem.cache import SetAssocCache

S = CoherenceState.SHARED
M = CoherenceState.MODIFIED
I = CoherenceState.INVALID


def small_cache(assoc=2, sets=4, on_evict=None):
    cfg = CacheConfig(assoc * sets * 64, assoc, 64)
    return SetAssocCache(cfg, "test", on_evict=on_evict)


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(0) is None
        c.install(0, S)
        assert c.lookup(0) is not None
        assert c.hits == 1 and c.misses == 1

    def test_peek_does_not_count(self):
        c = small_cache()
        c.install(0, S)
        c.peek(0)
        assert c.hits == 0 and c.misses == 0

    def test_invalid_blocks_do_not_hit(self):
        c = small_cache()
        block = c.install(0, S)
        block.state = I
        assert c.lookup(0) is None

    def test_set_mapping(self):
        c = small_cache(assoc=2, sets=4)
        assert c.set_index(0) == 0
        assert c.set_index(64) == 1
        assert c.set_index(256) == 0  # wraps after 4 sets

    def test_contains(self):
        c = small_cache()
        c.install(128, S)
        assert 128 in c
        assert 0 not in c

    def test_len_counts_valid_blocks(self):
        c = small_cache()
        c.install(0, S)
        c.install(64, S)
        assert len(c) == 2

    def test_len_skips_invalid_blocks(self):
        # __len__ must agree with blocks(): INVALID ways are dead capacity
        c = small_cache()
        c.install(0, S)
        block = c.install(64, S)
        block.state = I
        assert len(c) == 1
        assert len(c) == sum(1 for _ in c.blocks())

    def test_non_power_of_two_sets_still_map_correctly(self):
        # 3 sets defeats the shift/mask fast path; the modulo fallback
        # must produce identical placement
        cfg = CacheConfig(2 * 3 * 64, 2, 64)
        c = SetAssocCache(cfg, "np2")
        assert c.set_index(0) == 0
        assert c.set_index(64) == 1
        assert c.set_index(128) == 2
        assert c.set_index(192) == 0  # wraps after 3 sets
        c.install(0, S)
        assert c.lookup(0) is not None


class TestLRU:
    def test_eviction_is_lru(self):
        evicted = []
        c = small_cache(assoc=2, sets=1, on_evict=evicted.append)
        c.install(0, S)
        c.install(64, S)
        c.lookup(0)  # refresh 0; 64 becomes LRU
        c.install(128, S)
        assert [b.addr for b in evicted] == [64]
        assert 0 in c and 128 in c and 64 not in c

    def test_install_refreshes_existing(self):
        c = small_cache(assoc=2, sets=1)
        c.install(0, S)
        c.install(64, S)
        c.install(0, M)  # refresh + state change
        c.install(128, S)  # evicts 64, not 0
        assert 0 in c and 64 not in c

    def test_eviction_count(self):
        c = small_cache(assoc=1, sets=1)
        for i in range(4):
            c.install(i * 64, S)
        assert c.evictions == 3


class TestInstallBlock:
    def test_shares_state_object(self):
        l1 = small_cache()
        l2 = small_cache()
        block = l2.install(0, S)
        l1.install_block(block)
        block.state = M
        assert l1.peek(0).state is M  # same object

    def test_install_block_evicts_lru(self):
        evicted = []
        c = small_cache(assoc=1, sets=1, on_evict=evicted.append)
        c.install(0, S)
        c.install_block(CacheBlock(64, S))
        assert [b.addr for b in evicted] == [0]

    def test_reinstall_same_addr(self):
        c = small_cache()
        a = c.install(0, S)
        c.install_block(a)
        assert len(c) == 1


class TestInvalidate:
    def test_invalidate_removes(self):
        c = small_cache()
        c.install(0, S)
        victim = c.invalidate(0)
        assert victim is not None
        assert 0 not in c

    def test_invalidate_missing_returns_none(self):
        c = small_cache()
        assert c.invalidate(0) is None

    def test_invalidate_does_not_call_hook(self):
        evicted = []
        c = small_cache(on_evict=evicted.append)
        c.install(0, S)
        c.invalidate(0)
        assert evicted == []


class TestHitRate:
    def test_hit_rate(self):
        c = small_cache()
        c.install(0, S)
        c.lookup(0)
        c.lookup(64)
        assert c.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_zero(self):
        assert small_cache().hit_rate == 0.0


@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 31).map(lambda b: b * 64), min_size=1, max_size=120)
)
def test_cache_agrees_with_bounded_reference(addrs):
    """Property: cache contents always equal the most-recently-used subset
    of each set, per a simple reference model."""
    assoc, sets = 2, 4
    c = small_cache(assoc=assoc, sets=sets)
    reference = {i: [] for i in range(sets)}  # per-set MRU list
    for addr in addrs:
        idx = (addr // 64) % sets
        mru = reference[idx]
        if c.lookup(addr) is None:
            c.install(addr, S)
        if addr in mru:
            mru.remove(addr)
        mru.append(addr)
        del mru[:-assoc]
    for idx, mru in reference.items():
        for addr in mru:
            assert c.peek(addr) is not None, f"{addr:#x} missing from set {idx}"
    assert len(c) == sum(len(v) for v in reference.values())
