"""Synthetic-workload generator properties (satellite 2).

Same seed ⇒ identical trace bytes ⇒ identical ``stats_digest`` on the
engine and replay paths; distinct seeds ⇒ distinct digests; the Zipfian
skew and rw-mix knobs move the sharing/invalidation counters
monotonically in the expected direction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conformance import stats_digest
from repro.analysis.run import run_benchmark
from repro.bench import BENCHMARKS, get_benchmark
from repro.common.config import dual_socket
from repro.common.errors import ConfigError
from repro.replay import record_benchmark, replay_trace
from repro.workloads import GOLDEN_SYNTH, SYNTH_WORKLOADS, make_trace

CONFIG = dual_socket()

KINDS = sorted(SYNTH_WORKLOADS)


def _engine_stats(name, protocol="mesi", seed=42):
    return run_benchmark(
        name, protocol, CONFIG, size="test", seed=seed,
        use_cache=False, use_disk_cache=False,
    ).stats


def _ingested_stats(trace, protocol="mesi", tmp_path=None):
    path = tmp_path / "synth.trace"
    path.write_text(trace.to_text())
    return _engine_stats(f"trace:{path}", protocol)


# ----------------------------------------------------------------------
# Registration: synthetic workloads are ordinary benchmarks
# ----------------------------------------------------------------------

def test_synth_workloads_are_registered_benchmarks():
    assert set(GOLDEN_SYNTH) <= set(SYNTH_WORKLOADS)
    for name, bench in SYNTH_WORKLOADS.items():
        assert name.startswith("synth-")
        assert name not in BENCHMARKS  # paper registry stays paper-only
        assert get_benchmark(name) is bench
        assert set(bench.scales) == {"test", "small", "default"}
        # sized well beyond the test inputs
        assert bench.scales["default"] >= 100 * bench.scales["test"]


def test_unknown_workload_name_is_config_error():
    with pytest.raises(ConfigError, match="unknown workload"):
        get_benchmark("synth-nonexistent")
    with pytest.raises(ConfigError, match="unknown synthetic workload"):
        make_trace("nonexistent")
    with pytest.raises(ConfigError, match="bad knob"):
        make_trace("zipf", not_a_knob=3)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", KINDS)
def test_same_seed_identical_trace_bytes(kind):
    short = kind[len("synth-"):]
    a = make_trace(short, seed=7, ops_per_thread=60)
    b = make_trace(short, seed=7, ops_per_thread=60)
    assert a.to_text() == b.to_text()
    distinct = make_trace(short, seed=8, ops_per_thread=60)
    assert a.to_text() != distinct.to_text()


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       kind=st.sampled_from([k[len("synth-"):] for k in KINDS]))
@settings(max_examples=25, deadline=None)
def test_workload_build_is_a_pure_function_of_seed(kind, seed):
    a = make_trace(kind, seed=seed, ops_per_thread=40)
    b = make_trace(kind, seed=seed, ops_per_thread=40)
    assert a == b and a.checksum() == b.checksum()


@pytest.mark.parametrize("kind", ["synth-zipf", "synth-ring"])
def test_same_seed_identical_digest_engine_and_replay(kind):
    engine = _engine_stats(kind, "warden", seed=42)
    again = _engine_stats(kind, "warden", seed=42)
    assert stats_digest(engine) == stats_digest(again)
    trace, recorded = record_benchmark(
        kind, "warden", CONFIG, size="test", seed=42
    )
    replayed = replay_trace(trace, CONFIG)
    assert stats_digest(engine) == stats_digest(recorded.stats)
    assert stats_digest(engine) == stats_digest(replayed.stats)


@pytest.mark.parametrize("kind", KINDS)
def test_distinct_seeds_distinct_digests(kind):
    digests = {
        stats_digest(_engine_stats(kind, "mesi", seed=seed))
        for seed in (1, 2, 3)
    }
    assert len(digests) == 3


# ----------------------------------------------------------------------
# Monotonicity: knobs move coherence counters in the expected direction
# ----------------------------------------------------------------------

def test_rwmix_write_fraction_raises_invalidations(tmp_path):
    """More writes ⇒ more write-invalidate traffic, monotonically along
    the sweep (uniform keys keep the sharer population comparable)."""
    inv = [
        _ingested_stats(
            make_trace("rwmix", seed=42, write_frac=frac), tmp_path=tmp_path
        ).coherence.invalidations
        for frac in (0.05, 0.3, 0.6)
    ]
    assert inv[0] < inv[1] < inv[2]


def test_zipf_skew_concentrates_working_set(tmp_path):
    """Higher skew ⇒ hotter private caches ⇒ strictly less shared-cache
    traffic, monotonically along the whole sweep."""
    l3 = [
        _ingested_stats(
            make_trace("zipf", seed=42, skew=skew), tmp_path=tmp_path
        ).coherence.l3_accesses
        for skew in (0.0, 0.6, 1.2, 1.8, 2.5)
    ]
    assert all(a > b for a, b in zip(l3, l3[1:])), l3


def test_zipf_skew_raises_per_block_contention(tmp_path):
    """Higher skew ⇒ fewer shared blocks, each fought over harder: the
    invalidation count per shared block rises at the sweep endpoints."""
    def density(skew):
        trace = make_trace("zipf", seed=42, skew=skew)
        _, shared = trace.footprint(CONFIG.block_size)
        stats = _ingested_stats(trace, tmp_path=tmp_path)
        return stats.coherence.invalidations / max(shared, 1)

    uniform, skewed = density(0.0), density(2.5)
    assert skewed > 2 * uniform


def test_false_sharing_packing_raises_invalidations(tmp_path):
    """Packing more threads' counters into one line ⇒ more invalidation
    ping-pong; fully private lines (slots_per_line=1) are the floor."""
    inv = [
        _ingested_stats(
            make_trace("falseshare", seed=42, slots_per_line=slots),
            tmp_path=tmp_path,
        ).coherence.invalidations
        for slots in (1, 2, 8)
    ]
    assert inv[0] < inv[1] < inv[2]
