"""Unit + property tests for the WARD region table (CAM model, §6.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.regions import RegionTable


class TestAddRemove:
    def test_add_and_lookup(self):
        t = RegionTable()
        r = t.add(0x1000, 0x2000)
        assert t.lookup(0x1000) is r
        assert t.lookup(0x1FFF) is r
        assert t.lookup(0x2000) is None
        assert t.lookup(0xFFF) is None

    def test_remove_clears_lookup(self):
        t = RegionTable()
        r = t.add(0, 64)
        t.remove(r)
        assert t.lookup(0) is None
        assert len(t) == 0

    def test_remove_twice_raises(self):
        t = RegionTable()
        r = t.add(0, 64)
        t.remove(r)
        with pytest.raises(KeyError):
            t.remove(r)

    def test_empty_region_rejected(self):
        t = RegionTable()
        with pytest.raises(ValueError):
            t.add(64, 64)

    def test_counters(self):
        t = RegionTable()
        r = t.add(0, 64)
        t.add(64, 128)
        t.remove(r)
        assert t.adds == 2 and t.removes == 1
        assert t.peak_occupancy == 2


class TestOverlap:
    def test_overlapping_regions_both_found(self):
        t = RegionTable()
        a = t.add(0, 128)
        b = t.add(64, 256)
        found = t.regions_containing(100)
        assert {r.region_id for r in found} == {a.region_id, b.region_id}

    def test_address_in_any_region_is_ward(self):
        # "If an address is somehow found in more than one region, we just
        # mark it as WARD" (§6.1)
        t = RegionTable()
        a = t.add(0, 128)
        t.add(64, 256)
        t.remove(a)
        assert t.contains(100)  # still covered by the second region
        assert not t.contains(32)

    def test_identical_regions(self):
        t = RegionTable()
        t.add(0, 64)
        t.add(0, 64)
        assert len(t.regions_containing(10)) == 2


class TestCapacity:
    def test_full_cam_rejects(self):
        t = RegionTable(capacity=2)
        assert t.add(0, 64) is not None
        assert t.add(64, 128) is not None
        assert t.add(128, 192) is None  # full: fall back to plain MESI
        assert t.rejected_adds == 1

    def test_capacity_frees_on_remove(self):
        t = RegionTable(capacity=1)
        r = t.add(0, 64)
        t.remove(r)
        assert t.add(64, 128) is not None

    def test_default_capacity_is_1024(self):
        assert RegionTable().capacity == 1024


class TestBlocksRegistry:
    def test_blocks_start_empty(self):
        t = RegionTable()
        r = t.add(0, 4096)
        assert r.blocks == set()

    def test_blocks_tracked_by_caller(self):
        t = RegionTable()
        r = t.add(0, 4096)
        r.blocks.add(0)
        r.blocks.add(64)
        assert len(r.blocks) == 2


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 200)),
        min_size=1,
        max_size=40,
    ),
    probes=st.lists(st.integers(0, 800), min_size=1, max_size=20),
    removals=st.sets(st.integers(0, 39)),
)
def test_lookup_matches_naive_model(ops, probes, removals):
    """Property: point lookups agree with a brute-force interval scan,
    across arbitrary adds and removals of possibly-overlapping regions."""
    table = RegionTable()
    live = {}
    for i, (start, length) in enumerate(ops):
        region = table.add(start, start + length)
        assert region is not None
        live[i] = region
    for i in removals:
        if i in live:
            table.remove(live.pop(i))
    for addr in probes:
        expected = any(r.start <= addr < r.end for r in live.values())
        assert table.contains(addr) == expected
        found = table.regions_containing(addr)
        expected_ids = {
            r.region_id for r in live.values() if r.start <= addr < r.end
        }
        assert {r.region_id for r in found} == expected_ids
