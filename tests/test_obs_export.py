"""Collector and exporter tests on synthetic event streams."""

import json

import pytest

from repro.common.config import dual_socket
from repro.obs.collect import (
    LatencyHistogram,
    MultiSink,
    PhaseHistogram,
    RegionProfile,
    RingBufferSink,
)
from repro.obs.export import (
    MANIFEST_SCHEMA,
    PID_COHERENCE,
    append_manifest,
    chrome_trace_events,
    flame_summary,
    manifest_json,
    run_manifest,
    version_metadata,
)
from repro.obs.tracer import (
    AccessEvent,
    MessageEvent,
    ReconcileEvent,
    RegionEvent,
    StealEvent,
)


def synthetic_region_stream():
    """add -> reconcile x2 -> remove, as the WARDen protocol emits them."""
    return [
        RegionEvent(cycle=100, thread=0, action="add",
                    region_id=7, start=0x1000, end=0x2000),
        ReconcileEvent(cycle=480, addr=0x1000, region_id=7,
                       copies=3, true_sharing=False, writebacks=2),
        ReconcileEvent(cycle=490, addr=0x1040, region_id=7,
                       copies=2, true_sharing=True, writebacks=1),
        RegionEvent(cycle=500, thread=0, action="remove", region_id=7,
                    start=0x1000, end=0x2000, blocks=2, reconcile_cycles=40),
    ]


class TestMultiSink:
    def test_fans_out_in_order(self):
        a, b = RingBufferSink(capacity=10), RingBufferSink(capacity=10)
        multi = MultiSink(a, b)
        ev = AccessEvent(cycle=1, thread=0, atype="load",
                         addr=0, size=8, latency=6)
        multi.emit(ev)
        assert a.events() == [ev] and b.events() == [ev]


class TestPhaseHistogram:
    def test_bins_by_cycle_window(self):
        hist = PhaseHistogram(bin_cycles=100)
        hist.emit(AccessEvent(cycle=5, thread=0, atype="load",
                              addr=0, size=8, latency=6))
        hist.emit(AccessEvent(cycle=99, thread=1, atype="store",
                              addr=64, size=8, latency=6))
        hist.emit(MessageEvent(cycle=250, mtype="GetS", link="intra", count=1))
        d = hist.to_dict()
        assert d["phases"]["0"] == {"access": 2}
        assert d["phases"]["2"] == {"message": 1}
        assert hist.kinds() == ["access", "message"]
        assert "phase (cycles)" in hist.render()

    def test_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            PhaseHistogram(bin_cycles=0)


class TestLatencyHistogram:
    def test_log2_buckets_and_totals(self):
        hist = LatencyHistogram()
        for lat in (6, 7, 100):
            hist.emit(AccessEvent(cycle=0, thread=0, atype="load",
                                  addr=0, size=8, latency=lat))
        # non-access events are ignored
        hist.emit(StealEvent(cycle=0, thief=0, victim=1, success=True))
        d = hist.to_dict()
        assert d["total_count"] == {"load": 3}
        assert d["total_cycles"] == {"load": 113}
        assert d["buckets"]["load|<8"] == 2       # 6 and 7 share bucket 3
        assert d["buckets"]["load|<128"] == 1     # 100 lands in bucket 7
        assert "avg 37.7" in hist.render()


class TestRegionProfile:
    def test_lifetime_and_reconcile_attribution(self):
        profile = RegionProfile()
        for ev in synthetic_region_stream():
            profile.emit(ev)
        assert profile.regions_opened == 1
        assert profile.regions_closed == 1
        assert profile.covered_cycles == 400
        assert profile.blocks_reconciled == 2
        assert profile.shared_blocks == 2
        assert profile.true_sharing_blocks == 1
        assert profile.true_sharing_ratio == 0.5
        record = profile.closed[0]
        assert record.lifetime == 400
        assert record.reconciled == 2 and record.writebacks == 3
        assert "median 400" in profile.render()

    def test_reject_counted_not_opened(self):
        profile = RegionProfile()
        profile.emit(RegionEvent(cycle=1, thread=0, action="reject",
                                 region_id=-1, start=0, end=64))
        assert profile.rejected == 1 and profile.regions_opened == 0


class TestChromeTraceSynthetic:
    def test_region_add_remove_becomes_slice(self):
        events = chrome_trace_events(synthetic_region_stream())
        slices = [e for e in events if e["name"] == "WARD region 7"]
        assert len(slices) == 1
        sl = slices[0]
        assert sl["ph"] == "X" and sl["ts"] == 100 and sl["dur"] == 400
        assert sl["pid"] == PID_COHERENCE
        assert sl["args"]["blocks_reconciled"] == 2

    def test_unpaired_add_becomes_open_instant(self):
        events = chrome_trace_events([
            RegionEvent(cycle=9, thread=0, action="add",
                        region_id=3, start=0, end=64),
        ])
        names = [e["name"] for e in events]
        assert "WARD region 3 (open)" in names


class TestManifests:
    def _result(self):
        from repro.analysis.run import run_benchmark
        return run_benchmark("fib", "warden", dual_socket(), size="test")

    def test_manifest_round_trips_through_json(self):
        config = dual_socket()
        result = self._result()
        line = manifest_json(run_manifest(result, config))
        assert "\n" not in line  # JSONL: one object per line
        back = json.loads(line)
        assert back["schema"] == MANIFEST_SCHEMA
        assert back["benchmark"] == "fib"
        assert back["stats"]["cycles"] == result.stats.cycles
        assert back["config"]["name"] == config.name
        from repro.common.stats import RunStats
        restored = RunStats.from_dict(back["stats"])
        assert restored.to_dict() == result.stats.to_dict()

    def test_append_manifest_is_jsonl(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        manifest = run_manifest(self._result())
        append_manifest(path, manifest)
        append_manifest(path, manifest)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == json.loads(lines[1])

    def test_version_metadata_keys(self):
        meta = version_metadata()
        assert meta["repro_version"] == __import__("repro").__version__
        assert meta["python"].count(".") == 2

    def test_robustness_block_attached_when_given(self):
        from repro.analysis.pool import MatrixReport

        result = self._result()
        assert "robustness" not in run_manifest(result)
        report = MatrixReport()
        report.record("retry", 1, 1, detail="transient")
        manifest = run_manifest(result, robustness=report.to_dict())
        back = json.loads(manifest_json(manifest))
        assert back["robustness"]["retries"] == 1
        assert back["robustness"]["events"][0]["task_index"] == 1


class TestFlameSummary:
    def test_classifies_by_latency(self):
        config = dual_socket()
        events = [
            AccessEvent(cycle=0, thread=0, atype="load", addr=0, size=8,
                        latency=config.l1.latency),
            AccessEvent(cycle=9, thread=0, atype="load", addr=64, size=8,
                        latency=config.cross_socket_latency() + 10),
        ]
        text = flame_summary(events, config)
        assert "access;load;private-hit" in text
        assert "access;load;cross-socket" in text

    def test_empty_stream(self):
        assert "no events" in flame_summary([])
