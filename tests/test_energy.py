"""Energy model tests (McPAT substitute)."""

import pytest

from repro.common.config import disaggregated, dual_socket
from repro.common.stats import RunStats
from repro.common.types import MessageType
from repro.energy.model import EnergyModel, percent_savings


def stats_with(cycles=1000, instrs=0, msgs=(), l3=0, dram=0, threads=24):
    s = RunStats(num_threads=threads)
    s.cycles = cycles
    s.cores.compute_instrs = instrs
    for mtype, link, n in msgs:
        s.coherence.count_message(mtype, link, n)
    s.coherence.l3_accesses = l3
    s.coherence.dram_accesses = dram
    return s


class TestComponents:
    def test_static_energy_scales_with_cycles_and_cores(self):
        cfg = dual_socket()
        model = EnergyModel(cfg)
        e1 = model.compute(stats_with(cycles=1000))
        e2 = model.compute(stats_with(cycles=2000))
        assert e2.core_static_nj == pytest.approx(2 * e1.core_static_nj)

    def test_core_dynamic_scales_with_instructions(self):
        model = EnergyModel(dual_socket())
        e = model.compute(stats_with(instrs=100))
        assert e.core_dynamic_nj == pytest.approx(
            100 * dual_socket().energy.core_dynamic_per_instr_nj
        )

    def test_dram_energy(self):
        model = EnergyModel(dual_socket())
        e = model.compute(stats_with(dram=10))
        assert e.dram_nj == pytest.approx(10 * dual_socket().energy.dram_access_nj)

    def test_local_messages_are_free(self):
        model = EnergyModel(dual_socket())
        e = model.compute(stats_with(msgs=[(MessageType.DATA, "local", 100)]))
        assert e.network_nj == 0.0

    def test_data_messages_cost_more_than_control(self):
        model = EnergyModel(dual_socket())
        data = model.compute(stats_with(msgs=[(MessageType.DATA, "intra", 10)]))
        ctrl = model.compute(stats_with(msgs=[(MessageType.INV, "intra", 10)]))
        assert data.network_nj > ctrl.network_nj

    def test_cross_socket_costs_more_than_intra(self):
        model = EnergyModel(dual_socket())
        far = model.compute(stats_with(msgs=[(MessageType.DATA, "socket", 10)]))
        near = model.compute(stats_with(msgs=[(MessageType.DATA, "intra", 10)]))
        assert far.network_nj > near.network_nj

    def test_disaggregated_links_cost_most(self):
        upi = EnergyModel(dual_socket()).compute(
            stats_with(msgs=[(MessageType.DATA, "socket", 10)])
        )
        remote = EnergyModel(disaggregated()).compute(
            stats_with(msgs=[(MessageType.DATA, "socket", 10)])
        )
        assert remote.network_nj > upi.network_nj

    def test_unknown_link_rejected(self):
        model = EnergyModel(dual_socket())
        with pytest.raises(ValueError):
            model.compute(stats_with(msgs=[(MessageType.DATA, "warp", 1)]))


class TestTotals:
    def test_processor_energy_is_sum(self):
        model = EnergyModel(dual_socket())
        s = stats_with(instrs=50, msgs=[(MessageType.DATA, "intra", 5)], dram=2, l3=3)
        e = model.compute(s)
        assert e.processor_nj == pytest.approx(
            e.cache_nj + e.dram_nj + e.network_nj + e.core_dynamic_nj + e.core_static_nj
        )

    def test_compute_fills_stats_object(self):
        model = EnergyModel(dual_socket())
        s = stats_with()
        model.compute(s)
        assert s.energy.processor_nj > 0


class TestPercentSavings:
    def test_basic(self):
        assert percent_savings(100.0, 80.0) == pytest.approx(20.0)

    def test_negative_when_worse(self):
        assert percent_savings(100.0, 110.0) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        assert percent_savings(0.0, 50.0) == 0.0
