"""CacheBlock and Directory entry tests."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.types import CoherenceState
from repro.coherence.directory import DirEntry, Directory
from repro.mem.block import CacheBlock

S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED
I = CoherenceState.INVALID
W = CoherenceState.WARD


class TestCacheBlock:
    def test_defaults(self):
        b = CacheBlock(0x40)
        assert b.state is I and b.written_mask == 0 and not b.dirty

    def test_written_mask_accumulates(self):
        b = CacheBlock(0, S)
        b.mark_written(0b0011)
        b.mark_written(0b1100)
        assert b.written_mask == 0b1111
        assert b.dirty

    def test_modified_state_is_dirty(self):
        assert CacheBlock(0, M).dirty

    def test_clear_written(self):
        b = CacheBlock(0, S)
        b.mark_written(0xFF)
        b.clear_written()
        assert b.written_mask == 0


class TestDirEntry:
    def test_owned_state_needs_owner(self):
        e = DirEntry(0)
        e.state = M
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_owner_with_foreign_sharers_rejected(self):
        e = DirEntry(0)
        e.state = E
        e.owner = 1
        e.sharers = {2}
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_shared_needs_sharers(self):
        e = DirEntry(0)
        e.state = S
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_shared_with_owner_rejected(self):
        e = DirEntry(0)
        e.state = S
        e.sharers = {0}
        e.owner = 0
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_invalid_with_copies_rejected(self):
        e = DirEntry(0)
        e.sharers = {1}
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_ward_with_owner_rejected(self):
        e = DirEntry(0)
        e.state = W
        e.owner = 3
        with pytest.raises(ProtocolError):
            e.check_invariants()

    def test_ward_with_any_sharers_ok(self):
        e = DirEntry(0)
        e.state = W
        e.sharers = {0, 1, 2}
        e.check_invariants()

    def test_valid_states_pass(self):
        e = DirEntry(0)
        e.check_invariants()  # I
        e.state = E
        e.owner = 0
        e.check_invariants()
        e.state = S
        e.owner = None
        e.sharers = {0, 1}
        e.check_invariants()


class TestDirectory:
    def test_entry_created_on_demand(self):
        d = Directory(0)
        assert len(d) == 0
        e = d.entry(0x40)
        assert len(d) == 1
        assert d.entry(0x40) is e

    def test_peek_does_not_create(self):
        d = Directory(0)
        assert d.peek(0x40) is None
        assert len(d) == 0
