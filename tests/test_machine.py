"""Machine facade tests: allocation, access dispatch, finalize, WARD API."""

import pytest

from repro.common.errors import ConfigError
from repro.common.types import AccessType
from repro.sim.machine import Machine
from tests.conftest import tiny_config


class TestConstruction:
    def test_protocol_by_name(self):
        assert Machine(tiny_config(), "mesi").protocol.name == "MESI"
        assert Machine(tiny_config(), "WARDEN").protocol.name == "WARDen"

    def test_protocol_by_class(self):
        from repro.coherence.warden import WARDenProtocol

        m = Machine(tiny_config(), WARDenProtocol)
        assert m.supports_ward

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            Machine(tiny_config(), "mosi-does-not-exist")

    def test_one_core_model_per_thread(self):
        cfg = tiny_config().replace(threads_per_core=2)
        m = Machine(cfg, "mesi")
        assert len(m.cores) == cfg.num_threads


class TestSbrk:
    def test_block_aligned_by_default(self, mesi):
        a = mesi.sbrk(10)
        b = mesi.sbrk(10)
        assert a % 64 == 0 and b % 64 == 0
        assert b > a

    def test_custom_alignment(self, mesi):
        a = mesi.sbrk(8, 4096)
        assert a % 4096 == 0

    def test_rejects_nonpositive(self, mesi):
        with pytest.raises(ValueError):
            mesi.sbrk(0)


class TestAccessDispatch:
    def test_load_advances_issuing_thread_only(self, mesi):
        a = mesi.sbrk(64)
        mesi.access(1, a, 8, AccessType.LOAD)
        assert mesi.cores[1].clock > 0
        assert mesi.cores[0].clock == 0

    def test_store_is_buffered(self, mesi):
        a = mesi.sbrk(64)
        mesi.access(0, a, 8, AccessType.STORE)
        assert mesi.cores[0].clock == 1

    def test_rmw_blocks(self, mesi):
        a = mesi.sbrk(64)
        mesi.access(0, a, 8, AccessType.RMW)
        assert mesi.cores[0].clock > 100

    def test_smt_threads_share_private_cache(self):
        cfg = tiny_config(num_sockets=1, cores_per_socket=1).replace(
            threads_per_core=2
        )
        m = Machine(cfg, "mesi")
        a = m.sbrk(64)
        m.access(0, a, 8, AccessType.LOAD)
        lat = m.access(1, a, 8, AccessType.LOAD)  # sibling hyperthread
        assert lat == cfg.l1.latency


class TestWardApi:
    def test_region_instruction_charged(self, warden):
        a = warden.sbrk(4096, 4096)
        region = warden.add_ward_region(2, a, a + 4096)
        assert region is not None
        assert warden.cores[2].stats.compute_instrs == 1
        warden.remove_ward_region(2, region)
        assert warden.cores[2].stats.compute_instrs == 2

    def test_mesi_machine_ignores_regions(self, mesi):
        a = mesi.sbrk(4096, 4096)
        assert mesi.add_ward_region(0, a, a + 4096) is None
        assert mesi.cores[0].stats.compute_instrs == 0


class TestFinalize:
    def test_finalize_aggregates_cores(self, mesi):
        a = mesi.sbrk(64)
        mesi.access(0, a, 8, AccessType.LOAD)
        mesi.access(1, a + 64, 8, AccessType.LOAD)
        stats = mesi.finalize()
        assert stats.cores.loads == 2
        assert stats.cycles == max(c.clock for c in mesi.cores)

    def test_finalize_with_makespan(self, mesi):
        stats = mesi.finalize(makespan=1234)
        assert stats.cycles == 1234

    def test_finalize_collects_cache_accesses(self, mesi):
        a = mesi.sbrk(64)
        mesi.access(0, a, 8, AccessType.LOAD)
        stats = mesi.finalize()
        assert stats.coherence.l1_accesses >= 1
        assert stats.coherence.l2_accesses >= 1

    def test_numa_placement_changes_home(self, mesi):
        a = mesi.sbrk(64, 64)
        mesi.place(a, 64, thread=mesi.config.cores_per_socket)  # socket 1
        assert mesi.protocol.home(a) == 1
