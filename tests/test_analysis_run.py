"""Experiment-driver tests: caching, verification, pairs."""

import pytest

from repro.analysis.run import (
    ResultMismatchError,
    clear_cache,
    run_benchmark,
    run_pair,
    run_pairs,
)
from tests.conftest import tiny_config


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunBenchmark:
    def test_result_matches_reference_by_construction(self):
        r = run_benchmark("fib", "mesi", tiny_config(), size="test")
        assert r.benchmark == "fib"
        assert r.protocol == "MESI"

    def test_cache_returns_same_object(self):
        a = run_benchmark("fib", "mesi", tiny_config(), size="test")
        b = run_benchmark("fib", "mesi", tiny_config(), size="test")
        assert a is b

    def test_cache_bypass(self):
        a = run_benchmark("fib", "mesi", tiny_config(), size="test")
        b = run_benchmark("fib", "mesi", tiny_config(), size="test",
                          use_cache=False)
        assert a is not b

    def test_distinct_protocols_not_conflated(self):
        a = run_benchmark("fib", "mesi", tiny_config(), size="test")
        b = run_benchmark("fib", "warden", tiny_config(), size="test")
        assert a is not b and a.protocol != b.protocol

    def test_mismatch_detection(self, monkeypatch):
        import dataclasses

        from repro.bench import BENCHMARKS

        broken = dataclasses.replace(BENCHMARKS["fib"], reference=lambda wl: -1)
        monkeypatch.setitem(BENCHMARKS, "fib", broken)
        with pytest.raises(ResultMismatchError):
            run_benchmark("fib", "mesi", tiny_config(), size="test",
                          use_cache=False)

    def test_ward_checked_flag(self):
        r = run_benchmark("fib", "warden", tiny_config(), size="test",
                          check_ward=True)
        assert r.ward_checked

    def test_energy_computed(self):
        r = run_benchmark("fib", "mesi", tiny_config(), size="test")
        assert r.stats.energy.processor_nj > 0


class TestPairs:
    def test_run_pair_same_input(self):
        m, w = run_pair("make_array", tiny_config(), size="test")
        assert m.protocol == "MESI" and w.protocol == "WARDen"
        assert m.result == w.result

    def test_run_pairs_uses_all_seeds(self):
        pairs = run_pairs("fib", tiny_config(), size="test", seeds=(1, 2))
        assert len(pairs) == 2
