"""Happens-before race detector tests (repro.verify.race).

Unit layer drives the detector hooks directly with real spawn-tree nodes;
the integration layer runs racy and race-free programs through the full
machine/runtime stack and asserts the acceptance property: an injected
cross-thread RAW inside a WARD region is detected with a diagnostic naming
the region and both tasks.
"""

import pytest

from repro.common.errors import RaceError
from repro.common.types import AccessType
from repro.hlpl.runtime import Runtime
from repro.hlpl.task import TaskNode
from repro.obs.tracer import ListSink, RaceEvent
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp
from repro.verify.race import RaceDetector, happens_before, vc_join
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW


def _tree(detector, nchildren=2):
    """Root plus ``nchildren`` concurrent children, all registered."""
    root = TaskNode(None)
    detector.on_root(root)
    children = [TaskNode(root) for _ in range(nchildren)]
    detector.on_fork(root, children)
    return root, children


class TestVectorClocks:
    def test_vc_join_is_pointwise_max(self):
        a = {1: 3, 2: 1}
        assert vc_join(dict(a), {2: 5, 7: 2}) == {1: 3, 2: 5, 7: 2}

    def test_fork_makes_children_concurrent(self):
        det = RaceDetector()
        _, (c1, c2) = _tree(det)
        vc1, vc2 = det.clock_of(c1), det.clock_of(c2)
        assert not happens_before((vc1[c1.task_id], c1.task_id), vc2)
        assert not happens_before((vc2[c2.task_id], c2.task_id), vc1)

    def test_join_orders_children_before_parent(self):
        det = RaceDetector()
        root, children = _tree(det)
        epochs = [
            (det.clock_of(c)[c.task_id], c.task_id) for c in children
        ]
        det.on_join(root, children)
        parent_vc = det.clock_of(root)
        assert all(happens_before(e, parent_vc) for e in epochs)

    def test_task_paths(self):
        det = RaceDetector()
        root, (c1, c2) = _tree(det)
        assert det.path_of(root) == "root"
        assert det.path_of(c1) == "root.0"
        assert det.path_of(c2) == "root.1"
        grand = [TaskNode(c2)]
        det.on_fork(c2, grand)
        assert det.path_of(grand[0]) == "root.1.0"


class TestClassification:
    def test_concurrent_raw_is_a_race(self):
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c2, 1, 64, 8, LOAD)
        (finding,) = det.races
        assert finding.kind == "raw"
        assert finding.prior.task_path == "root.0"
        assert finding.current.task_path == "root.1"

    def test_concurrent_war_is_a_race(self):
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        det.on_access(c1, 0, 64, 8, LOAD)
        det.on_access(c2, 1, 64, 8, STORE)
        assert [f.kind for f in det.races] == ["war"]

    def test_joined_child_write_then_parent_read_is_ordered(self):
        det = RaceDetector()
        root, children = _tree(det)
        det.on_access(children[0], 0, 64, 8, STORE)
        det.on_join(root, children)
        det.on_access(root, 0, 64, 8, LOAD)
        assert det.clean

    def test_sequential_siblings_are_ordered_via_parent(self):
        # fork {a}, join, fork {b}: b's accesses are ordered after a's.
        det = RaceDetector()
        root = TaskNode(None)
        det.on_root(root)
        a = [TaskNode(root)]
        det.on_fork(root, a)
        det.on_access(a[0], 0, 64, 8, STORE)
        det.on_join(root, a)
        b = [TaskNode(root)]
        det.on_fork(root, b)
        det.on_access(b[0], 1, 64, 8, LOAD)
        assert det.clean

    def test_waw_inside_shared_region_is_benign(self):
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        det.region_begin(0, 256)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c2, 1, 64, 8, STORE)
        assert det.clean
        (benign,) = det.benign_waws
        assert benign.kind == "benign-waw" and benign.region_ids

    def test_waw_outside_any_region_is_a_race(self):
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c2, 1, 64, 8, STORE)
        assert [f.kind for f in det.races] == ["waw"]

    def test_waw_across_region_epochs_is_a_race(self):
        # The write's epoch closed before the second write: no shared
        # region epoch, so apathy cannot be claimed.
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        region = det.region_begin(0, 256)
        det.on_access(c1, 0, 64, 8, STORE)
        det.region_end(region)
        det.region_begin(0, 256)
        det.on_access(c2, 1, 64, 8, STORE)
        assert [f.kind for f in det.races] == ["waw"]

    def test_raw_in_region_names_the_region(self):
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        region = det.region_begin(0, 256)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c2, 1, 64, 8, LOAD)
        (finding,) = det.races
        assert finding.region_ids == (region.region_id,)
        assert f"WARD region {region.region_id}" in finding.describe()

    def test_concurrent_rmw_pair_is_atomic_not_a_race(self):
        det = RaceDetector(raise_on_race=False)
        _, (c1, c2) = _tree(det)
        det.on_access(c1, 0, 64, 8, RMW)
        det.on_access(c2, 1, 64, 8, RMW)
        assert det.clean and det.atomic_updates == 1

    def test_raise_on_race_raises_with_finding(self):
        det = RaceDetector(benchmark="unit")
        _, (c1, c2) = _tree(det)
        det.on_access(c1, 0, 64, 8, STORE)
        with pytest.raises(RaceError) as info:
            det.on_access(c2, 1, 64, 8, LOAD)
        assert info.value.finding.kind == "raw"
        assert "root.0" in str(info.value) and "root.1" in str(info.value)
        assert "unit" in str(info.value)

    def test_findings_mirror_to_obs_sink(self):
        sink = ListSink()
        det = RaceDetector(raise_on_race=False, sink=sink)
        _, (c1, c2) = _tree(det)
        det.region_begin(0, 256)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c2, 1, 64, 8, STORE)  # benign
        det.on_access(c2, 1, 72, 8, STORE)
        det.on_access(c1, 0, 72, 8, LOAD)  # race
        kinds = [(e.action, e.race_kind) for e in sink.events
                 if isinstance(e, RaceEvent)]
        assert ("benign-waw", "benign-waw") in kinds
        assert ("race", "raw") in kinds

    def test_region_logs_record_in_region_accesses(self):
        det = RaceDetector(raise_on_race=False, record_regions=True)
        _, (c1, _) = _tree(det)
        region = det.region_begin(0, 128)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c1, 0, 512, 8, STORE)  # outside: not logged
        det.region_end(region)
        (log,) = det.region_logs
        assert log.entries == [("STORE", c1.task_id, 64)]

    def test_summary_counters(self):
        det = RaceDetector(benchmark="x", raise_on_race=False)
        _, (c1, c2) = _tree(det)
        det.on_access(c1, 0, 64, 8, STORE)
        det.on_access(c2, 1, 64, 8, LOAD)
        summary = det.summary()
        assert summary["benchmark"] == "x"
        assert summary["checked_accesses"] == 2
        assert summary["tasks_tracked"] == 3
        assert summary["races"] == 1


# ----------------------------------------------------------------------
# Integration through the full machine/runtime stack
# ----------------------------------------------------------------------

def _racy_root(ctx):
    """Cross-thread RAW inside a WARD region: child 1 reads what child 0
    wrote while both are live (the reader spins on compute first so the
    write deterministically lands before the read)."""
    arr = yield from ctx.alloc_array(16, name="shared")
    region = ctx.ward_begin(arr)

    def writer(c):
        yield from arr.set(0, 7)
        return 0

    def reader(c):
        yield ComputeOp(2000)
        value = yield from arr.get(0)
        return value

    results = yield from ctx.par(writer, reader)
    ctx.ward_end(region)
    return results


def _run(protocol: str, detector: RaceDetector):
    machine = Machine(tiny_config(), protocol)
    rt = Runtime(machine, race_detector=detector, seed=1)
    return rt.run(_racy_root)


class TestInjectedRaceAcceptance:
    def test_injected_ward_raw_raises_with_region_and_tasks(self):
        detector = RaceDetector(benchmark="racy")
        with pytest.raises(RaceError) as info:
            _run("warden", detector)
        message = str(info.value)
        finding = info.value.finding
        assert finding.kind == "raw"
        assert finding.region_ids  # the ward_begin region epoch
        assert finding.prior.task_path == "root.0"
        assert finding.current.task_path == "root.1"
        # Diagnostic names the benchmark, the region, and both tasks.
        assert "racy" in message
        assert f"WARD region {finding.region_ids[0]}" in message
        assert "task root.0" in message and "task root.1" in message

    def test_detection_is_protocol_independent(self):
        detector = RaceDetector(raise_on_race=False)
        _run("mesi", detector)
        assert [f.kind for f in detector.races] == ["raw"]
        assert detector.races[0].region_ids  # logical region, even on MESI

    def test_recording_mode_collects_structured_finding(self):
        sink = ListSink()
        detector = RaceDetector(raise_on_race=False, sink=sink)
        result, _ = _run("warden", detector)
        assert result == [0, 7]  # reader observed the racy write
        (finding,) = detector.races
        assert finding.addr and finding.prior.op_index > 0
        assert any(isinstance(e, RaceEvent) for e in sink.events)


class TestCleanPrograms:
    def test_fib_is_race_free(self):
        from repro.analysis.run import run_benchmark

        detector = RaceDetector(benchmark="fib")
        run_benchmark(
            "fib", "warden", tiny_config(), size="test",
            race_detector=detector, use_cache=False,
        )
        assert detector.clean and detector.checked_accesses > 0

    def test_primes_waws_are_benign(self):
        from repro.analysis.run import run_benchmark

        detector = RaceDetector(benchmark="primes", record_regions=True)
        run_benchmark(
            "primes", "warden", tiny_config(), size="test",
            race_detector=detector, use_cache=False,
        )
        assert detector.clean
        assert detector.benign_waws  # the sieve's constant stores
        assert all(f.region_ids for f in detector.benign_waws)
        assert detector.region_logs  # epochs closed and captured
