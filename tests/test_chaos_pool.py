"""Chaos suite: deterministic fault injection against the robust run matrix.

Every scenario arms one fault from :mod:`repro.analysis.faults` (worker
crash, worker hang, worker failure, cache corruption, transient store
error), runs the same small (benchmark x protocol x seed) matrix, and
asserts the three-part contract of the robustness layer:

1. the matrix *completes*,
2. the merged ``RunStats`` are bit-identical to a clean serial run,
3. the recovery (retry/timeout/respawn/fallback) is recorded in the
   :class:`MatrixReport` and surfaces in the run manifest.

Set ``REPRO_CHAOS_ARTIFACTS=<dir>`` to export each scenario's manifest
(CI uploads them when the job fails).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis import faults
from repro.analysis.faults import FaultSyntaxError, parse_plan
from repro.analysis.pool import (
    MatrixJournal,
    MatrixReport,
    RunTask,
    matrix_fingerprint,
    run_matrix,
    run_task_robust,
    task_fingerprint,
)
from repro.analysis.run import clear_cache, run_benchmark, set_disk_cache
from repro.common.errors import FaultInjected, PoolError, TaskTimeoutError
from repro.obs.export import run_manifest
from repro.obs.tracer import ListSink, MatrixEvent
from tests.conftest import tiny_config

#: a generous per-task ceiling — the injected hang sleeps far longer, and a
#: healthy tiny run finishes in milliseconds, so the bound is unambiguous
#: even on a loaded CI host
TIMEOUT = 20.0

#: the injected hang must outlast TIMEOUT on every attempt it covers
HANG = 120.0


@pytest.fixture(autouse=True)
def clean_slate():
    clear_cache()
    previous_disk = set_disk_cache(None)
    previous_plan = faults.uninstall()
    yield
    clear_cache()
    set_disk_cache(previous_disk)
    faults.install(previous_plan)


def small_matrix():
    config = tiny_config()
    return [
        RunTask(benchmark="fib", protocol=proto, config=config, size="test",
                seed=seed)
        for seed in (42, 43)
        for proto in ("mesi", "warden")
    ]


def stats_of(results):
    return [r.stats.to_dict() for r in results]


def export_artifact(name: str, payload: dict) -> None:
    """Drop a scenario manifest where the CI chaos job can pick it up."""
    directory = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if not directory:
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str),
        encoding="utf-8",
    )


# ----------------------------------------------------------------------
# Fault-plan syntax
# ----------------------------------------------------------------------


class TestFaultPlanSyntax:
    def test_parse_round_trips_through_describe(self):
        text = "worker.crash@1,worker.hang@0x2:30,cache.store.oserror@1"
        plan = parse_plan(text)
        assert parse_plan(plan.describe()).describe() == plan.describe()
        assert plan.specs["worker.hang"].times == 2
        assert plan.specs["worker.hang"].arg == 30.0

    def test_empty_and_none_disable(self):
        assert parse_plan(None) is None
        assert parse_plan("") is None
        assert parse_plan("  ,  ") is None

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSyntaxError):
            parse_plan("worker.explode@1")

    def test_bad_address_rejected(self):
        with pytest.raises(FaultSyntaxError):
            parse_plan("worker.crash@one")

    def test_bad_arg_rejected(self):
        with pytest.raises(FaultSyntaxError):
            parse_plan("worker.hang@0:soon")

    def test_env_plan_resolution(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker.fail@3")
        plan = faults.resolve_plan()
        assert plan is not None and "worker.fail" in plan.specs

    def test_explicit_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker.fail@3")
        plan = faults.resolve_plan("worker.crash@1")
        assert set(plan.specs) == {"worker.crash"}

    def test_worker_faults_never_fire_in_parent(self):
        faults.install(parse_plan("worker.crash@0,worker.fail@0"))
        # IN_WORKER is False here, so neither site may fire (otherwise the
        # serial fallback could crash the parent process).
        faults.worker_faults(0, 0)
        assert faults.active_plan().fired == []


# ----------------------------------------------------------------------
# The chaos scenarios
# ----------------------------------------------------------------------


class TestWorkerCrashRecovery:
    def test_crash_respawns_pool_and_matches_serial(self):
        tasks = small_matrix()
        serial = stats_of(run_matrix(tasks))
        report = MatrixReport()
        results = run_matrix(
            tasks, jobs=2, report=report, faults_plan="worker.crash@1",
            backoff_base=0.001,
        )
        assert stats_of(results) == serial
        assert report.respawns >= 1
        assert "respawn" in report.actions()
        manifest = run_manifest(
            results[0], tasks[0].config, robustness=report.to_dict()
        )
        assert manifest["robustness"]["respawns"] >= 1
        export_artifact("crash-recovery", manifest)

    def test_persistent_crash_degrades_to_serial(self):
        tasks = small_matrix()
        serial = stats_of(run_matrix(tasks))
        clear_cache()  # the fallback must re-simulate, not read the cache
        report = MatrixReport()
        results = run_matrix(
            tasks, jobs=2, report=report, faults_plan="worker.crash@0x99",
            max_respawns=1, backoff_base=0.001,
        )
        assert stats_of(results) == serial
        assert report.fallbacks == 1 and report.respawns >= 2
        assert report.actions()[-1] == "fallback"
        export_artifact(
            "crash-fallback",
            run_manifest(results[0], tasks[0].config,
                         robustness=report.to_dict()),
        )

    def test_persistent_crash_without_fallback_raises(self):
        tasks = small_matrix()
        with pytest.raises(PoolError, match="kept dying"):
            run_matrix(
                tasks, jobs=2, faults_plan="worker.crash@0x99",
                max_respawns=1, fallback_serial=False, backoff_base=0.001,
            )


class TestWorkerHangTimeout:
    def test_hang_is_killed_and_retried(self):
        tasks = small_matrix()
        serial = stats_of(run_matrix(tasks))
        report = MatrixReport()
        results = run_matrix(
            tasks, jobs=2, report=report, timeout=TIMEOUT, retries=1,
            faults_plan=f"worker.hang@0:{HANG}", backoff_base=0.001,
        )
        assert stats_of(results) == serial
        assert report.timeouts == 1
        assert [e.action for e in report.events if e.task_index == 0] == [
            "timeout"
        ]
        export_artifact(
            "hang-timeout",
            run_manifest(results[0], tasks[0].config,
                         robustness=report.to_dict()),
        )

    def test_timeout_budget_exhaustion_raises(self):
        tasks = small_matrix()[:2]
        with pytest.raises(TaskTimeoutError) as excinfo:
            run_matrix(
                tasks, jobs=2, timeout=1.5, retries=0,
                faults_plan=f"worker.hang@0x99:{HANG}", backoff_base=0.001,
            )
        assert excinfo.value.task_index == 0


class TestWorkerFailureRetry:
    def test_transient_failure_retried_to_success(self):
        tasks = small_matrix()
        serial = stats_of(run_matrix(tasks))
        report = MatrixReport()
        results = run_matrix(
            tasks, jobs=2, report=report, retries=2,
            faults_plan="worker.fail@2x2", backoff_base=0.001,
        )
        assert stats_of(results) == serial
        assert report.retries == 2
        retried = [e for e in report.events if e.action == "retry"]
        assert [e.task_index for e in retried] == [2, 2]
        manifest = run_manifest(
            results[2], tasks[2].config, robustness=report.to_dict()
        )
        assert manifest["robustness"]["retries"] == 2
        assert any(
            e["action"] == "retry" for e in manifest["robustness"]["events"]
        )
        export_artifact("fail-retry", manifest)

    def test_retry_budget_exhaustion_raises_pool_error(self):
        tasks = small_matrix()[:2]
        with pytest.raises(PoolError, match="failed after 2 attempt"):
            run_matrix(
                tasks, jobs=2, retries=1, faults_plan="worker.fail@1x99",
                backoff_base=0.001,
            )

    def test_report_events_mirror_into_obs_sink(self):
        tasks = small_matrix()[:2]
        sink = ListSink()
        report = MatrixReport(sink=sink)
        run_matrix(
            tasks, jobs=2, report=report, retries=1,
            faults_plan="worker.fail@1", backoff_base=0.001,
        )
        assert [type(e) for e in sink.events] == [MatrixEvent]
        assert sink.events[0].action == "retry"


class TestCacheChaos:
    def _run_fib(self):
        return run_benchmark("fib", "mesi", tiny_config(), size="test")

    def test_corrupted_load_evicts_and_reruns(self, tmp_path):
        from repro.analysis.pool import DiskCache

        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        fresh = self._run_fib()
        assert cache.stores == 1

        clear_cache()
        cache.hits = cache.misses = 0
        faults.install(parse_plan("cache.load.corrupt@1"))
        rerun = self._run_fib()
        assert rerun.stats.to_dict() == fresh.stats.to_dict()
        assert cache.hits == 0 and cache.misses == 1
        assert [h.site for h in faults.active_plan().fired] == [
            "cache.load.corrupt"
        ]
        # the corrupted entry was evicted and re-stored by the re-run
        assert cache.stores == 2 and len(cache) == 1

    def test_transient_store_error_is_absorbed(self, tmp_path):
        from repro.analysis.pool import DiskCache

        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        faults.install(parse_plan("cache.store.oserror@1"))
        result = self._run_fib()
        assert result.benchmark == "fib"  # the run itself is unharmed
        assert cache.stores == 0 and cache.store_errors == 1
        assert len(cache) == 0

        # the next store (fault exhausted) goes through
        clear_cache()
        self._run_fib()
        assert cache.stores == 1 and len(cache) == 1


class TestJournalResume:
    def test_interrupted_matrix_resumes_only_unfinished_tasks(self, tmp_path):
        tasks = small_matrix()
        serial = stats_of(run_matrix(tasks))
        journal_dir = str(tmp_path / "journal")

        report = MatrixReport()
        with pytest.raises(PoolError):
            run_matrix(
                tasks, jobs=2, report=report, resume=True,
                journal_dir=journal_dir, faults_plan="worker.fail@2x99",
                backoff_base=0.001,
            )
        journals = list(Path(journal_dir).glob("journal-*.jsonl"))
        assert len(journals) == 1
        checkpointed = sum(1 for _ in journals[0].open(encoding="utf-8"))
        assert 0 < checkpointed < len(tasks)

        resumed = MatrixReport()
        results = run_matrix(
            tasks, jobs=2, report=resumed, resume=True,
            journal_dir=journal_dir,
        )
        assert stats_of(results) == serial
        assert resumed.resumed == checkpointed
        # only the unfinished tasks were executed on the resume run
        assert resumed.completed == len(tasks) - checkpointed
        assert "resume" in resumed.actions()
        # a completed matrix cleans up its journal
        assert not list(Path(journal_dir).glob("journal-*.jsonl"))
        export_artifact(
            "journal-resume",
            run_manifest(results[0], tasks[0].config,
                         robustness=resumed.to_dict()),
        )

    def test_journal_results_are_bit_identical(self, tmp_path):
        tasks = small_matrix()[:2]
        serial = run_matrix(tasks)
        journal = MatrixJournal(
            tmp_path, matrix_fingerprint([task_fingerprint(t) for t in tasks])
        )
        for task, result in zip(tasks, serial):
            assert journal.append(task_fingerprint(task), result)
        loaded = journal.load()
        for task, original in zip(tasks, serial):
            restored = loaded[task_fingerprint(task)]
            assert restored.stats.to_dict() == original.stats.to_dict()
            assert restored.result == original.result

    def test_torn_tail_line_is_skipped(self, tmp_path):
        tasks = small_matrix()[:1]
        result = run_matrix(tasks)[0]
        journal = MatrixJournal(tmp_path, "torntest")
        journal.append(task_fingerprint(tasks[0]), result)
        with journal.path.open("a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "fingerprint": "xyz", "trunc')
        assert len(journal.load()) == 1


class TestRobustSingleTask:
    def test_run_task_robust_retries_transient_failure(self):
        task = small_matrix()[0]
        report = MatrixReport()
        calls = {"n": 0}

        real = faults.worker_faults

        def fail_once(index, attempt):
            calls["n"] += 1
            if calls["n"] == 1:
                raise FaultInjected("worker.fail", index)

        faults.worker_faults = fail_once
        faults.ACTIVE = True
        try:
            result, wall = run_task_robust(
                task, retries=1, report=report, backoff_base=0.001
            )
        finally:
            faults.worker_faults = real
            faults.ACTIVE = False
        assert result.benchmark == "fib" and wall >= 0.0
        assert report.retries == 1

    def test_run_task_robust_timeout_raises(self):
        task = small_matrix()[0]
        with pytest.raises(TaskTimeoutError):
            run_task_robust(
                task, timeout=1.5, retries=0,
                faults_plan=f"worker.hang@0x99:{HANG}",
            )
