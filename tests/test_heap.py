"""Heap hierarchy tests: bump allocation, pages, merges (paper Fig. 2)."""

import pytest

from repro.hlpl.heap import ALLOC_INSTRS, PAGE_ALLOC_INSTRS, PAGE_SIZE, Heap
from repro.hlpl.task import TaskNode


def make_sbrk():
    state = {"brk": 0x10000}

    def sbrk(nbytes, align=64):
        state["brk"] = (state["brk"] + align - 1) // align * align
        base = state["brk"]
        state["brk"] += nbytes
        return base

    return sbrk


@pytest.fixture
def heap():
    return Heap(TaskNode(None))


class TestBumpAllocation:
    def test_first_alloc_maps_a_page(self, heap):
        addr, page, cost = heap.alloc(16, make_sbrk())
        assert page is not None
        assert page.size == PAGE_SIZE
        assert addr == page.base
        assert cost == ALLOC_INSTRS + PAGE_ALLOC_INSTRS

    def test_bump_within_page(self, heap):
        sbrk = make_sbrk()
        a, _, _ = heap.alloc(16, sbrk)
        b, page, cost = heap.alloc(16, sbrk)
        assert page is None
        assert b == a + 16
        assert cost == ALLOC_INSTRS

    def test_alignment(self, heap):
        sbrk = make_sbrk()
        heap.alloc(10, sbrk)
        addr, _, _ = heap.alloc(8, sbrk, align=8)
        assert addr % 8 == 0

    def test_new_page_when_full(self, heap):
        sbrk = make_sbrk()
        heap.alloc(PAGE_SIZE - 8, sbrk)
        _, page, _ = heap.alloc(64, sbrk)
        assert page is not None
        assert len(heap.pages) == 2

    def test_large_object_gets_dedicated_pages(self, heap):
        addr, page, _ = heap.alloc(3 * PAGE_SIZE + 5, make_sbrk())
        assert page.size == 4 * PAGE_SIZE
        assert addr == page.base

    def test_large_object_does_not_disturb_bump(self, heap):
        sbrk = make_sbrk()
        a, _, _ = heap.alloc(16, sbrk)
        heap.alloc(2 * PAGE_SIZE, sbrk)
        b, page, _ = heap.alloc(16, sbrk)
        assert page is None
        assert b == a + 16

    def test_zero_alloc_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.alloc(0, make_sbrk())


class TestMerge:
    def test_pages_move_to_parent(self):
        sbrk = make_sbrk()
        parent_task = TaskNode(None)
        parent = Heap(parent_task)
        child = Heap(TaskNode(parent_task))
        child.alloc(16, sbrk)
        child.merge_into(parent)
        assert len(parent.pages) == 1
        assert child.pages == []

    def test_live_owner_follows_merges(self):
        sbrk = make_sbrk()
        root_task = TaskNode(None)
        mid_task = TaskNode(root_task)
        root, mid, leaf = Heap(root_task), Heap(mid_task), Heap(TaskNode(mid_task))
        leaf.alloc(16, sbrk)
        leaf.merge_into(mid)
        mid.merge_into(root)
        assert leaf.live_owner is root_task
        assert leaf.find() is root

    def test_alloc_into_merged_heap_rejected(self):
        parent = Heap(TaskNode(None))
        child = Heap(TaskNode(None))
        child.merge_into(parent)
        with pytest.raises(RuntimeError):
            child.alloc(8, make_sbrk())

    def test_merge_into_self_rejected(self, heap):
        with pytest.raises(RuntimeError):
            heap.merge_into(heap)

    def test_merge_chain_targets_root(self):
        a, b, c = (Heap(TaskNode(None)) for _ in range(3))
        b.merge_into(a)
        c.merge_into(b)  # resolves through find() to a
        assert c.find() is a


class TestMarkedPages:
    def test_marked_pages_filter(self, heap):
        sbrk = make_sbrk()
        heap.alloc(16, sbrk)
        heap.alloc(PAGE_SIZE, sbrk)
        assert heap.marked_pages() == []
        heap.pages[0].region = object()
        assert heap.marked_pages() == [heap.pages[0]]
