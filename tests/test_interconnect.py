"""Interconnect model tests."""

import pytest

from repro.common.config import disaggregated, dual_socket
from repro.common.stats import CoherenceStats
from repro.common.types import MessageType
from repro.mem.interconnect import Interconnect, LinkClass


@pytest.fixture
def noc():
    return Interconnect(dual_socket(), CoherenceStats())


class TestLinkClassification:
    def test_same_core_is_local(self, noc):
        assert noc.link_between_cores(3, 3) is LinkClass.LOCAL

    def test_same_socket_is_intra(self, noc):
        assert noc.link_between_cores(0, 11) is LinkClass.INTRA

    def test_cross_socket(self, noc):
        assert noc.link_between_cores(0, 12) is LinkClass.SOCKET

    def test_core_to_socket(self, noc):
        assert noc.link_core_to_socket(0, 0) is LinkClass.INTRA
        assert noc.link_core_to_socket(0, 1) is LinkClass.SOCKET


class TestLatency:
    def test_local_is_free(self, noc):
        assert noc.latency(LinkClass.LOCAL) == 0

    def test_intra_vs_socket(self, noc):
        assert noc.latency(LinkClass.SOCKET) > noc.latency(LinkClass.INTRA) > 0

    def test_disaggregated_uses_remote_link(self):
        cfg = disaggregated()
        noc = Interconnect(cfg, CoherenceStats())
        assert noc.latency(LinkClass.SOCKET) == cfg.remote_link_latency

    def test_memory_link_is_dram(self, noc):
        assert noc.latency(LinkClass.MEMORY) == dual_socket().dram_latency


class TestTrafficAccounting:
    def test_send_records_and_returns_latency(self, noc):
        lat = noc.send(MessageType.GET_S, LinkClass.INTRA)
        assert lat == noc.latency(LinkClass.INTRA)
        assert noc.stats.messages[(MessageType.GET_S, "intra")] == 1

    def test_send_count(self, noc):
        noc.send(MessageType.INV, LinkClass.SOCKET, count=5)
        assert noc.stats.messages[(MessageType.INV, "socket")] == 5

    def test_core_to_core_message(self, noc):
        lat = noc.core_to_core(0, 13, MessageType.DATA)
        assert lat == noc.latency(LinkClass.SOCKET)
        assert noc.stats.total_messages == 1
