"""Record/replay subsystem tests (repro.replay).

The load-bearing property is *bit-identity*: for the recorded (benchmark,
protocol, config, seed, policy) tuple, the vectorized replay kernel must
produce exactly the ``RunStats`` the interpreted engine produces — pinned
here against the same golden digest corpus that guards the engine itself,
for every benchmark x protocol cell, on both the numpy and the pure-Python
preprocessing paths.
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.conformance import stats_digest
from repro.analysis.pool import RunTask, replay_matrix, task_fingerprint
from repro.analysis.run import replay_benchmark, run_benchmark
from repro.analysis import run as run_mod
from repro.bench import PAPER_ORDER
from repro.common.config import dual_socket
from repro.replay import (
    Trace,
    TraceStore,
    record_benchmark,
    replay_trace,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "stats_digests.json"
)

with open(GOLDEN_PATH, encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)

CELLS = sorted(GOLDEN["entries"])


def _record(name, protocol, **kwargs):
    return record_benchmark(
        name, protocol, dual_socket(), size=GOLDEN["size"],
        seed=GOLDEN["seed"], **kwargs,
    )


# ----------------------------------------------------------------------
# Golden replay identity: every cell, both preprocessing paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cell", CELLS)
def test_replay_matches_golden_digest(cell, monkeypatch):
    name, protocol = cell.split("/")
    expected = GOLDEN["entries"][cell]["digest"]
    trace, recorded = _record(name, protocol)
    # the recording run itself is an unperturbed engine run
    assert stats_digest(recorded.stats) == expected

    replayed = replay_trace(trace)
    assert stats_digest(replayed.stats) == expected, (
        f"replay kernel diverges from the engine on {cell}"
    )

    monkeypatch.setenv("REPRO_NUMPY", "0")
    fallback = replay_trace(trace)
    assert stats_digest(fallback.stats) == expected, (
        f"pure-Python replay path diverges on {cell}"
    )


def test_replay_full_stats_equality():
    """Digest equality is the sweep; one cell also diffs the raw dicts so a
    digest-scheme bug cannot mask a real divergence."""
    trace, recorded = _record("tokens", "warden")
    replayed = replay_trace(trace)
    assert replayed.stats.to_dict() == recorded.stats.to_dict()
    assert replayed.result == recorded.result


# ----------------------------------------------------------------------
# Trace round-trip + store hygiene
# ----------------------------------------------------------------------
def test_trace_serialization_round_trip():
    trace, recorded = _record("msort", "mesi")
    clone = Trace.from_bytes(trace.to_bytes())
    assert len(clone) == len(trace)
    assert clone.meta == trace.meta
    replayed = replay_trace(clone)
    assert replayed.stats.to_dict() == recorded.stats.to_dict()
    assert replayed.result == recorded.result


def test_trace_store_round_trip(tmp_path):
    store = TraceStore(tmp_path)
    fp = "a" * 64
    trace, _ = _record("fib", "mesi", fingerprint=fp)
    path = store.store(fp, trace)
    assert path is not None and path.exists()
    loaded = store.load(fp)
    assert loaded is not None
    assert len(loaded) == len(trace)


def test_trace_store_rejects_corrupt_and_stale(tmp_path):
    store = TraceStore(tmp_path)
    fp = "b" * 64
    trace, _ = _record("fib", "mesi", fingerprint=fp)
    assert store.store(fp, trace) is not None

    # stale: embedded fingerprint differs from the requested key
    assert store.load("c" * 64) is None

    # stale: recorded by "different code"
    trace.meta["code_fingerprint"] = "not-the-current-code"
    assert store.store(fp, trace) is not None
    assert store.load(fp) is None

    # corrupt: load misses AND quarantines the file
    path = store.path_for(fp)
    path.write_bytes(b"garbage, not a trace")
    assert store.load(fp) is None
    assert not path.exists()


# ----------------------------------------------------------------------
# Integration: replay_benchmark / replay_matrix
# ----------------------------------------------------------------------
def test_replay_benchmark_records_then_replays(tmp_path):
    store = TraceStore(tmp_path)
    config = dual_socket()
    kwargs = dict(size="test", trace_store=store)
    first = replay_benchmark("grep", "mesi", config, **kwargs)   # records
    second = replay_benchmark("grep", "mesi", config, **kwargs)  # replays
    reference = run_benchmark(
        "grep", "mesi", config, size="test", use_cache=False,
        use_disk_cache=False,
    )
    assert first.stats.to_dict() == reference.stats.to_dict()
    assert second.stats.to_dict() == reference.stats.to_dict()
    assert second.result == reference.result
    # exactly one trace was recorded and reused
    assert len(list(store.root.glob("*.wtrace"))) == 1


def test_replay_benchmark_never_touches_result_caches(tmp_path):
    run_mod.clear_cache()
    before = dict(run_mod._CACHE)
    replay_benchmark(
        "fib", "mesi", dual_socket(), size="test",
        trace_store=TraceStore(tmp_path),
    )
    assert run_mod._CACHE == before, (
        "replay results must never enter the exact-result cache"
    )


def test_replay_env_escape_hatch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY", "0")
    store = TraceStore(tmp_path)
    result = replay_benchmark(
        "fib", "mesi", dual_socket(), size="test", trace_store=store,
    )
    reference = run_benchmark(
        "fib", "mesi", dual_socket(), size="test", use_cache=False,
        use_disk_cache=False,
    )
    assert result.stats.to_dict() == reference.stats.to_dict()
    # the interpreted path must not have written any trace
    assert list(store.root.glob("*.wtrace")) == []


def test_replay_matrix_sweeps_variants(tmp_path):
    config = dual_socket()
    base = RunTask(
        benchmark="tokens", protocol="mesi", config=config, size="test",
    )
    shrunk = dataclasses.replace(
        config,
        name="quarter-llc",
        l3=dataclasses.replace(config.l3, size_bytes=config.l3.size_bytes // 4),
    )
    store = TraceStore(tmp_path)
    results = replay_matrix(base, [config, shrunk], trace_store=store)
    reference = run_benchmark(
        "tokens", "mesi", config, size="test", use_cache=False,
        use_disk_cache=False,
    )
    # identity variant is bit-identical; the shrunk LLC is a trace-driven
    # approximation that can only see more (or equal) DRAM traffic
    assert results[0].stats.to_dict() == reference.stats.to_dict()
    assert (
        results[1].stats.coherence.dram_accesses
        >= results[0].stats.coherence.dram_accesses
    )
    assert results[1].machine == "quarter-llc"
    # one recording serves the whole sweep
    assert len(list(store.root.glob("*.wtrace"))) == 1


def test_recorded_trace_fingerprint_matches_task_key(tmp_path):
    config = dual_socket()
    task = RunTask(
        benchmark="fib", protocol="mesi", config=config, size="test", seed=42,
    )
    key = task_fingerprint(task)
    store = TraceStore(tmp_path)
    replay_benchmark("fib", "mesi", config, size="test", trace_store=store)
    assert store.path_for(key).exists()
