"""CLI smoke tests."""

import json

import pytest

import repro.cli as cli
from repro.analysis.metrics import ComparisonMetrics
from repro.analysis.run import set_disk_cache
from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Keep CLI invocations from writing .warden-cache/ into the repo."""
    monkeypatch.setattr(cli, "DEFAULT_CACHE_DIR", str(tmp_path / "cache"))
    yield
    set_disk_cache(None)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig8", "--size", "test"])
        assert args.figure == "fig8" and args.size == "test"

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_run_benchmark_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "7.9%" in out and "0.05%" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--iterations", "40"]) == 0
        assert "ping-pong" in capsys.readouterr().out

    def test_run_single_benchmark(self, capsys):
        assert main(["run", "fib", "--size", "test", "--protocol", "mesi"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "fib" in out

    def test_run_machine_preset(self, capsys):
        assert main(["run", "fib", "--size", "test", "--machine", "single"]) == 0
        out = capsys.readouterr().out
        assert "single-socket" in out

    def test_run_json_matches_text_counters(self, capsys):
        assert main(["run", "fib", "--size", "test"]) == 0
        text = capsys.readouterr().out
        assert main(["run", "fib", "--size", "test", "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"].startswith("warden-repro/run-manifest/")
        stats = manifest["stats"]
        assert f"cycles    : {stats['cycles']}" in text
        coh = stats["coherence"]
        assert f"inv/dg    : {coh['invalidations']}/{coh['downgrades']}" in text
        assert "config" in manifest and "meta" in manifest


class TestTraceAndProfile:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "fib", "--size", "test",
                     "--out", str(out_path)]) == 0
        assert "recorded" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        events = trace["traceEvents"]
        assert events
        assert all(
            "ph" in e and "ts" in e and "pid" in e and "tid" in e
            for e in events
        )
        assert {e["pid"] for e in events} == {1, 2}
        assert trace["otherData"]["benchmark"] == "fib"

    def test_trace_sampling_thins_the_stream(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "fib", "--size", "test", "--sample", "50",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        seen = int(out.split(" seen")[0].rsplit(": ", 1)[1])
        recorded = int(out.split(" recorded")[0].rsplit(", ", 1)[1])
        assert recorded <= seen // 50 + 1

    def test_profile_prints_sections(self, capsys):
        assert main(["profile", "fib", "--size", "test"]) == 0
        out = capsys.readouterr().out
        assert "flame-style" in out
        assert "WARD region profile" in out
        assert "access latencies" in out
        assert "cycle phase" in out


class TestFigureJson:
    def test_figure_json_rows_and_summary(self, capsys, monkeypatch):
        fake = ComparisonMetrics(
            benchmark="fib", speedup=1.5, interconnect_savings=10.0,
            processor_savings=5.0, inv_dg_reduced_per_kilo=12.0,
            downgrade_reduction_pct=60.0, invalidation_reduction_pct=40.0,
            ipc_improvement_pct=7.0, ward_coverage=0.5,
        )
        monkeypatch.setattr(
            cli, "_metrics_for", lambda config, names, size, jobs=1, **kw: [fake]
        )
        assert main(["figure", "fig9", "--size", "test", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure"] == "fig9"
        assert payload["rows"][0]["benchmark"] == "fib"
        assert payload["rows"][0]["speedup"] == 1.5
        assert "summary" in payload
        assert "robustness" not in payload  # clean run, no robust flags

    def test_every_figure_has_a_spec(self):
        from repro.cli import FIGURES, _FIGURE_SPECS
        assert set(FIGURES) == set(_FIGURE_SPECS)


class TestRobustnessFlags:
    FAKE = ComparisonMetrics(
        benchmark="fib", speedup=1.5, interconnect_savings=10.0,
        processor_savings=5.0, inv_dg_reduced_per_kilo=12.0,
        downgrade_reduction_pct=60.0, invalidation_reduction_pct=40.0,
        ipc_improvement_pct=7.0, ward_coverage=0.5,
    )

    def test_flags_parse_on_figure_and_bench(self):
        args = build_parser().parse_args(
            ["figure", "fig9", "--timeout", "5", "--retries", "2", "--resume"]
        )
        assert (args.timeout, args.retries, args.resume) == (5.0, 2, True)
        args = build_parser().parse_args(["bench", "--quick", "--retries", "1"])
        assert args.retries == 1 and args.timeout is None and not args.resume

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--retries", "-1"])

    def test_figure_json_surfaces_robustness_block(self, capsys, monkeypatch):
        def fake_metrics(config, names, size, jobs=1, timeout=None,
                         retries=0, resume=False, report=None):
            assert retries == 1
            if report is not None:
                report.record("retry", 0, 1, detail="injected")
            return [self.FAKE]

        monkeypatch.setattr(cli, "_metrics_for", fake_metrics)
        assert main(
            ["figure", "fig9", "--size", "test", "--json", "--retries", "1"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["robustness"]["retries"] == 1
        assert payload["robustness"]["events"][0]["action"] == "retry"

    def test_figure_text_prints_robustness_summary(self, capsys, monkeypatch):
        def fake_metrics(config, names, size, jobs=1, timeout=None,
                         retries=0, resume=False, report=None):
            if report is not None:
                report.record("timeout", 2, 0)
            return [self.FAKE]

        monkeypatch.setattr(cli, "_metrics_for", fake_metrics)
        assert main(["figure", "fig9", "--size", "test", "--retries", "1"]) == 0
        captured = capsys.readouterr()
        assert "robustness:" in captured.err
        assert "1 timeouts" in captured.err


class TestVerify:
    def test_parser_requires_all_xor_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--all", "--benchmark", "fib"])
        args = build_parser().parse_args(["verify", "--benchmark", "fib"])
        assert args.benchmark == "fib" and not args.all
        assert args.protocol == "warden" and args.jobs == 1

    def test_parser_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--benchmark", "nonsense"])

    def test_verify_fib_json_round_trips(self, capsys):
        from repro.analysis.conformance import SCHEMA, ConformanceReport

        assert main(
            ["verify", "--benchmark", "fib", "--size", "test", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SCHEMA
        assert payload["passed"] is True
        (result,) = payload["results"]
        assert result["benchmark"] == "fib" and result["races"] == 0
        back = ConformanceReport.from_dict(payload)
        assert back.passed and back.to_dict()["results"] == payload["results"]

    def test_verify_text_output(self, capsys):
        assert main(["verify", "--benchmark", "fib", "--size", "test"]) == 0
        out = capsys.readouterr().out
        assert "fib" in out and "PASS" in out
        assert "verify: all benchmarks conform" in out

    def test_verify_violation_exits_1(self, capsys, monkeypatch):
        from repro.analysis.conformance import (
            ConformanceReport, ConformanceResult,
        )

        def fake_run_verify(names, config, **kwargs):
            result = ConformanceResult(
                benchmark=names[0], size="test", machine=config.name,
                seed=42, protocol="warden",
            )
            result.fail("synthetic race for the exit-code test")
            return ConformanceReport(size="test", machine=config.name,
                                     seed=42, results=[result])

        monkeypatch.setattr(cli, "run_verify", fake_run_verify)
        assert main(["verify", "--benchmark", "fib", "--size", "test"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "synthetic race" in out
        assert "VIOLATIONS FOUND" in out

    def test_injected_worker_fault_is_not_masked(self, capsys, monkeypatch):
        # An operational fault in the differential-leg pool must surface as
        # exit 2 ("verify: error: ..."), never as a clean conformance PASS.
        from repro.analysis.run import clear_cache

        clear_cache()  # force the prefetch to actually run the task
        monkeypatch.setenv("REPRO_FAULTS", "worker.fail@0")
        code = main(["verify", "--benchmark", "fib", "--size", "test",
                     "--jobs", "2", "--no-oracle"])
        err = capsys.readouterr().err
        assert code == 2
        assert "verify: error:" in err and "injected fault" in err

    def test_worker_faults_inert_without_pool(self, capsys, monkeypatch):
        # worker.* sites only fire inside pool workers; a serial verify run
        # with the same plan must pass untouched.
        monkeypatch.setenv("REPRO_FAULTS", "worker.fail@0")
        assert main(["verify", "--benchmark", "fib", "--size", "test",
                     "--no-oracle"]) == 0
        assert "all benchmarks conform" in capsys.readouterr().out


class TestVerifyProtocolZoo:
    def test_parser_offers_every_registered_protocol(self):
        from repro.coherence.registry import available_protocols

        for key in available_protocols():
            args = build_parser().parse_args(
                ["verify", "--benchmark", "fib", "--protocol", key,
                 "--baseline", key]
            )
            assert args.protocol == key and args.baseline == key

    def test_parser_baseline_defaults_to_mesi(self):
        args = build_parser().parse_args(["verify", "--all"])
        assert args.baseline == "mesi" and args.protocol == "warden"

    def test_parser_rejects_unknown_protocol_or_baseline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "--all", "--protocol", "mosi"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "--all", "--baseline", "mosi"]
            )

    @pytest.mark.parametrize("protocol", ("moesi", "sisd"))
    def test_verify_new_protocols_exit_0(self, protocol, capsys):
        assert main(
            ["verify", "--benchmark", "fib", "--size", "test",
             "--protocol", protocol, "--baseline", "mesi"]
        ) == 0
        out = capsys.readouterr().out
        assert f"{protocol} vs baseline mesi" in out
        assert "all benchmarks conform" in out

    def test_verify_json_carries_baseline_and_per_protocol_stats(self, capsys):
        assert main(
            ["verify", "--benchmark", "fib", "--size", "test", "--json",
             "--protocol", "sisd", "--baseline", "warden"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload["results"]
        assert result["protocol"] == "sisd"
        assert result["baseline"] == "warden"
        assert set(result["stats"]) == {"sisd", "warden"}

    def test_run_accepts_zoo_protocols(self, capsys):
        for protocol in ("moesi", "sisd"):
            assert main(
                ["run", "fib", "--size", "test", "--protocol", protocol]
            ) == 0
            assert "fib" in capsys.readouterr().out
