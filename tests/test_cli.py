"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig8", "--size", "test"])
        assert args.figure == "fig8" and args.size == "test"

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_run_benchmark_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "7.9%" in out and "0.05%" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--iterations", "40"]) == 0
        assert "ping-pong" in capsys.readouterr().out

    def test_run_single_benchmark(self, capsys):
        assert main(["run", "fib", "--size", "test", "--protocol", "mesi"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "fib" in out
