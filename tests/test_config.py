"""Unit tests for machine configuration and presets."""

import pytest

from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    MachineConfig,
    disaggregated,
    dual_socket,
    single_socket,
    validation_machine,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(32 * 1024, 8, 64)
        assert cfg.num_sets == 64

    def test_validate_ok(self):
        CacheConfig(1024, 2, 64).validate()

    def test_validate_bad_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 3, 64).validate()

    def test_validate_bad_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(1024, 2, 64, latency=0).validate()


class TestPresets:
    def test_single_socket(self):
        cfg = single_socket()
        assert cfg.num_sockets == 1
        assert cfg.cores_per_socket == 12
        assert cfg.num_cores == 12

    def test_dual_socket_matches_table2(self):
        cfg = dual_socket()
        assert cfg.num_sockets == 2
        assert cfg.l1.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.l3.size_bytes == 2560 * 1024
        assert (cfg.l1.latency, cfg.l2.latency, cfg.l3.latency) == (6, 16, 71)
        assert cfg.l1.associativity == 8
        assert cfg.l3.associativity == 20
        assert cfg.block_size == 64
        assert not cfg.disaggregated

    def test_disaggregated_remote_latency_is_1us(self):
        cfg = disaggregated()
        assert cfg.disaggregated
        # 1 us at 3.3 GHz
        assert cfg.remote_link_latency == 3300
        assert cfg.cross_socket_latency() == 3300

    def test_dual_socket_cross_latency_uses_upi(self):
        cfg = dual_socket()
        assert cfg.cross_socket_latency() == cfg.socket_link_latency

    def test_validation_same_core_shares_a_core(self):
        cfg = validation_machine(same_core=True)
        assert cfg.num_cores == 1
        assert cfg.num_threads == 2
        assert cfg.core_of_thread(0) == cfg.core_of_thread(1) == 0

    def test_validation_cross_core(self):
        cfg = validation_machine(same_core=False)
        assert cfg.core_of_thread(0) != cfg.core_of_thread(1)


class TestTopology:
    def test_socket_of_core(self):
        cfg = dual_socket()
        assert cfg.socket_of_core(0) == 0
        assert cfg.socket_of_core(11) == 0
        assert cfg.socket_of_core(12) == 1
        assert cfg.socket_of_core(23) == 1

    def test_home_socket_interleaves(self):
        cfg = dual_socket()
        homes = {cfg.home_socket(block * 64) for block in range(8)}
        assert homes == {0, 1}

    def test_single_socket_home_always_zero(self):
        cfg = single_socket()
        assert all(cfg.home_socket(b * 64) == 0 for b in range(16))

    def test_replace_returns_new_config(self):
        cfg = dual_socket()
        other = cfg.replace(cores_per_socket=4)
        assert other.cores_per_socket == 4
        assert cfg.cores_per_socket == 12

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_sockets=0)
        with pytest.raises(ConfigError):
            MachineConfig(threads_per_core=0)

    def test_mismatched_block_size_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(l1=CacheConfig(1024, 2, 32, latency=4))


class TestEnergyConfig:
    def test_static_energy_per_cycle(self):
        e = EnergyConfig(core_static_w_per_core=0.55, frequency_ghz=3.3)
        per_cycle = e.static_nj_per_cycle_per_core()
        # 0.55 W / 3.3e9 Hz = 1.67e-10 J = 0.167 nJ per cycle
        assert per_cycle == pytest.approx(0.1667, rel=1e-3)

    def test_data_messages_cost_more_flits(self):
        e = EnergyConfig()
        assert e.data_flits > e.ctrl_flits
