"""Marking-policy semantics and the public API surface."""

import repro
from repro.hlpl.policy import MarkingPolicy


class TestMarkingPolicy:
    def test_none_marks_nothing(self):
        assert not MarkingPolicy.NONE.marks_pages
        assert not MarkingPolicy.NONE.marks_constructs

    def test_leaf_pages_marks_pages_only(self):
        assert MarkingPolicy.LEAF_PAGES.marks_pages
        assert not MarkingPolicy.LEAF_PAGES.marks_constructs

    def test_full_marks_both(self):
        assert MarkingPolicy.FULL.marks_pages
        assert MarkingPolicy.FULL.marks_constructs


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version(self):
        assert repro.__version__

    def test_fourteen_benchmarks_exported(self):
        assert len(repro.BENCHMARKS) == 14
        assert len(repro.PAPER_ORDER) == 14

    def test_protocol_classes_exported(self):
        assert repro.MESIProtocol.name == "MESI"
        assert repro.WARDenProtocol.name == "WARDen"
        assert repro.WARDenProtocol.supports_ward

    def test_preset_names(self):
        assert repro.single_socket().name == "single-socket"
        assert repro.dual_socket().name == "dual-socket"
        assert repro.disaggregated().disaggregated
