"""Spawn-tree node tests."""

from repro.hlpl.task import JoinRecord, TaskNode


class TestAncestry:
    def test_self_is_ancestor_or_self(self):
        t = TaskNode(None)
        assert t.is_ancestor_or_self(t)

    def test_parent_is_ancestor(self):
        root = TaskNode(None)
        child = TaskNode(root)
        grandchild = TaskNode(child)
        assert root.is_ancestor_or_self(grandchild)
        assert child.is_ancestor_or_self(grandchild)

    def test_child_is_not_ancestor_of_parent(self):
        root = TaskNode(None)
        child = TaskNode(root)
        assert not child.is_ancestor_or_self(root)

    def test_siblings_are_not_ancestors(self):
        root = TaskNode(None)
        a, b = TaskNode(root), TaskNode(root)
        assert not a.is_ancestor_or_self(b)
        assert not b.is_ancestor_or_self(a)

    def test_cousins_are_not_ancestors(self):
        root = TaskNode(None)
        a, b = TaskNode(root), TaskNode(root)
        a1, b1 = TaskNode(a), TaskNode(b)
        assert not a1.is_ancestor_or_self(b1)

    def test_depth_tracking(self):
        root = TaskNode(None)
        assert root.depth == 0
        assert TaskNode(TaskNode(root)).depth == 2

    def test_ids_are_unique(self):
        ids = {TaskNode(None).task_id for _ in range(100)}
        assert len(ids) == 100


class TestJoinRecord:
    def test_initial_state(self):
        record = JoinRecord(object(), 3, counter_addr=0x40)
        assert record.remaining == 3
        assert record.results == [None, None, None]
        assert record.children == []
