"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    AccessType,
    CoherenceState,
    MessageType,
    block_of,
    block_offset,
    block_range,
    sector_mask,
)


class TestAccessType:
    def test_load_is_read_only(self):
        assert AccessType.LOAD.is_read
        assert not AccessType.LOAD.is_write

    def test_store_is_write_only(self):
        assert AccessType.STORE.is_write
        assert not AccessType.STORE.is_read

    def test_rmw_is_both(self):
        assert AccessType.RMW.is_read
        assert AccessType.RMW.is_write


class TestCoherenceState:
    def test_invalid_grants_nothing(self):
        assert not CoherenceState.INVALID.grants_read
        assert not CoherenceState.INVALID.grants_write

    def test_shared_grants_read_only(self):
        assert CoherenceState.SHARED.grants_read
        assert not CoherenceState.SHARED.grants_write

    @pytest.mark.parametrize(
        "state",
        [CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE, CoherenceState.WARD],
    )
    def test_owned_states_grant_write(self, state):
        assert state.grants_read
        assert state.grants_write

    def test_only_w_is_ward(self):
        assert CoherenceState.WARD.is_ward
        for state in CoherenceState:
            if state is not CoherenceState.WARD:
                assert not state.is_ward


class TestMessageType:
    def test_data_messages_carry_data(self):
        assert MessageType.DATA.carries_data
        assert MessageType.DATA_E.carries_data
        assert MessageType.WB_DATA.carries_data

    @pytest.mark.parametrize(
        "mtype",
        [MessageType.GET_S, MessageType.GET_M, MessageType.INV,
         MessageType.INV_ACK, MessageType.UPGRADE, MessageType.RECONCILE],
    )
    def test_control_messages_do_not(self, mtype):
        assert not mtype.carries_data


class TestBlockHelpers:
    def test_block_of_aligns_down(self):
        assert block_of(0) == 0
        assert block_of(63) == 0
        assert block_of(64) == 64
        assert block_of(130) == 128

    def test_block_of_custom_size(self):
        assert block_of(130, 32) == 128
        assert block_of(127, 32) == 96

    def test_block_offset(self):
        assert block_offset(0) == 0
        assert block_offset(70) == 6
        assert block_offset(63) == 63

    def test_block_range_single(self):
        assert list(block_range(0, 1)) == [0]
        assert list(block_range(10, 8)) == [0]

    def test_block_range_crossing(self):
        assert list(block_range(60, 8)) == [0, 64]

    def test_block_range_multi(self):
        assert list(block_range(0, 256)) == [0, 64, 128, 192]

    def test_block_range_empty(self):
        assert list(block_range(100, 0)) == []

    def test_block_range_exact_end(self):
        assert list(block_range(64, 64)) == [64]


class TestSectorMask:
    def test_single_byte(self):
        assert sector_mask(0, 1) == 0b1
        assert sector_mask(3, 1) == 0b1000

    def test_word(self):
        assert sector_mask(0, 8) == 0xFF
        assert sector_mask(8, 8) == 0xFF00

    def test_offset_within_block(self):
        assert sector_mask(64, 8) == 0xFF  # block-relative
        assert sector_mask(72, 8) == 0xFF00

    def test_full_block(self):
        assert sector_mask(0, 64) == (1 << 64) - 1

    def test_crossing_block_rejected(self):
        with pytest.raises(ValueError):
            sector_mask(60, 8)

    def test_masks_disjoint_for_disjoint_bytes(self):
        a = sector_mask(0, 8)
        b = sector_mask(8, 8)
        assert a & b == 0
