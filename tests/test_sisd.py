"""SI/SD protocol tests: self-invalidation, self-downgrade, empty dirs.

The protocol never touches a remote cache: stores complete locally on any
cached copy, sync points (region removal) self-downgrade dirty lines and
self-invalidate every covered copy, and atomics execute at the home LLC.
The directory stays empty for the whole run.
"""

import pytest

from repro.common.types import AccessType, CoherenceState
from repro.sim.machine import Machine
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW
I = CoherenceState.INVALID
S = CoherenceState.SHARED
M = CoherenceState.MODIFIED
W = CoherenceState.WARD


@pytest.fixture
def m():
    return Machine(tiny_config(), "sisd")


def priv(machine, core, addr):
    return machine.protocol.private_block(core, addr)


class TestNoDirectoryState:
    def test_misses_create_no_directory_entries(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, STORE)
        m.access(2, a, 8, RMW)
        for directory in m.protocol.dirs:
            assert len(directory) == 0

    def test_load_miss_installs_shared(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        assert priv(m, 0, a).state is S

    def test_store_miss_installs_modified(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is M

    def test_store_on_shared_copy_is_silent(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        msgs0 = m.run_stats.coherence.total_messages
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is M
        assert priv(m, 1, a).state is S  # the other copy is untouched
        assert m.run_stats.coherence.total_messages == msgs0

    def test_concurrent_writers_never_invalidate_each_other(self, m):
        a = m.sbrk(64, 64)
        for core in range(4):
            m.access(core, a, 8, STORE)
        for core in range(4):
            assert priv(m, core, a).state is M
        assert m.run_stats.coherence.invalidations == 0
        assert m.run_stats.coherence.downgrades == 0
        m.protocol.check_invariants()


class TestSyncPoint:
    def test_region_copies_are_tagged_w(self, m):
        a = m.sbrk(64, 64)
        m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is W
        assert m.run_stats.coherence.ward_accesses >= 1

    def test_existing_copies_join_the_region(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        assert priv(m, 0, a).state is S
        m.add_ward_region(0, a, a + 64)
        assert priv(m, 0, a).state is W

    def test_remove_self_downgrades_dirty_copies(self, m):
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        wb0 = m.run_stats.coherence.writebacks
        m.remove_ward_region(0, region)
        assert m.run_stats.coherence.writebacks == wb0 + 1
        assert m.run_stats.coherence.extra["self_downgrades"] == 1
        assert priv(m, 0, a) is None

    def test_remove_self_invalidates_clean_copies_without_writeback(self, m):
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, LOAD)
        wb0 = m.run_stats.coherence.writebacks
        m.remove_ward_region(0, region)
        assert m.run_stats.coherence.writebacks == wb0
        assert m.run_stats.coherence.extra["self_invalidations"] == 1
        assert priv(m, 0, a) is None

    def test_every_core_self_invalidates_at_sync(self, m):
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        for core in range(4):
            m.access(core, a, 8, STORE)
        m.remove_ward_region(0, region)
        for core in range(4):
            assert priv(m, core, a) is None
        assert m.run_stats.coherence.extra["self_invalidations"] == 4
        m.protocol.check_invariants()

    def test_overlapping_region_keeps_copies_alive(self, m):
        a = m.sbrk(128, 64)
        wide = m.add_ward_region(0, a, a + 128)
        narrow = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        m.remove_ward_region(0, narrow)
        assert priv(m, 0, a).state is W  # still covered by ``wide``
        m.remove_ward_region(0, wide)
        assert priv(m, 0, a) is None

    def test_sync_cycles_accounted(self, m):
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        m.remove_ward_region(0, region)
        assert (
            m.protocol.sync_cycles
            == m.config.reconcile_cycles_per_block
        )


class TestAtomics:
    def test_rmw_executes_at_home_and_caches_nothing(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, RMW)
        assert priv(m, 0, a) is None
        for directory in m.protocol.dirs:
            assert len(directory) == 0

    def test_rmw_flushes_own_dirty_copy_first(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, STORE)
        wb0 = m.run_stats.coherence.writebacks
        m.access(0, a, 8, RMW)
        assert m.run_stats.coherence.writebacks == wb0 + 1
        assert priv(m, 0, a) is None

    def test_rmw_leaves_other_copies_alone(self, m):
        a = m.sbrk(64, 64)
        m.access(1, a, 8, LOAD)
        m.access(0, a, 8, RMW)
        assert priv(m, 1, a).state is S
        assert m.run_stats.coherence.invalidations == 0


class TestEviction:
    def test_clean_eviction_is_silent(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        msgs0 = m.run_stats.coherence.total_messages
        m.protocol._evict_private(0, priv(m, 0, a))
        assert m.run_stats.coherence.total_messages == msgs0

    def test_dirty_eviction_self_downgrades(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, STORE)
        wb0 = m.run_stats.coherence.writebacks
        m.protocol._evict_private(0, priv(m, 0, a))
        assert m.run_stats.coherence.writebacks == wb0 + 1
