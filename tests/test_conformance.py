"""Differential conformance harness tests (repro.analysis.conformance).

Unit layer exercises the value-level oracle replay and the stats-invariant
checks (via doctored stats); the integration layer runs the full harness
on real benchmarks and round-trips the report through its JSON form.
"""

import random
from types import SimpleNamespace

import pytest

from repro.analysis import conformance
from repro.analysis.conformance import (
    ConformanceReport,
    ConformanceResult,
    replay_region_oracle,
    run_verify,
    stats_digest,
    verify_benchmark,
)
from repro.verify.race import RegionLog
from tests.conftest import tiny_config


def _log(entries, *, region_id=3, start=0, end=256, truncated=False):
    return RegionLog(
        region_id=region_id, start=start, end=end,
        entries=list(entries), truncated=truncated,
    )


class TestOracleReplay:
    def test_compliant_log_is_clean(self):
        # Disjoint writers plus each task reading only its own writes.
        log = _log([
            ("STORE", 1, 0x40), ("LOAD", 1, 0x40),
            ("STORE", 2, 0x48), ("RMW", 2, 0x48),
        ])
        assert replay_region_oracle(log, random.Random(1), frozenset()) == []

    def test_cross_task_raw_is_observable_incoherence(self):
        log = _log([("STORE", 1, 0x40), ("LOAD", 2, 0x40)])
        failures = replay_region_oracle(log, random.Random(1), frozenset())
        assert len(failures) == 1
        assert "observable incoherence" in failures[0]
        assert "0x40" in failures[0]

    def test_waw_outside_benign_set_is_order_dependent(self):
        log = _log([("STORE", 1, 0x40), ("STORE", 2, 0x40)])
        failures = replay_region_oracle(log, random.Random(1), frozenset())
        assert failures and "reconciliation order" in failures[0]

    def test_benign_waw_addresses_are_exempt(self):
        log = _log([
            ("STORE", 1, 0x40), ("STORE", 2, 0x40),
            ("LOAD", 2, 0x40),  # sees its own write; SC may differ
        ])
        assert replay_region_oracle(log, random.Random(1), frozenset({0x40})) == []

    def test_truncated_log_is_skipped_with_notice(self):
        log = _log([("STORE", 1, 0x40)], truncated=True)
        (message,) = replay_region_oracle(log, random.Random(1), frozenset())
        assert "truncated" in message and "skipped" in message


# ----------------------------------------------------------------------
# Stats-invariant checks against doctored runs
# ----------------------------------------------------------------------

def _fake_stats(compute=100, adds=0, removes=0, ward_accesses=0,
                inv=0, dg=0, coverage=0.0):
    return SimpleNamespace(
        cycles=10,
        instructions=100,
        cores=SimpleNamespace(compute_instrs=compute),
        coherence=SimpleNamespace(
            invalidations=inv,
            downgrades=dg,
            ward_accesses=ward_accesses,
            ward_region_adds=adds,
            ward_region_removes=removes,
            ward_coverage=coverage,
        ),
    )


def _install_fake_runs(monkeypatch, mesi_run, warden_run):
    def fake_run_benchmark(name, protocol, config, **kwargs):
        return mesi_run if protocol == "mesi" else warden_run

    monkeypatch.setattr(conformance, "run_benchmark", fake_run_benchmark)


class TestInvariantChecks:
    def test_doctored_runs_trip_every_invariant(self, monkeypatch):
        mesi = SimpleNamespace(
            result=[1], stats=_fake_stats(compute=100, ward_accesses=5, inv=0)
        )
        warden = SimpleNamespace(
            result=[2],
            stats=_fake_stats(
                compute=150, adds=2, removes=4, inv=500, coverage=1.5
            ),
        )
        _install_fake_runs(monkeypatch, mesi, warden)
        out = verify_benchmark("fib", tiny_config(), check_oracle=False)
        assert not out.passed
        text = "\n".join(out.failures)
        assert "different results" in text
        assert "compute-instruction identity broken" in text
        assert "removes (4) exceed adds (2)" in text
        assert "mesi reported nonzero ward_accesses" in text
        assert "coverage 1.5 outside [0, 1]" in text
        assert "exceed MESI" in text

    def test_consistent_fakes_pass(self, monkeypatch):
        mesi = SimpleNamespace(result=[1], stats=_fake_stats(compute=100))
        warden = SimpleNamespace(
            result=[1], stats=_fake_stats(compute=104, adds=2, removes=2,
                                          ward_accesses=9, coverage=0.5)
        )
        _install_fake_runs(monkeypatch, mesi, warden)
        out = verify_benchmark("fib", tiny_config(), check_oracle=False)
        assert out.passed, out.failures


# ----------------------------------------------------------------------
# Full harness on real benchmarks
# ----------------------------------------------------------------------

class TestRunVerify:
    def test_fib_and_primes_conform(self):
        report = run_verify(["fib", "primes"], tiny_config(), size="test")
        assert report.passed
        by_name = {r.benchmark: r for r in report.results}
        assert by_name["fib"].races == 0
        primes = by_name["primes"]
        assert primes.races == 0
        assert primes.benign_waws > 0  # the sieve's apathetic stores
        assert primes.oracle_regions > 0
        assert primes.detector["checked_accesses"] > 0
        assert set(primes.stats) == {"mesi", "warden"}

    def test_any_registered_pair_verifies(self):
        # The harness is baseline/candidate-generic: every registered
        # protocol conforms against MESI, and non-MESI baselines work too.
        from repro.coherence.registry import available_protocols

        for candidate in available_protocols():
            report = run_verify(
                ["fib"], tiny_config(), size="test", protocol=candidate,
                check_oracle=False,
            )
            assert report.passed, (candidate, report.results[0].failures)
            (result,) = report.results
            assert result.baseline == "mesi"
            assert set(result.stats) == {"mesi", candidate}
        report = run_verify(
            ["fib"], tiny_config(), size="test",
            protocol="sisd", baseline="warden", check_oracle=False,
        )
        assert report.passed, report.results[0].failures
        assert set(report.results[0].stats) == {"warden", "sisd"}

    def test_report_round_trips_through_json_dict(self):
        report = run_verify(["fib"], tiny_config(), size="test")
        data = report.to_dict()
        assert data["schema"] == "warden-repro/verify/v1"
        assert data["passed"] is True
        back = ConformanceReport.from_dict(data)
        assert back.to_dict() == data

    def test_failed_result_survives_round_trip(self):
        result = ConformanceResult(
            benchmark="x", size="test", machine="m", seed=1, protocol="warden"
        )
        result.fail("boom")
        report = ConformanceReport(size="test", machine="m", seed=1,
                                   results=[result])
        assert not report.passed
        back = ConformanceReport.from_dict(report.to_dict())
        assert not back.passed
        assert back.results[0].failures == ["boom"]


class TestStatsDigest:
    def test_digest_is_deterministic_and_discriminating(self):
        from repro.analysis.run import run_benchmark

        a = run_benchmark("fib", "warden", tiny_config(), size="test")
        b = run_benchmark("fib", "warden", tiny_config(), size="test")
        c = run_benchmark("fib", "mesi", tiny_config(), size="test")
        assert stats_digest(a.stats) == stats_digest(b.stats)
        assert stats_digest(a.stats) != stats_digest(c.stats)
        assert len(stats_digest(a.stats)) == 64
