"""Bit-identity of the epoch-batched engine vs per-op reference stepping.

The epoch fast path (``REPRO_EPOCH_BATCH=1``, the default) must produce
*exactly* the statistics of the per-op reference engine
(``REPRO_EPOCH_BATCH=0``): same schedule, same cache/coherence counters,
same cycles — see the min-clock preservation argument in
``repro/sim/engine.py`` and EXPERIMENTS.md.
"""

import os

import pytest

from repro.analysis.run import run_benchmark
from repro.bench import BENCHMARKS
from repro.common.config import dual_socket
from repro.common.errors import SimulationError
from repro.common.types import AccessType
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.ops import (
    ComputeBatchOp,
    ComputeOp,
    GatherBatchOp,
    LoadBatchOp,
    LoadOp,
    StoreBatchOp,
    StoreOp,
)
from tests.conftest import tiny_config


def _run_in_mode(name: str, protocol: str, mode: str):
    """Run one benchmark with REPRO_EPOCH_BATCH forced to ``mode``."""
    saved = os.environ.get("REPRO_EPOCH_BATCH")
    os.environ["REPRO_EPOCH_BATCH"] = mode
    try:
        return run_benchmark(
            name,
            protocol,
            dual_socket(),
            size="test",
            use_cache=False,
            use_disk_cache=False,
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_EPOCH_BATCH", None)
        else:
            os.environ["REPRO_EPOCH_BATCH"] = saved


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_epoch_batching_is_bit_identical(name):
    """Every benchmark/protocol pair: RunStats (including CoherenceStats)
    must match field-for-field between batched and per-op stepping."""
    for protocol in ("mesi", "warden"):
        batched = _run_in_mode(name, protocol, "1")
        reference = _run_in_mode(name, protocol, "0")
        assert batched.stats.to_dict() == reference.stats.to_dict(), (
            f"{name}/{protocol}: epoch-batched stats diverge from per-op"
        )
        assert batched.result == reference.result


# ----------------------------------------------------------------------
# Engine-level equivalence: batch ops vs the scalar streams they replace
# ----------------------------------------------------------------------
def _pinned_run(gen_factory):
    """Run one pinned strand; return (machine, engine, resume values)."""
    machine = Machine(tiny_config(), "mesi")
    engine = Engine(machine)
    seen = []
    engine.pin(0, gen_factory(machine, seen))
    engine.run()
    return machine, engine, seen


def _core_fingerprint(machine):
    core = machine.cores[0]
    s = core.stats
    return (
        core.clock,
        s.loads,
        s.stores,
        s.compute_instrs,
        s.load_stall_cycles,
        s.store_buffer_stall_cycles,
        machine.protocol.stats.total_accesses,
        machine.protocol.l1[0].hits,
        machine.protocol.l1[0].misses,
    )


class TestBatchOpEquivalence:
    def test_load_batch_matches_scalar_stream(self):
        def scalar(machine, seen):
            base = machine.sbrk(256)
            total = 0
            for i in range(8):
                total += yield LoadOp(base + 8 * i, 8)
                yield ComputeOp(3)
            seen.append(total)

        def batched(machine, seen):
            base = machine.sbrk(256)
            total = yield LoadBatchOp(base, 8, 8, 8, instrs=3)
            seen.append(total)

        m1, e1, s1 = _pinned_run(scalar)
        m2, e2, s2 = _pinned_run(batched)
        assert _core_fingerprint(m1) == _core_fingerprint(m2)
        assert e1.steps == e2.steps  # one step per element micro-op
        assert s1 == s2  # summed latency equals the scalar sum

    def test_store_batch_compute_first_matches_scalar_stream(self):
        def scalar(machine, seen):
            base = machine.sbrk(256)
            total = 0
            for i in range(6):
                yield ComputeOp(2)
                total += yield StoreOp(base + 8 * i, 8)
            seen.append(total)

        def batched(machine, seen):
            base = machine.sbrk(256)
            total = yield StoreBatchOp(
                base, 8, 6, 8, instrs=2, compute_first=True
            )
            seen.append(total)

        m1, e1, s1 = _pinned_run(scalar)
        m2, e2, s2 = _pinned_run(batched)
        assert _core_fingerprint(m1) == _core_fingerprint(m2)
        assert e1.steps == e2.steps
        assert s1 == s2

    def test_compute_batch_matches_scalar_stream(self):
        def scalar(machine, seen):
            for _ in range(10):
                yield ComputeOp(7)

        def batched(machine, seen):
            yield ComputeBatchOp(7, 10)

        m1, e1, _ = _pinned_run(scalar)
        m2, e2, _ = _pinned_run(batched)
        assert _core_fingerprint(m1) == _core_fingerprint(m2)
        assert e1.steps == e2.steps

    def test_gather_batch_matches_scalar_stream(self):
        # out[i] = f(src[i], src[i-1]): the dedup-style stencil pattern
        def scalar(machine, seen):
            src = machine.sbrk(256)
            out = machine.sbrk(256)
            total = 0
            for i in range(1, 8):
                total += yield LoadOp(src + 8 * i, 8)
                total += yield LoadOp(src + 8 * (i - 1), 8)
                yield ComputeOp(1)
                total += yield StoreOp(out + 8 * i, 8)
            seen.append(total)

        def batched(machine, seen):
            src = machine.sbrk(256)
            out = machine.sbrk(256)
            pattern = (
                (0, src, 8, 8, None),
                (0, src - 8, 8, 8, None),
                (2, 1, 0, 0, None),
                (1, out, 8, 8, None),
            )
            total = yield GatherBatchOp(1, 7, pattern)
            seen.append(total)

        m1, e1, s1 = _pinned_run(scalar)
        m2, e2, s2 = _pinned_run(batched)
        assert _core_fingerprint(m1) == _core_fingerprint(m2)
        assert e1.steps == e2.steps
        assert s1 == s2

    def test_batch_rejects_empty_count(self):
        def bad(machine, seen):
            yield LoadBatchOp(machine.sbrk(64), 8, 0, 8)

        with pytest.raises(SimulationError):
            _pinned_run(bad)

    def test_max_steps_counts_batch_elements(self):
        machine = Machine(tiny_config(), "mesi")
        engine = Engine(machine)
        engine.max_steps = 5

        def kern():
            yield ComputeBatchOp(1, 100)

        engine.pin(0, kern())
        with pytest.raises(SimulationError):
            engine.run()
        assert engine.steps == 6  # the guard fired on step max_steps + 1

    def test_access_hook_sees_every_element(self):
        machine = Machine(tiny_config(), "mesi")
        engine = Engine(machine)
        seen = []
        engine.access_hook = lambda w, op, atype: seen.append(
            (op.addr, atype)
        )
        base = machine.sbrk(256)

        def kern():
            yield LoadBatchOp(base, 8, 4, 8)

        engine.pin(0, kern())
        engine.run()
        assert seen == [(base + 8 * i, AccessType.LOAD) for i in range(4)]


class TestTryFastAccess:
    def test_none_on_cold_miss_has_no_side_effects(self):
        machine = Machine(tiny_config(), "mesi")
        proto = machine.protocol
        addr = machine.sbrk(64)
        before = (
            proto.stats.total_accesses,
            proto.l1[0].hits,
            proto.l1[0].misses,
            proto.l2[0].hits,
            proto.l2[0].misses,
        )
        assert proto.try_fast_access(0, addr, 8, AccessType.LOAD) is None
        after = (
            proto.stats.total_accesses,
            proto.l1[0].hits,
            proto.l1[0].misses,
            proto.l2[0].hits,
            proto.l2[0].misses,
        )
        assert before == after

    def test_rmw_always_declines(self):
        machine = Machine(tiny_config(), "mesi")
        addr = machine.sbrk(64)
        machine.access(0, addr, 8, AccessType.STORE)  # M in private cache
        assert (
            machine.protocol.try_fast_access(0, addr, 8, AccessType.RMW)
            is None
        )

    def test_private_hit_matches_access_latency_and_counters(self):
        m1 = Machine(tiny_config(), "mesi")
        m2 = Machine(tiny_config(), "mesi")
        a1 = m1.sbrk(64)
        a2 = m2.sbrk(64)
        m1.access(0, a1, 8, AccessType.LOAD)  # warm both
        m2.access(0, a2, 8, AccessType.LOAD)
        fast = m1.protocol.try_fast_access(0, a1, 8, AccessType.LOAD)
        slow = m2.protocol.access(0, a2, 8, AccessType.LOAD)
        assert fast == slow
        assert m1.protocol.l1[0].hits == m2.protocol.l1[0].hits
        assert (
            m1.protocol.stats.total_accesses
            == m2.protocol.stats.total_accesses
        )

    def test_shared_store_declines(self):
        machine = Machine(tiny_config(), "mesi")
        addr = machine.sbrk(64)
        machine.access(0, addr, 8, AccessType.LOAD)
        machine.access(1, addr, 8, AccessType.LOAD)  # now S in both
        block = machine.protocol.private_block(
            machine._core_of[0], addr - addr % machine.config.block_size
        )
        assert block is not None
        assert (
            machine.protocol.try_fast_access(
                machine._core_of[0], addr, 8, AccessType.STORE
            )
            is None
        )
