"""Dynamic WARD checker tests (§3.1 conditions)."""

import pytest

from repro.common.errors import WardViolationError
from repro.common.types import AccessType
from repro.verify.ward_checker import WardChecker

LOAD = AccessType.LOAD
STORE = AccessType.STORE


class TestRawDetection:
    def test_cross_thread_raw_in_region_raises(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        with pytest.raises(WardViolationError):
            c.on_access(1, 8, 8, LOAD)

    def test_same_thread_raw_is_fine(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(0, 8, 8, LOAD)
        assert c.clean

    def test_raw_outside_region_ignored(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 128, 8, STORE)
        c.on_access(1, 128, 8, LOAD)
        assert c.clean

    def test_read_before_any_write_is_fine(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(1, 8, 8, LOAD)
        assert c.clean

    def test_violation_details(self):
        c = WardChecker(raise_on_violation=False)
        c.region_added(0, 64)
        c.on_access(3, 16, 8, STORE)
        c.on_access(5, 16, 8, LOAD)
        assert not c.clean
        v = c.violations[0]
        assert (v.writer, v.reader, v.addr) == (3, 5, 16)


class TestRegionEpochs:
    def test_read_after_region_removed_is_fine(self):
        c = WardChecker()
        r = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.region_removed(r)
        c.on_access(1, 8, 8, LOAD)  # reconciliation made this coherent
        assert c.clean

    def test_new_epoch_forgets_old_writers(self):
        c = WardChecker()
        r1 = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.region_removed(r1)
        c.region_added(0, 64)  # new region, same addresses
        c.on_access(1, 8, 8, LOAD)
        assert c.clean


class TestWawAccounting:
    def test_cross_thread_waw_counted_not_flagged(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(1, 8, 8, STORE)
        assert c.waw_events == 1
        assert c.clean

    def test_same_thread_rewrites_not_counted(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(0, 8, 8, STORE)
        assert c.waw_events == 0

    def test_checked_accesses_counted(self):
        c = WardChecker()
        c.on_access(0, 8, 8, LOAD)
        c.on_access(0, 8, 8, STORE)
        assert c.checked_accesses == 2


class TestLiveTableIntegration:
    def test_shares_protocol_region_table(self):
        from repro.sim.machine import Machine
        from tests.conftest import tiny_config

        m = Machine(tiny_config(), "warden")
        checker = WardChecker(region_table=m.protocol.region_table)
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        checker.on_access(0, a, 8, STORE)
        with pytest.raises(WardViolationError):
            checker.on_access(1, a, 8, LOAD)
        m.remove_ward_region(0, region)
        checker.on_access(1, a, 8, LOAD)  # region gone: fine
