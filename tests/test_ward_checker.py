"""Dynamic WARD checker tests (§3.1 conditions)."""

import pytest

from repro.common.errors import WardViolationError
from repro.common.types import AccessType
from repro.verify.ward_checker import WardChecker

LOAD = AccessType.LOAD
STORE = AccessType.STORE


class TestRawDetection:
    def test_cross_thread_raw_in_region_raises(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        with pytest.raises(WardViolationError):
            c.on_access(1, 8, 8, LOAD)

    def test_same_thread_raw_is_fine(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(0, 8, 8, LOAD)
        assert c.clean

    def test_raw_outside_region_ignored(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 128, 8, STORE)
        c.on_access(1, 128, 8, LOAD)
        assert c.clean

    def test_read_before_any_write_is_fine(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(1, 8, 8, LOAD)
        assert c.clean

    def test_violation_details(self):
        c = WardChecker(raise_on_violation=False)
        region = c.region_added(0, 64)
        c.on_access(3, 16, 8, STORE)
        c.on_access(5, 16, 8, LOAD)
        assert not c.clean
        v = c.violations[0]
        assert (v.writer, v.reader, v.addr) == (3, 5, 16)
        assert v.writer_regions == (region.region_id,)
        assert v.reader_regions == (region.region_id,)
        assert v.shared_regions == (region.region_id,)

    def test_recording_mode_accumulates_structured_records(self):
        c = WardChecker(raise_on_violation=False)
        outer = c.region_added(0, 128)
        inner = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)   # covered by outer + inner
        c.on_access(1, 8, 8, LOAD)
        c.region_removed(inner)
        c.on_access(2, 8, 8, LOAD)    # outer epoch still pairs the write
        assert [v.reader for v in c.violations] == [1, 2]
        first, second = c.violations
        assert set(first.shared_regions) == {
            outer.region_id, inner.region_id,
        }
        assert second.shared_regions == (outer.region_id,)
        assert first.to_dict()["shared_regions"] == sorted(
            first.shared_regions
        )

    def test_raise_path_carries_the_structured_record(self):
        c = WardChecker()
        region = c.region_added(0, 64)
        c.on_access(3, 16, 8, STORE)
        with pytest.raises(WardViolationError) as info:
            c.on_access(5, 16, 8, LOAD)
        exc = info.value
        assert (exc.addr, exc.writer, exc.reader) == (16, 3, 5)
        assert exc.violation is not None
        assert exc.violation.shared_regions == (region.region_id,)
        assert f"region id {region.region_id}" in str(exc)
        # raising mode still records the violation before raising
        assert c.violations == [exc.violation]


class TestRegionEpochs:
    def test_read_after_region_removed_is_fine(self):
        c = WardChecker()
        r = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.region_removed(r)
        c.on_access(1, 8, 8, LOAD)  # reconciliation made this coherent
        assert c.clean

    def test_new_epoch_forgets_old_writers(self):
        c = WardChecker()
        r1 = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.region_removed(r1)
        c.region_added(0, 64)  # new region, same addresses
        c.on_access(1, 8, 8, LOAD)
        assert c.clean


class TestNestedAndOverlappingRegions:
    def test_nested_region_raw_detected_via_outer_epoch(self):
        # The write happens under BOTH the outer and the inner region.
        # Removing the inner one does not end the outer epoch, so a
        # cross-thread read is still a violation.
        c = WardChecker()
        c.region_added(0, 128)
        inner = c.region_added(32, 64)
        c.on_access(0, 40, 8, STORE)
        c.region_removed(inner)
        with pytest.raises(WardViolationError):
            c.on_access(1, 40, 8, LOAD)

    def test_epoch_ends_when_every_covering_region_is_removed(self):
        c = WardChecker()
        a = c.region_added(0, 64)
        b = c.region_added(32, 96)
        c.on_access(0, 40, 8, STORE)  # covered by both a and b
        c.region_removed(a)
        c.region_removed(b)
        c.on_access(1, 40, 8, LOAD)  # both epochs closed: reconciled
        assert c.clean

    def test_write_predating_a_region_does_not_pair_with_it(self):
        c = WardChecker()
        a = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.region_removed(a)
        c.region_added(0, 64)  # new epoch began AFTER the write
        c.on_access(1, 8, 8, LOAD)
        assert c.clean

    def test_cross_thread_waw_counted_across_surviving_overlap(self):
        c = WardChecker()
        a = c.region_added(0, 64)
        c.region_added(32, 96)
        c.on_access(0, 40, 8, STORE)
        c.region_removed(a)
        c.on_access(1, 40, 8, STORE)  # still inside b's epoch
        assert c.waw_events == 1 and c.clean

    def test_raw_on_partially_overlapped_address_outside_overlap(self):
        # addr 8 is only in region a; removing a ends its epoch even
        # though b (which never covered addr 8) is still active.
        c = WardChecker()
        a = c.region_added(0, 32)
        c.region_added(64, 128)
        c.on_access(0, 8, 8, STORE)
        c.region_removed(a)
        c.on_access(1, 8, 8, LOAD)
        assert c.clean


class TestWardEndInFlight:
    def test_region_removed_purges_its_write_log(self):
        c = WardChecker()
        r = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(0, 16, 8, STORE)
        c.region_removed(r)
        assert c._writers == {}  # hygiene: the epoch's log is dropped

    def test_purge_keeps_entries_alive_under_other_regions(self):
        c = WardChecker()
        a = c.region_added(0, 64)
        c.region_added(32, 96)
        c.on_access(0, 40, 8, STORE)  # recorded under {a, b}
        c.region_removed(a)
        # still live for b's epoch: the violation must still fire
        with pytest.raises(WardViolationError):
            c.on_access(1, 40, 8, LOAD)

    def test_interleaved_epoch_boundary_accesses(self):
        # Accesses "in flight" around ward_end: writes land before the
        # removal, reads land right after — the reconciled values are
        # coherent, so no violation may fire.
        c = WardChecker(raise_on_violation=False)
        r = c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(1, 16, 8, STORE)
        c.region_removed(r)
        c.on_access(1, 8, 8, LOAD)
        c.on_access(0, 16, 8, LOAD)
        assert c.clean and c.checked_accesses == 4


class TestWawAccounting:
    def test_cross_thread_waw_counted_not_flagged(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(1, 8, 8, STORE)
        assert c.waw_events == 1
        assert c.clean

    def test_same_thread_rewrites_not_counted(self):
        c = WardChecker()
        c.region_added(0, 64)
        c.on_access(0, 8, 8, STORE)
        c.on_access(0, 8, 8, STORE)
        assert c.waw_events == 0

    def test_checked_accesses_counted(self):
        c = WardChecker()
        c.on_access(0, 8, 8, LOAD)
        c.on_access(0, 8, 8, STORE)
        assert c.checked_accesses == 2


class TestLiveTableIntegration:
    def test_shares_protocol_region_table(self):
        from repro.sim.machine import Machine
        from tests.conftest import tiny_config

        m = Machine(tiny_config(), "warden")
        checker = WardChecker(region_table=m.protocol.region_table)
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        checker.on_access(0, a, 8, STORE)
        with pytest.raises(WardViolationError):
            checker.on_access(1, a, 8, LOAD)
        m.remove_ward_region(0, region)
        checker.on_access(1, a, 8, LOAD)  # region gone: fine
