"""Area model tests against the paper's §6.1 claims."""

from repro.common.config import dual_socket
from repro.energy.cacti import region_cam_area_overhead, sectoring_area_overhead


def test_sectoring_overhead_matches_paper():
    # paper: byte sectoring on 64-byte blocks adds 7.9% cache area
    assert abs(sectoring_area_overhead(64) - 0.079) < 0.005


def test_sectoring_scales_with_block_size():
    assert sectoring_area_overhead(128) > sectoring_area_overhead(64) * 0.9


def test_region_cam_under_paper_bound():
    # paper: 1024 simultaneous regions cost < 0.05% additional area
    assert region_cam_area_overhead(dual_socket(), 1024) < 0.0005


def test_region_cam_scales_with_entries():
    cfg = dual_socket()
    assert region_cam_area_overhead(cfg, 2048) == (
        2 * region_cam_area_overhead(cfg, 1024)
    )
