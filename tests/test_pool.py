"""Parallel run matrix + persistent disk cache tests.

The contract under test: a parallel sweep (``jobs > 1``) and every cache
path (in-process, on-disk) must be *bit-identical* to a fresh serial
simulation — same ``RunStats.to_dict()``, same result payloads.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis import pool as pool_mod
from repro.analysis.pool import (
    DiskCache,
    RunTask,
    code_fingerprint,
    config_fingerprint,
    run_matrix,
    task_fingerprint,
)
from repro.analysis.run import (
    clear_cache,
    run_benchmark,
    run_pairs,
    set_disk_cache,
)
from tests.conftest import tiny_config


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_cache()
    previous = set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(previous)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprints:
    def test_config_fingerprint_covers_every_field(self):
        a = tiny_config()
        # Same name, different tuning: must NOT alias (the old in-process
        # cache keyed on config.name + a few fields and conflated these).
        b = dataclasses.replace(
            a, l1=dataclasses.replace(a.l1, latency=a.l1.latency + 1)
        )
        assert a.name == b.name
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_config_fingerprint_deterministic(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(
            tiny_config()
        )

    def test_task_fingerprint_varies_with_coordinates(self):
        base = RunTask(benchmark="fib", protocol="mesi", config=tiny_config())
        keys = {
            task_fingerprint(base),
            task_fingerprint(dataclasses.replace(base, benchmark="primes")),
            task_fingerprint(dataclasses.replace(base, protocol="warden")),
            task_fingerprint(dataclasses.replace(base, size="small")),
            task_fingerprint(dataclasses.replace(base, seed=7)),
        }
        assert len(keys) == 5

    def test_task_fingerprint_varies_with_code(self):
        task = RunTask(benchmark="fib", protocol="mesi", config=tiny_config())
        assert task_fingerprint(task, code="aaa") != task_fingerprint(
            task, code="bbb"
        )

    def test_code_fingerprint_is_cached_and_resettable(self):
        first = code_fingerprint()
        assert code_fingerprint() == first
        pool_mod._reset_code_fingerprint()
        assert code_fingerprint() == first  # same sources -> same hash


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------


class TestParallelEquivalence:
    #: three benchmarks x both protocols (run_pairs always runs both)
    NAMES = ("fib", "primes", "tokens")

    def test_run_pairs_jobs4_bit_identical_to_serial(self):
        config = tiny_config()
        serial = {}
        for name in self.NAMES:
            serial[name] = run_pairs(name, config, size="test", jobs=1)
        clear_cache()
        for name in self.NAMES:
            parallel = run_pairs(name, config, size="test", jobs=4)
            for (s_mesi, s_ward), (p_mesi, p_ward) in zip(
                serial[name], parallel
            ):
                assert p_mesi.stats.to_dict() == s_mesi.stats.to_dict()
                assert p_ward.stats.to_dict() == s_ward.stats.to_dict()
                assert p_mesi.result == s_mesi.result
                assert p_ward.result == s_ward.result
                assert (p_mesi.protocol, p_ward.protocol) == ("MESI", "WARDen")

    def test_parallel_results_populate_in_process_cache(self):
        config = tiny_config()
        first = run_pairs("fib", config, size="test", jobs=4)
        again = run_pairs("fib", config, size="test", jobs=4)
        for (a_mesi, a_ward), (b_mesi, b_ward) in zip(first, again):
            assert b_mesi is a_mesi and b_ward is a_ward

    def test_run_matrix_preserves_task_order(self):
        config = tiny_config()
        tasks = [
            RunTask(benchmark=name, protocol=proto, config=config, size="test")
            for name in ("fib", "primes")
            for proto in ("mesi", "warden")
        ]
        results = run_matrix(tasks, jobs=4)
        assert [(r.benchmark, r.protocol) for r in results] == [
            ("fib", "MESI"),
            ("fib", "WARDen"),
            ("primes", "MESI"),
            ("primes", "WARDen"),
        ]


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------


class TestDiskCache:
    def _run_fib(self, **kwargs):
        return run_benchmark("fib", "mesi", tiny_config(), size="test", **kwargs)

    def test_round_trip_hit(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        fresh = self._run_fib()
        assert cache.stores == 1 and len(cache) == 1

        clear_cache()  # drop the in-process cache: force the disk path
        hit = self._run_fib()
        assert cache.hits == 1
        assert hit is not fresh
        assert hit.stats.to_dict() == fresh.stats.to_dict()
        assert hit.result == fresh.result
        assert (hit.benchmark, hit.protocol, hit.machine, hit.size) == (
            fresh.benchmark,
            fresh.protocol,
            fresh.machine,
            fresh.size,
        )

    def test_config_change_invalidates(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        clear_cache()
        # same config *name*, different tuning: must miss, not alias
        tweaked = dataclasses.replace(tiny_config(), dram_latency=999)
        assert tweaked.name == tiny_config().name
        run_benchmark("fib", "mesi", tweaked, size="test")
        assert cache.hits == 0 and cache.stores == 2

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        clear_cache()
        # simulate an edit to the simulator source
        monkeypatch.setattr(pool_mod, "_code_fingerprint", "deadbeef" * 8)
        run_benchmark("fib", "mesi", tiny_config(), size="test")
        assert cache.hits == 0 and cache.stores == 2 and len(cache) == 2

    def test_corrupted_entry_falls_back_to_rerun(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        fresh = self._run_fib()
        entry = next((tmp_path / "cache").glob("*.json"))
        entry.write_text("{ not json", encoding="utf-8")

        clear_cache()
        rerun = self._run_fib()
        assert cache.hits == 0  # the corrupt entry never served a result
        assert rerun.stats.to_dict() == fresh.stats.to_dict()
        # the corrupt entry was evicted and replaced by the re-run
        assert len(cache) == 1
        assert json.loads(entry.read_text(encoding="utf-8"))["benchmark"] == "fib"

    def test_schema_mismatch_falls_back_to_rerun(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        entry = next((tmp_path / "cache").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["schema"] = -1
        entry.write_text(json.dumps(payload), encoding="utf-8")

        clear_cache()
        self._run_fib()
        assert cache.hits == 0 and cache.stores == 2

    def test_use_disk_cache_false_bypasses(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib(use_disk_cache=False)
        assert cache.stores == 0 and len(cache) == 0

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_parallel_sweep_populates_disk_cache(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        run_pairs("fib", tiny_config(), size="test", jobs=4)
        assert len(cache) == 6  # 3 seeds x 2 protocols

        clear_cache()
        cache.hits = cache.misses = 0
        run_pairs("fib", tiny_config(), size="test", jobs=1)
        assert cache.hits == 6  # serial path reads what the pool wrote
