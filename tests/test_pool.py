"""Parallel run matrix + persistent disk cache tests.

The contract under test: a parallel sweep (``jobs > 1``) and every cache
path (in-process, on-disk) must be *bit-identical* to a fresh serial
simulation — same ``RunStats.to_dict()``, same result payloads.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.analysis import pool as pool_mod
from repro.analysis.pool import (
    DiskCache,
    MatrixReport,
    RunTask,
    code_fingerprint,
    config_fingerprint,
    decode_result,
    encode_result,
    matrix_fingerprint,
    run_matrix,
    task_fingerprint,
)
from repro.analysis.run import (
    clear_cache,
    run_benchmark,
    run_pairs,
    set_disk_cache,
)
from tests.conftest import tiny_config


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_cache()
    previous = set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(previous)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprints:
    def test_config_fingerprint_covers_every_field(self):
        a = tiny_config()
        # Same name, different tuning: must NOT alias (the old in-process
        # cache keyed on config.name + a few fields and conflated these).
        b = dataclasses.replace(
            a, l1=dataclasses.replace(a.l1, latency=a.l1.latency + 1)
        )
        assert a.name == b.name
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_config_fingerprint_deterministic(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(
            tiny_config()
        )

    def test_task_fingerprint_varies_with_coordinates(self):
        base = RunTask(benchmark="fib", protocol="mesi", config=tiny_config())
        keys = {
            task_fingerprint(base),
            task_fingerprint(dataclasses.replace(base, benchmark="primes")),
            task_fingerprint(dataclasses.replace(base, protocol="warden")),
            task_fingerprint(dataclasses.replace(base, size="small")),
            task_fingerprint(dataclasses.replace(base, seed=7)),
        }
        assert len(keys) == 5

    def test_task_fingerprint_varies_with_code(self):
        task = RunTask(benchmark="fib", protocol="mesi", config=tiny_config())
        assert task_fingerprint(task, code="aaa") != task_fingerprint(
            task, code="bbb"
        )

    def test_code_fingerprint_is_cached_and_resettable(self):
        first = code_fingerprint()
        assert code_fingerprint() == first
        pool_mod._reset_code_fingerprint()
        assert code_fingerprint() == first  # same sources -> same hash


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------


class TestParallelEquivalence:
    #: three benchmarks x both protocols (run_pairs always runs both)
    NAMES = ("fib", "primes", "tokens")

    def test_run_pairs_jobs4_bit_identical_to_serial(self):
        config = tiny_config()
        serial = {}
        for name in self.NAMES:
            serial[name] = run_pairs(name, config, size="test", jobs=1)
        clear_cache()
        for name in self.NAMES:
            parallel = run_pairs(name, config, size="test", jobs=4)
            for (s_mesi, s_ward), (p_mesi, p_ward) in zip(
                serial[name], parallel
            ):
                assert p_mesi.stats.to_dict() == s_mesi.stats.to_dict()
                assert p_ward.stats.to_dict() == s_ward.stats.to_dict()
                assert p_mesi.result == s_mesi.result
                assert p_ward.result == s_ward.result
                assert (p_mesi.protocol, p_ward.protocol) == ("MESI", "WARDen")

    def test_parallel_results_populate_in_process_cache(self):
        config = tiny_config()
        first = run_pairs("fib", config, size="test", jobs=4)
        again = run_pairs("fib", config, size="test", jobs=4)
        for (a_mesi, a_ward), (b_mesi, b_ward) in zip(first, again):
            assert b_mesi is a_mesi and b_ward is a_ward

    def test_run_matrix_preserves_task_order(self):
        config = tiny_config()
        tasks = [
            RunTask(benchmark=name, protocol=proto, config=config, size="test")
            for name in ("fib", "primes")
            for proto in ("mesi", "warden")
        ]
        results = run_matrix(tasks, jobs=4)
        assert [(r.benchmark, r.protocol) for r in results] == [
            ("fib", "MESI"),
            ("fib", "WARDen"),
            ("primes", "MESI"),
            ("primes", "WARDen"),
        ]


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------


class TestDiskCache:
    def _run_fib(self, **kwargs):
        return run_benchmark("fib", "mesi", tiny_config(), size="test", **kwargs)

    def test_round_trip_hit(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        fresh = self._run_fib()
        assert cache.stores == 1 and len(cache) == 1

        clear_cache()  # drop the in-process cache: force the disk path
        hit = self._run_fib()
        assert cache.hits == 1
        assert hit is not fresh
        assert hit.stats.to_dict() == fresh.stats.to_dict()
        assert hit.result == fresh.result
        assert (hit.benchmark, hit.protocol, hit.machine, hit.size) == (
            fresh.benchmark,
            fresh.protocol,
            fresh.machine,
            fresh.size,
        )

    def test_config_change_invalidates(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        clear_cache()
        # same config *name*, different tuning: must miss, not alias
        tweaked = dataclasses.replace(tiny_config(), dram_latency=999)
        assert tweaked.name == tiny_config().name
        run_benchmark("fib", "mesi", tweaked, size="test")
        assert cache.hits == 0 and cache.stores == 2

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        clear_cache()
        # simulate an edit to the simulator source
        monkeypatch.setattr(pool_mod, "_code_fingerprint", "deadbeef" * 8)
        run_benchmark("fib", "mesi", tiny_config(), size="test")
        assert cache.hits == 0 and cache.stores == 2 and len(cache) == 2

    def test_corrupted_entry_falls_back_to_rerun(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        fresh = self._run_fib()
        entry = next((tmp_path / "cache").glob("*.json"))
        entry.write_text("{ not json", encoding="utf-8")

        clear_cache()
        rerun = self._run_fib()
        assert cache.hits == 0  # the corrupt entry never served a result
        assert rerun.stats.to_dict() == fresh.stats.to_dict()
        # the corrupt entry was evicted and replaced by the re-run
        assert len(cache) == 1
        assert json.loads(entry.read_text(encoding="utf-8"))["benchmark"] == "fib"

    def test_schema_mismatch_falls_back_to_rerun(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        entry = next((tmp_path / "cache").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["schema"] = -1
        entry.write_text(json.dumps(payload), encoding="utf-8")

        clear_cache()
        self._run_fib()
        assert cache.hits == 0 and cache.stores == 2

    def test_use_disk_cache_false_bypasses(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib(use_disk_cache=False)
        assert cache.stores == 0 and len(cache) == 0

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        self._run_fib()
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_store_reraises_keyboard_interrupt_after_cleanup(
        self, tmp_path, monkeypatch
    ):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        result = self._run_fib(use_disk_cache=False)

        def interrupted(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.store("f" * 64, result)
        # the temp file was cleaned up and nothing was committed
        assert list((tmp_path / "cache").glob("*.tmp")) == []
        assert len(cache) == 0 and cache.stores == 0

    def test_store_reraises_system_exit_after_cleanup(
        self, tmp_path, monkeypatch
    ):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        result = self._run_fib(use_disk_cache=False)
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(SystemExit(1))
        )
        with pytest.raises(SystemExit):
            cache.store("f" * 64, result)
        assert list((tmp_path / "cache").glob("*.tmp")) == []

    def test_store_absorbs_transient_oserror(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        result = self._run_fib(use_disk_cache=False)

        def enospc(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", enospc)
        assert cache.store("f" * 64, result) is False
        assert cache.store_errors == 1 and cache.stores == 0
        assert list((tmp_path / "cache").glob("*.tmp")) == []
        # the cache is best-effort: the run itself keeps going
        monkeypatch.undo()
        assert cache.store("f" * 64, result) is True

    def test_parallel_sweep_populates_disk_cache(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        set_disk_cache(cache)
        run_pairs("fib", tiny_config(), size="test", jobs=4)
        assert len(cache) == 6  # 3 seeds x 2 protocols

        clear_cache()
        cache.hits = cache.misses = 0
        run_pairs("fib", tiny_config(), size="test", jobs=1)
        assert cache.hits == 6  # serial path reads what the pool wrote


# ----------------------------------------------------------------------
# Result payload round-trips and matrix identity
# ----------------------------------------------------------------------


class TestResultSerialization:
    def test_encode_decode_round_trip_is_bit_identical(self):
        original = run_benchmark("fib", "mesi", tiny_config(), size="test")
        payload = json.loads(
            json.dumps(encode_result("k" * 64, original), sort_keys=True)
        )
        restored = decode_result(payload)
        assert restored.stats.to_dict() == original.stats.to_dict()
        assert restored.result == original.result
        assert (restored.benchmark, restored.protocol, restored.size) == (
            original.benchmark, original.protocol, original.size
        )

    def test_decode_rejects_schema_mismatch(self):
        original = run_benchmark("fib", "mesi", tiny_config(), size="test")
        payload = encode_result("k" * 64, original)
        payload["schema"] = -1
        with pytest.raises(ValueError):
            decode_result(payload)

    def test_matrix_fingerprint_depends_on_task_order_and_content(self):
        a = matrix_fingerprint(["k1", "k2"])
        assert a == matrix_fingerprint(["k1", "k2"])
        assert a != matrix_fingerprint(["k2", "k1"])
        assert a != matrix_fingerprint(["k1", "k3"])


class TestMatrixReport:
    def test_counters_track_actions(self):
        report = MatrixReport()
        report.record("retry", 1, 1)
        report.record("timeout", 2, 0)
        report.record("respawn", -1, 0)
        report.record("fallback", -1, 0)
        assert (
            report.retries, report.timeouts, report.respawns, report.fallbacks
        ) == (1, 1, 1, 1)
        assert not report.clean
        payload = report.to_dict()
        assert payload["retries"] == 1
        assert [e["action"] for e in payload["events"]] == [
            "retry", "timeout", "respawn", "fallback",
        ]

    def test_clean_report(self):
        report = MatrixReport()
        assert report.clean and report.to_dict()["events"] == []

    def test_robust_matrix_with_no_faults_matches_plain_run(self):
        config = tiny_config()
        tasks = [
            RunTask(benchmark="fib", protocol=proto, config=config, size="test")
            for proto in ("mesi", "warden")
        ]
        plain = run_matrix(tasks, jobs=2)
        clear_cache()
        report = MatrixReport()
        robust = run_matrix(
            tasks, jobs=2, timeout=60.0, retries=2, report=report
        )
        assert [r.stats.to_dict() for r in robust] == [
            r.stats.to_dict() for r in plain
        ]
        assert report.clean
