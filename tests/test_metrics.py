"""Metric derivation tests (Figs. 7-12 math)."""

import pytest

from repro.analysis.metrics import (
    compare,
    compare_multi,
    geomean,
    mean,
    summarize,
)
from repro.analysis.run import BenchResult
from repro.common.stats import RunStats


def result(benchmark="x", cycles=1000, inv=0, dg=0, instrs=1000, net=100.0,
           proc=1000.0, ward=0, total=1, threads=24):
    s = RunStats(benchmark=benchmark, num_threads=threads)
    s.cycles = cycles
    s.coherence.invalidations = inv
    s.coherence.downgrades = dg
    s.coherence.ward_accesses = ward
    s.coherence.total_accesses = total
    s.cores.compute_instrs = instrs
    s.energy.network_nj = net
    s.energy.core_dynamic_nj = proc - net
    return BenchResult(benchmark, "p", "m", "test", s, None)


class TestCompare:
    def test_speedup(self):
        m = compare(result(cycles=1500), result(cycles=1000))
        assert m.speedup == pytest.approx(1.5)

    def test_energy_savings(self):
        m = compare(result(net=200.0, proc=2000.0), result(net=100.0, proc=1500.0))
        assert m.interconnect_savings == pytest.approx(50.0)
        assert m.processor_savings == pytest.approx(25.0)

    def test_inv_dg_per_kilo_instr(self):
        m = compare(
            result(inv=30, dg=20, instrs=2000), result(inv=10, dg=0, instrs=2000)
        )
        assert m.inv_dg_reduced_per_kilo == pytest.approx(20.0)

    def test_reduction_breakdown(self):
        m = compare(result(inv=30, dg=30), result(inv=20, dg=0))
        assert m.downgrade_reduction_pct == pytest.approx(75.0)
        assert m.invalidation_reduction_pct == pytest.approx(25.0)

    def test_no_reduction_gives_zero_breakdown(self):
        m = compare(result(), result())
        assert m.downgrade_reduction_pct == 0.0

    def test_ipc_improvement(self):
        m = compare(
            result(cycles=2000, instrs=1000), result(cycles=1000, instrs=1000)
        )
        assert m.ipc_improvement_pct == pytest.approx(100.0)

    def test_mismatched_benchmarks_rejected(self):
        with pytest.raises(ValueError):
            compare(result(benchmark="a"), result(benchmark="b"))

    def test_ward_coverage_taken_from_warden_run(self):
        m = compare(result(), result(ward=30, total=100))
        assert m.ward_coverage == pytest.approx(0.3)


class TestCompareMulti:
    def test_sums_before_ratio(self):
        pairs = [
            (result(cycles=100), result(cycles=100)),
            (result(cycles=300), result(cycles=100)),
        ]
        m = compare_multi(pairs)
        assert m.speedup == pytest.approx(400 / 200)

    def test_single_pair_matches_compare(self):
        pair = (result(cycles=1700, inv=5), result(cycles=1000, inv=1))
        assert compare_multi([pair]).speedup == compare(*pair).speedup

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_multi([])


class TestAggregates:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([2.0, 0.0]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_summarize_keys(self):
        m = compare(result(cycles=1200), result(cycles=1000))
        agg = summarize([m])
        assert set(agg) == {
            "speedup",
            "interconnect_savings",
            "processor_savings",
            "ipc_improvement_pct",
        }
        assert agg["speedup"] == pytest.approx(1.2)
