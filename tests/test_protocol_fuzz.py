"""Seeded protocol fuzzing: random access patterns + invariant checking.

Three layers of randomized stress, each replayable from its seed:

1. **Machine-level fuzz** — a seeded generator mixes private, shared, and
   ping-pong access patterns with region add/remove interleavings, drives
   them through every registered protocol (MESI, MOESI, SI/SD, WARDen),
   and calls ``protocol.check_invariants()`` after every directory
   transaction.  The tiny test machine's caches force evictions, so
   WARDen regions are routinely reconciled while partially evicted — and
   MOESI's O state / SI/SD's empty-directory invariants are exercised
   under the same chaos.
2. **Value-oracle fuzz** — random WARD-compliant programs through
   :class:`WardMemoryModel` (per-thread incoherent views, arbitrary merge
   order) must match a sequential-memory oracle at every load and in the
   final image, for *any* reconciliation order.
3. **Runtime end-to-end fuzz** — random tabulate/reduce programs through
   the full stack under both protocols must compute the Python reference
   result with a clean :class:`WardChecker`.

Seeds come from ``REPRO_FUZZ_SEEDS`` (comma-separated; default ``1,2,3``).
A failing test names the seed and prints the exact command to replay it.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.coherence.registry import available_protocols
from repro.common.types import AccessType
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from repro.verify.coherence_checker import ReconciliationModel, WardMemoryModel
from repro.verify.ward_checker import WardChecker
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW


def fuzz_seeds():
    text = os.environ.get("REPRO_FUZZ_SEEDS", "1,2,3")
    return tuple(int(s) for s in text.replace(" ", "").split(",") if s)


SEEDS = fuzz_seeds()


def replay_hint(test_id: str, seed: int) -> str:
    return (
        f"fuzz failure (seed {seed}); replay with:\n"
        f"  REPRO_FUZZ_SEEDS={seed} PYTHONPATH=src python -m pytest "
        f"'tests/test_protocol_fuzz.py::{test_id}' -q"
    )


def run_replayable(test_id: str, seed: int, body) -> None:
    """Run ``body()``; on any failure, prepend the replay command."""
    try:
        body()
    except Exception as exc:  # noqa: BLE001 - reframe every fuzz failure
        raise AssertionError(f"{replay_hint(test_id, seed)}\n{exc!r}") from exc


# ----------------------------------------------------------------------
# 1. Machine-level fuzz: invariants hold under chaos
# ----------------------------------------------------------------------

#: accesses + region ops per seed per protocol
FUZZ_STEPS = 250


def _fuzz_machine(protocol: str, seed: int) -> None:
    config = tiny_config()
    m = Machine(config, protocol)
    rng = random.Random(seed)
    threads = config.num_threads
    #: four 256-byte arenas; regions and accesses land inside them
    arenas = [m.sbrk(256, 64) for _ in range(4)]
    active = []

    def random_addr() -> int:
        mode = rng.random()
        if mode < 0.4:
            # private: each thread owns one 64-byte stripe of one arena
            t = rng.randrange(threads)
            return arenas[t % len(arenas)] + (t % 4) * 64 + rng.randrange(8) * 8
        if mode < 0.8:
            # shared: anywhere in any arena
            return rng.choice(arenas) + rng.randrange(32) * 8
        # ping-pong: everyone hammers the same word
        return arenas[0] + 8

    for step in range(FUZZ_STEPS):
        roll = rng.random()
        if roll < 0.08 and len(active) < 8:
            # add a region over a random arena span (overlaps allowed)
            arena = rng.choice(arenas)
            start = arena + rng.randrange(4) * 64
            end = min(arena + 256, start + rng.choice((64, 128, 192)))
            region = m.add_ward_region(rng.randrange(threads), start, end)
            if region is not None:
                active.append(region)
        elif roll < 0.16 and active:
            # remove a random region (possibly mid-sharing, possibly after
            # some of its blocks were evicted by the tiny caches)
            region = active.pop(rng.randrange(len(active)))
            m.remove_ward_region(rng.randrange(threads), region)
        else:
            atype = rng.choices((LOAD, STORE, RMW), weights=(5, 4, 1))[0]
            m.access(
                rng.randrange(threads), random_addr(),
                rng.choice((1, 4, 8)), atype,
            )
        m.protocol.check_invariants()

    for region in active:
        m.remove_ward_region(0, region)
        m.protocol.check_invariants()
    if m.supports_ward:
        assert len(m.protocol.region_table) == 0


class TestMachineFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_invariants_under_random_traffic(self, protocol, seed):
        run_replayable(
            f"TestMachineFuzz::test_invariants_under_random_traffic"
            f"[{protocol}-{seed}]",
            seed,
            lambda: _fuzz_machine(protocol, seed),
        )


# ----------------------------------------------------------------------
# 2. Value-oracle fuzz: WARD-compliant programs can't see the incoherence
# ----------------------------------------------------------------------


def _fuzz_ward_values(seed: int) -> None:
    rng = random.Random(seed)
    threads = 4
    region = (0, 256)
    addrs = list(range(region[0], region[1], 8))
    rng.shuffle(addrs)
    # WARD-compliant write plan: disjoint per-thread address sets, plus a
    # few "apathetic WAW" addresses every thread writes with the SAME value
    # (condition 2: order must not matter).
    waw_addrs = addrs[: rng.randrange(0, 4)]
    private = addrs[len(waw_addrs):]
    owned = {t: private[t::threads] for t in range(threads)}

    # seed some pre-region memory so first-touch reads are non-trivial
    oracle = {}
    model = WardMemoryModel()
    for addr in addrs[::3]:
        value = rng.randrange(1000)
        model.store(0, addr, value)
        oracle[addr] = value

    model.begin_region(*region)
    writes = {t: {} for t in range(threads)}
    program = []
    for t in range(threads):
        for addr in owned[t]:
            if rng.random() < 0.7:
                program.append(("store", t, addr, rng.randrange(1000)))
        for addr in waw_addrs:
            program.append(("store", t, addr, 7_777 + addr))
        program.append(("load-own", t))
    rng.shuffle(program)

    for op in program:
        if op[0] == "store":
            _, t, addr, value = op
            model.store(t, addr, value)
            writes[t][addr] = value
        else:
            t = op[1]
            # reading ONLY what this thread wrote (or untouched words) is
            # WARD-compliant; the view must match the sequential story
            for addr, value in writes[t].items():
                assert model.load(t, addr) == value
            for addr in owned[t]:
                if addr not in writes[t]:
                    assert model.load(t, addr) == oracle.get(addr, 0)

    merge_order = list(writes)
    rng.shuffle(merge_order)
    model.end_region(merge_order=[t for t in merge_order if writes[t]])

    for t in range(threads):
        oracle.update(writes[t])
    for addr in addrs:
        assert model.load(0, addr) == oracle.get(addr, 0), hex(addr)


def _fuzz_reconciliation(seed: int) -> None:
    rng = random.Random(seed)
    sectors = 16
    initial = [rng.randrange(100) for _ in range(sectors)]
    # disjoint written masks (false sharing): merge order must not matter
    order = list(range(sectors))
    rng.shuffle(order)
    copies = []
    cursor = 0
    for _ in range(4):
        take = rng.randrange(0, sectors - cursor + 1)
        mask = 0
        values = [0] * sectors
        for s in order[cursor:cursor + take]:
            mask |= 1 << s
            values[s] = rng.randrange(1000, 2000)
        copies.append((values, mask))
        cursor += take
    reference = ReconciliationModel(sectors, initial).merge(copies)
    for _ in range(4):
        shuffled = copies[:]
        rng.shuffle(shuffled)
        merged = ReconciliationModel(sectors, initial).merge(shuffled)
        assert merged == reference
    if sum(1 for _, m in copies if m) > 1:
        assert ReconciliationModel.is_false_sharing(
            [c for c in copies if c[1]]
        )


class TestValueOracleFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ward_compliant_programs_match_sequential_oracle(self, seed):
        run_replayable(
            f"TestValueOracleFuzz::"
            f"test_ward_compliant_programs_match_sequential_oracle[{seed}]",
            seed,
            lambda: _fuzz_ward_values(seed),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_false_sharing_reconciliation_is_order_invariant(self, seed):
        run_replayable(
            f"TestValueOracleFuzz::"
            f"test_false_sharing_reconciliation_is_order_invariant[{seed}]",
            seed,
            lambda: _fuzz_reconciliation(seed),
        )


# ----------------------------------------------------------------------
# 3. Runtime end-to-end fuzz: random programs, full stack, Python oracle
# ----------------------------------------------------------------------


def _fuzz_runtime(protocol: str, seed: int) -> None:
    rng = random.Random(seed)
    n = rng.choice((48, 64, 96))
    grain = rng.choice((4, 8, 16))
    scale = rng.randrange(1, 7)
    offset = rng.randrange(0, 100)

    def root(ctx, count):
        arr = yield from ctx.tabulate(
            count, lambda c, i: c.value(i * scale + offset), grain=grain
        )
        total = yield from ctx.reduce(
            0, count, lambda c, i: arr.get(i), lambda a, b: a + b, grain=grain
        )
        return total

    machine = Machine(tiny_config(), protocol)
    checker = None
    if machine.supports_ward:
        checker = WardChecker(region_table=machine.protocol.region_table)
    rt = Runtime(machine, access_monitor=checker, seed=seed)
    result, stats = rt.run(root, n)
    assert result == sum(i * scale + offset for i in range(n))
    machine.protocol.check_invariants()
    if checker is not None:
        assert checker.clean
        assert checker.checked_accesses > 0


class TestRuntimeFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_random_tabulate_reduce_matches_reference(self, protocol, seed):
        run_replayable(
            f"TestRuntimeFuzz::test_random_tabulate_reduce_matches_reference"
            f"[{protocol}-{seed}]",
            seed,
            lambda: _fuzz_runtime(protocol, seed),
        )
