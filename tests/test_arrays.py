"""SimArray tests (run against a real machine through a mini driver)."""

import pytest

from repro.hlpl.arrays import SimArray
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from tests.conftest import tiny_config


def drive(gen):
    """Run a generator on thread 0 of a fresh machine; return its value."""
    machine = Machine(tiny_config(), "mesi")
    engine = Engine(machine)
    out = []
    engine.pin(0, gen, on_done=lambda v, w: out.append(v))
    engine.run()
    return out[0], machine


def arr_of(values, elem_size=8):
    arr = SimArray(0x10000, len(values), elem_size, name="t")
    arr.data[:] = values
    return arr


class TestGetSet:
    def test_roundtrip(self):
        arr = arr_of([None] * 4)

        def body():
            yield from arr.set(2, 99)
            value = yield from arr.get(2)
            return value

        value, machine = drive(body())
        assert value == 99
        assert machine.cores[0].stats.loads == 1
        assert machine.cores[0].stats.stores == 1

    def test_addresses_are_element_strided(self):
        arr = SimArray(0x10000, 8, elem_size=8)
        assert arr.addr(0) == 0x10000
        assert arr.addr(3) == 0x10000 + 24
        assert arr.end == 0x10000 + 64

    def test_small_elements(self):
        arr = SimArray(0x10000, 100, elem_size=1)
        assert arr.addr(64) == 0x10000 + 64

    def test_bounds_checked(self):
        arr = arr_of([1, 2, 3])
        with pytest.raises(IndexError):
            drive(arr.get(3))
        with pytest.raises(IndexError):
            drive(arr.set(-1, 0))

    def test_bad_elem_size_rejected(self):
        with pytest.raises(ValueError):
            SimArray(0, 4, elem_size=3)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            SimArray(0, -1)


class TestAtomics:
    def test_cas_success(self):
        arr = arr_of([5])

        def body():
            ok = yield from arr.cas(0, 5, 7)
            return ok

        ok, machine = drive(body())
        assert ok and arr.peek(0) == 7
        assert machine.cores[0].stats.rmws == 1

    def test_cas_failure_leaves_value(self):
        arr = arr_of([5])
        ok, _ = drive(arr.cas(0, 4, 7))
        assert not ok and arr.peek(0) == 5

    def test_fetch_add(self):
        arr = arr_of([10])
        old, _ = drive(arr.fetch_add(0, 3))
        assert old == 10 and arr.peek(0) == 13


class TestHostSideAccess:
    def test_peek_poke_do_not_simulate(self):
        arr = arr_of([1, 2])
        arr.poke(0, 9)
        assert arr.peek(0) == 9
        assert arr.to_list() == [9, 2]

    def test_len(self):
        assert len(arr_of([1, 2, 3])) == 3
