"""MESI protocol transition tests (paper Fig. 5, baseline portion)."""

import pytest

from repro.common.types import AccessType, CoherenceState
from tests.conftest import tiny_config

from repro.sim.machine import Machine

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW
S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED
I = CoherenceState.INVALID


@pytest.fixture
def m():
    return Machine(tiny_config(), "mesi")


def priv(machine, core, addr):
    return machine.protocol.private_block(core, addr)


def entry(machine, addr):
    return machine.protocol.dir_entry(addr)


class TestColdMisses:
    def test_load_miss_grants_exclusive(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        assert priv(m, 0, a).state is E
        e = entry(m, a)
        assert e.state is E and e.owner == 0

    def test_store_miss_grants_modified(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is M
        assert entry(m, a).state is M

    def test_cold_miss_goes_to_dram(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        assert m.run_stats.coherence.dram_accesses == 1

    def test_second_access_hits(self, m):
        a = m.sbrk(64)
        lat1 = m.access(0, a, 8, LOAD)
        lat2 = m.access(0, a, 8, LOAD)
        assert lat2 < lat1
        assert lat2 == m.config.l1.latency

    def test_store_tracks_written_sectors(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, STORE)
        m.access(0, a + 16, 8, STORE)
        assert priv(m, 0, a).written_mask == (0xFF | (0xFF << 16))


class TestSilentUpgrade:
    def test_e_to_m_is_silent(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        msgs_before = m.run_stats.coherence.total_messages
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is M
        assert m.run_stats.coherence.total_messages == msgs_before
        # the directory still believes E; that is the standard silent upgrade
        assert entry(m, a).state in (E, M)


class TestSharing:
    def test_read_sharing(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        e = entry(m, a)
        assert e.state is S
        assert e.sharers == {0, 1}
        assert priv(m, 0, a).state is S
        assert priv(m, 1, a).state is S

    def test_read_of_modified_downgrades_owner(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, STORE)
        m.access(1, a, 8, LOAD)
        assert m.run_stats.coherence.downgrades == 1
        assert priv(m, 0, a).state is S
        # dirty data written back to the LLC
        assert m.run_stats.coherence.writebacks == 1

    def test_read_of_exclusive_downgrades_without_writeback(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        assert m.run_stats.coherence.downgrades == 1
        assert m.run_stats.coherence.writebacks == 0

    def test_write_invalidates_sharers(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        m.access(2, a, 8, STORE)
        assert m.run_stats.coherence.invalidations == 2
        assert priv(m, 0, a) is None or priv(m, 0, a).state is I
        assert priv(m, 1, a) is None
        assert entry(m, a).owner == 2

    def test_write_steals_ownership(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, STORE)
        m.access(1, a, 8, STORE)
        assert m.run_stats.coherence.invalidations == 1
        e = entry(m, a)
        assert e.state is M and e.owner == 1
        assert priv(m, 0, a) is None

    def test_upgrade_from_shared(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        m.access(0, a, 8, STORE)  # upgrade, invalidating core 1
        assert m.run_stats.coherence.invalidations == 1
        assert priv(m, 0, a).state is M
        assert priv(m, 1, a) is None

    def test_rmw_behaves_like_store_for_coherence(self, m):
        a = m.sbrk(64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, RMW)
        assert entry(m, a).owner == 1


class TestLatencyOrdering:
    def test_remote_socket_costs_more(self, m):
        cfg = m.config
        a = m.sbrk(64)
        m.protocol.set_page_home(a, 64, 0)
        local = m.access(0, a, 8, LOAD)  # core 0: socket 0, home 0
        b = m.sbrk(64)
        m.protocol.set_page_home(b, 64, 0)
        remote = m.access(cfg.cores_per_socket, b, 8, LOAD)  # other socket
        assert remote > local

    def test_forward_costs_more_than_llc(self, m):
        a = m.sbrk(64)
        m.protocol.set_page_home(a, 64, 0)
        m.access(0, a, 8, STORE)
        fwd_lat = m.access(1, a, 8, LOAD)  # downgrade + forward
        b = m.sbrk(64)
        m.protocol.set_page_home(b, 64, 0)
        m.access(0, b, 8, LOAD)
        m.access(1, b, 8, LOAD)
        m.protocol.l2[1].invalidate(b)
        m.protocol.l1[1].invalidate(b)
        m.protocol.dir_entry(b).sharers.discard(1)
        llc_lat = m.access(1, b, 8, LOAD)  # plain shared LLC hit
        assert fwd_lat > llc_lat


class TestEvictions:
    def test_dirty_eviction_writes_back_and_clears_directory(self, m):
        # conflicting blocks (same L2 set, more than associativity many)
        stride = m.protocol.l2[0].num_sets * 64
        ways = m.protocol.l2[0].assoc
        base = m.sbrk(stride * (ways + 2))
        for i in range(ways + 1):
            m.access(0, base + i * stride, 8, STORE)
        wb = m.run_stats.coherence.writebacks
        assert wb >= 1
        e = entry(m, base)
        assert e.state is I and e.owner is None

    def test_shared_eviction_updates_sharers(self, m):
        stride = m.protocol.l2[0].num_sets * 64
        ways = m.protocol.l2[0].assoc
        base = m.sbrk(stride * (ways + 2))
        for i in range(ways + 1):
            m.access(0, base + i * stride, 8, LOAD)
        e = entry(m, base)
        assert 0 not in e.sharers

    def test_invariants_after_eviction_storm(self, m):
        base = m.sbrk(64 * 128)
        for i in range(100):
            m.access(i % m.config.num_cores, base + i * 64, 8,
                     STORE if i % 3 else LOAD)
        m.protocol.check_invariants()


class TestWardApiIsNoop:
    def test_add_region_returns_none(self, m):
        assert m.add_ward_region(0, 0, 4096) is None

    def test_supports_ward_false(self, m):
        assert not m.supports_ward
