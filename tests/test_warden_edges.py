"""WARDen edge cases beyond the main transition tests."""

import pytest

from repro.common.types import AccessType, CoherenceState
from repro.sim.machine import Machine
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW
W = CoherenceState.WARD
S = CoherenceState.SHARED


@pytest.fixture
def m():
    return Machine(tiny_config(), "warden")


class TestAtomicsInRegions:
    def test_rmw_in_region_served_without_invalidations(self, m):
        """The runtime never puts sync variables in regions, but the
        protocol must stay safe if software does it anyway."""
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, RMW)
        m.access(1, a, 8, RMW)
        assert m.run_stats.coherence.invalidations == 0
        m.remove_ward_region(0, region)
        m.protocol.check_invariants()


class TestPartialBlockRegions:
    def test_region_boundary_is_exact(self, m):
        """Blocks outside [start, end) are never warded, even adjacent."""
        a = m.sbrk(256, 64)
        region = m.add_ward_region(0, a + 64, a + 128)  # middle block only
        m.access(0, a, 8, STORE)        # before the region
        m.access(1, a, 8, STORE)        # -> normal MESI invalidation
        m.access(0, a + 128, 8, STORE)  # after the region
        m.access(1, a + 128, 8, STORE)
        assert m.run_stats.coherence.invalidations == 2
        m.access(0, a + 64, 8, STORE)   # inside
        m.access(1, a + 64, 8, STORE)
        assert m.run_stats.coherence.invalidations == 2  # unchanged
        m.remove_ward_region(0, region)


class TestRegionReuse:
    def test_remark_after_reconcile(self, m):
        """An address can enter, leave, and re-enter WARD coverage."""
        a = m.sbrk(64, 64)
        for _ in range(3):
            region = m.add_ward_region(0, a, a + 64)
            m.access(0, a, 8, STORE)
            m.access(1, a, 8, LOAD)  # stale-tolerated read (no RAW in test)
            m.remove_ward_region(0, region)
        m.protocol.check_invariants()
        assert m.run_stats.coherence.ward_region_adds == 3
        assert m.run_stats.coherence.ward_region_removes == 3

    def test_write_after_region_end_is_plain_mesi(self, m):
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        m.access(1, a + 8, 8, STORE)
        m.remove_ward_region(0, region)
        inv_before = m.run_stats.coherence.invalidations
        m.access(0, a, 8, STORE)  # S copies may exist: upgrade/invalidate
        assert m.run_stats.coherence.invalidations >= inv_before
        m.protocol.check_invariants()


class TestSmtSharing:
    def test_sibling_threads_share_ward_copy(self):
        cfg = tiny_config(num_sockets=1, cores_per_socket=2).replace(
            threads_per_core=2
        )
        m = Machine(cfg, "warden")
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        lat = m.access(1, a, 8, STORE)  # same core, other SMT thread
        assert lat == cfg.l1.latency  # private W hit
        m.remove_ward_region(0, region)


class TestWardStats:
    def test_coverage_counts_hits_and_grants(self, m):
        a = m.sbrk(64, 64)
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)   # grant
        m.access(0, a, 8, STORE)   # private hit
        m.access(0, a + 128, 8, STORE)  # not ward
        coh = m.run_stats.coherence
        assert coh.ward_accesses == 2
        assert coh.total_accesses == 3
        assert coh.ward_coverage == pytest.approx(2 / 3)
        m.remove_ward_region(0, region)

    def test_region_peak_occupancy_tracked(self, m):
        regions = [
            m.add_ward_region(0, m.sbrk(64, 64), m._brk) for _ in range(5)
        ]
        assert m.protocol.region_table.peak_occupancy == 5
        for r in regions:
            m.remove_ward_region(0, r)
        assert len(m.protocol.region_table) == 0


class TestLargeRegions:
    def test_page_sized_region_many_blocks(self, m):
        base = m.sbrk(4096, 4096)
        region = m.add_ward_region(0, base, base + 4096)
        for i in range(0, 4096, 64):
            m.access(i // 64 % 4, base + i, 8, STORE)
        m.remove_ward_region(0, region)
        assert m.run_stats.coherence.reconciled_blocks > 30
        m.protocol.check_invariants()
