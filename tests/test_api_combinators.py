"""HLPL combinator tests: par, parallel_for, tabulate, reduce, filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp
from tests.conftest import tiny_config


def run(root_fn, *args, protocol="mesi", **kwargs):
    machine = Machine(tiny_config(), protocol)
    rt = Runtime(machine)
    result, stats = rt.run(root_fn, *args, **kwargs)
    machine.protocol.check_invariants()
    return result, stats


class TestPar:
    def test_two_way(self):
        def leaf(value):
            def body(ctx):
                yield ComputeOp(1)
                return value
            return body

        def root(ctx):
            results = yield from ctx.par(leaf(1), leaf(2))
            return results

        result, _ = run(root)
        assert result == [1, 2]

    def test_results_in_thunk_order(self):
        def root(ctx):
            results = yield from ctx.par(
                *[(lambda k: lambda c: c.value(k))(k) for k in range(6)]
            )
            return results

        result, _ = run(root)
        assert result == list(range(6))

    def test_single_thunk_runs_inline(self):
        def root(ctx):
            results = yield from ctx.par(lambda c: c.value(9))
            return results

        result, stats = run(root)
        assert result == [9]

    def test_empty_par(self):
        def root(ctx):
            results = yield from ctx.par()
            return results
            yield  # pragma: no cover

        result, _ = run(root)
        assert result == []

    def test_nested_forks(self):
        def fib(ctx, n):
            if n < 2:
                yield ComputeOp(1)
                return n
            a, b = yield from ctx.par(
                lambda c: fib(c, n - 1), lambda c: fib(c, n - 2)
            )
            return a + b

        result, _ = run(fib, 10)
        assert result == 55


class TestParallelFor:
    def test_covers_every_index(self):
        def root(ctx):
            arr = yield from ctx.alloc_array(40, fill=0)
            def body(c, i):
                yield from arr.set(i, i * 2)
            yield from ctx.parallel_for(0, 40, body, grain=4)
            return arr.to_list()

        result, _ = run(root)
        assert result == [i * 2 for i in range(40)]

    def test_empty_range(self):
        def root(ctx):
            yield from ctx.parallel_for(5, 5, None, grain=4)
            return "ok"

        assert run(root)[0] == "ok"

    def test_grain_bounds_sequential_chunk(self):
        calls = []

        def root(ctx):
            def body(c, i):
                calls.append(i)
                yield ComputeOp(1)
            yield from ctx.parallel_for(0, 10, body, grain=100)
            return None

        run(root)
        assert calls == list(range(10))  # one sequential chunk, in order


class TestTabulateMap:
    def test_tabulate_values(self):
        def root(ctx):
            arr = yield from ctx.tabulate(32, lambda c, i: c.value(i * i), grain=4)
            return arr.to_list()

        result, _ = run(root)
        assert result == [i * i for i in range(32)]

    def test_map_array(self):
        def root(ctx):
            src = yield from ctx.tabulate(16, lambda c, i: c.value(i), grain=4)
            out = yield from ctx.map_array(src, lambda v: v + 100, grain=4)
            return out.to_list()

        result, _ = run(root)
        assert result == [i + 100 for i in range(16)]

    def test_tabulate_zero_length(self):
        def root(ctx):
            arr = yield from ctx.tabulate(0, lambda c, i: c.value(i))
            return arr.to_list()

        assert run(root)[0] == []

    def test_tabulate_marks_construct_region_under_warden(self):
        def root(ctx):
            arr = yield from ctx.tabulate(64, lambda c, i: c.value(1), grain=8)
            return len(arr)

        _, stats = run(root, protocol="warden")
        assert stats.coherence.ward_region_adds > 0
        assert stats.coherence.ward_region_removes == stats.coherence.ward_region_adds


class TestReduce:
    def test_sum(self):
        def root(ctx):
            arr = yield from ctx.tabulate(50, lambda c, i: c.value(i), grain=8)
            total = yield from ctx.reduce(
                0, 50, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        assert run(root)[0] == sum(range(50))

    def test_max(self):
        def root(ctx):
            arr = yield from ctx.tabulate(
                20, lambda c, i: c.value((i * 7) % 13), grain=4
            )
            best = yield from ctx.reduce(
                0, 20, lambda c, i: arr.get(i), max, grain=4
            )
            return best

        assert run(root)[0] == max((i * 7) % 13 for i in range(20))

    def test_empty_range_rejected(self):
        def root(ctx):
            yield from ctx.reduce(0, 0, None, None)

        with pytest.raises(ValueError):
            run(root)


class TestFilter:
    def test_keeps_order(self):
        def root(ctx):
            src = yield from ctx.tabulate(30, lambda c, i: c.value(i), grain=4)
            out = yield from ctx.filter_array(src, lambda v: v % 3 == 0, grain=4)
            return out.to_list()

        assert run(root)[0] == [i for i in range(30) if i % 3 == 0]

    def test_empty_source(self):
        def root(ctx):
            src = yield from ctx.alloc_array(0)
            out = yield from ctx.filter_array(src, lambda v: True)
            return out.to_list()

        assert run(root)[0] == []

    def test_nothing_passes(self):
        def root(ctx):
            src = yield from ctx.tabulate(10, lambda c, i: c.value(i), grain=4)
            out = yield from ctx.filter_array(src, lambda v: False, grain=4)
            return out.to_list()

        assert run(root)[0] == []


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=60),
    grain=st.integers(1, 16),
)
def test_reduce_matches_python_sum(values, grain):
    def root(ctx):
        src = yield from ctx.tabulate(
            len(values), lambda c, i: c.value(values[i]), grain=grain
        )
        total = yield from ctx.reduce(
            0, len(values), lambda c, i: src.get(i), lambda a, b: a + b,
            grain=grain,
        )
        return total

    result, _ = run(root)
    assert result == sum(values)


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(st.integers(0, 100), min_size=0, max_size=60),
    grain=st.integers(1, 16),
    threshold=st.integers(0, 100),
)
def test_filter_matches_python_filter(values, grain, threshold):
    def root(ctx):
        src = yield from ctx.alloc_array(len(values))
        src.data[:] = values
        out = yield from ctx.filter_array(src, lambda v: v >= threshold, grain=grain)
        return out.to_list()

    result, _ = run(root, protocol="warden")
    assert result == [v for v in values if v >= threshold]
