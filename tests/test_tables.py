"""Table/figure renderer tests."""

from repro.analysis.metrics import ComparisonMetrics
from repro.analysis.tables import (
    figure9,
    figure10,
    figure11,
    render_table,
    speedup_energy_figure,
    table1,
    table2,
)
from repro.bench.microbench import PingPongResult
from repro.common.config import dual_socket


def metric(name="fib", speedup=1.5):
    return ComparisonMetrics(
        benchmark=name,
        speedup=speedup,
        interconnect_savings=10.0,
        processor_savings=5.0,
        inv_dg_reduced_per_kilo=12.0,
        downgrade_reduction_pct=60.0,
        invalidation_reduction_pct=40.0,
        ipc_improvement_pct=7.0,
        ward_coverage=0.5,
    )


class TestRenderTable:
    def test_alignment_and_separator(self):
        out = render_table(["A", "Blong"], [[1, 2.5], ["xx", 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "-+-" in lines[2]
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_floats_formatted(self):
        out = render_table(["v"], [[1.23456]])
        assert "1.23" in out and "1.2345" not in out


class TestFigureRenderers:
    def test_speedup_energy_has_mean_row(self):
        out = speedup_energy_figure([metric(), metric("primes", 2.0)], "Fig")
        assert "MEAN" in out
        assert "fib" in out and "primes" in out

    def test_figure9_columns(self):
        out = figure9([metric()])
        assert "Inv+Down reduced" in out and "Speedup" in out

    def test_figure10_columns(self):
        out = figure10([metric()])
        assert "Downgrade reduction %" in out
        assert "60.00" in out

    def test_figure11_columns(self):
        out = figure11([metric()])
        assert "IPC improvement %" in out and "7.00" in out


class TestPaperTables:
    def test_table1_includes_paper_reference(self):
        results = {
            s: PingPongResult(s, 100.0, 10000, 100)
            for s in ("same-core", "same-socket", "cross-socket")
        }
        out = table1(results)
        assert "Paper real HW" in out
        assert "1163.23" in out  # paper's cross-socket real-HW number

    def test_table2_matches_config(self):
        out = table2(dual_socket())
        assert "32 KB" in out
        assert "6-16-71 cycles" in out
        assert "3.3 GHz" in out
