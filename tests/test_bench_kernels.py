"""Unit tests for benchmark kernel helpers and reference implementations."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import dedup, dmm, fib, grep, msort, nqueens, palindrome
from repro.bench import primes, quickhull, ray, suffix_array, tokens
from repro.bench.common import input_array
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from tests.conftest import tiny_config


def run(root_fn, *args):
    machine = Machine(tiny_config(), "warden")
    result, _ = Runtime(machine).run(root_fn, *args)
    return result


class TestReferences:
    def test_fib_sequence(self):
        assert [fib.fib_seq(n) for n in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_primes_reference_known_values(self):
        assert primes.reference(10) == 4   # 2 3 5 7
        assert primes.reference(100) == 25
        assert primes.reference(1) == 0

    def test_nqueens_reference_known_values(self):
        assert nqueens.reference(4) == 2
        assert nqueens.reference(5) == 10
        assert nqueens.reference(6) == 4

    def test_grep_reference_overlapping_matches(self):
        wl = {"text": "abcabca", "pattern": "abca"}
        assert grep.reference(wl) == [0, 3]

    def test_tokens_reference_double_spaces(self):
        wl = {"text": "a  bb  c"}
        count, offsets = tokens.reference(wl)
        assert count == 3 and offsets == [0, 3, 7]

    def test_palindrome_reference(self):
        assert palindrome.reference({"text": "abacab"}) == 5  # "bacab"
        assert palindrome.reference({"text": "aaaa"}) == 4

    def test_dedup_reference(self):
        assert dedup.reference([3, 1, 3, 2, 1]) == [1, 2, 3]

    def test_suffix_array_reference(self):
        assert suffix_array.reference("banana") == [5, 3, 1, 0, 4, 2]


class TestQuickhullGeometry:
    def test_cross_sign(self):
        assert quickhull._cross((0, 0), (1, 0), (0, 1)) > 0   # left turn
        assert quickhull._cross((0, 0), (1, 0), (0, -1)) < 0  # right turn
        assert quickhull._cross((0, 0), (1, 0), (2, 0)) == 0  # collinear

    def test_reference_square(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)]
        assert quickhull.reference(pts) == [(0, 0), (0, 2), (2, 0), (2, 2)]

    def test_reference_collinear_excluded(self):
        pts = [(0, 0), (1, 0), (2, 0), (1, 1)]
        assert quickhull.reference(pts) == [(0, 0), (1, 1), (2, 0)]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
        min_size=3, max_size=40,
    ))
    def test_kernel_matches_reference_on_random_points(self, points):
        points = list(set(points))
        if len(points) < 3:
            return

        def root(ctx, pts_list):
            arr = yield from input_array(ctx, pts_list, name="pts")
            hull = yield from quickhull.quickhull_task(ctx, arr)
            return sorted(hull)

        assert run(root, points) == quickhull.reference(points)


class TestRayGeometry:
    def test_intersect_hit(self):
        tri = ((-10, -10, 20), (10, -10, 20), (0, 10, 20))
        t = ray._intersect((0, 0, 0), (0, 0, 1), tri)
        assert t is not None and t > 0

    def test_intersect_miss(self):
        tri = ((100, 100, 20), (110, 100, 20), (100, 110, 20))
        assert ray._intersect((0, 0, 0), (0, 0, 1), tri) is None

    def test_intersect_behind_origin(self):
        tri = ((-10, -10, -20), (10, -10, -20), (0, 10, -20))
        assert ray._intersect((0, 0, 0), (0, 0, 1), tri) is None

    def test_degenerate_triangle(self):
        tri = ((0, 0, 5), (0, 0, 5), (0, 0, 5))
        assert ray._intersect((0, 0, 0), (0, 0, 1), tri) is None


class TestMsortKernel:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=150))
    def test_sort_matches_sorted(self, values):
        def root(ctx, vals):
            src = yield from input_array(ctx, vals, name="in")
            out = yield from msort.sort_task(ctx, src, 0, len(vals))
            return out.to_list()

        assert run(root, values) == sorted(values)

    def test_sort_with_duplicates(self):
        values = [5, 5, 5, 1, 1, 9] * 12

        def root(ctx, vals):
            src = yield from input_array(ctx, vals, name="in")
            out = yield from msort.sort_task(ctx, src, 0, len(vals))
            return out.to_list()

        assert run(root, values) == sorted(values)


class TestDmm:
    def test_reference_identity(self):
        n = 3
        ident = [1 if i == j else 0 for i in range(n) for j in range(n)]
        a = list(range(9))
        out, checksum = dmm.reference({"n": n, "a": a, "b": ident})
        assert out == a and checksum == sum(a)


class TestWorkloadBuilders:
    def test_grep_workload_has_matches(self):
        wl = grep.BENCHMARK.workload("default")
        assert grep.reference(wl), "default grep input should contain matches"

    def test_dedup_workload_has_duplicates(self):
        values = dedup.BENCHMARK.workload("default")
        assert len(set(values)) < len(values)

    def test_ray_workload_has_hits(self):
        wl = ray.BENCHMARK.workload("default")
        hits, _ = ray.reference(wl)
        assert any(h >= 0 for h in hits)

    def test_palindrome_workload_nontrivial(self):
        wl = palindrome.BENCHMARK.workload("default")
        assert palindrome.reference(wl) >= 3

    def test_suffix_array_workload_sorts_uniquely(self):
        text = suffix_array.BENCHMARK.workload("default")
        sa = suffix_array.reference(text)
        assert sorted(sa) == list(range(len(text)))
