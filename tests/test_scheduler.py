"""Work-stealing scheduler tests."""

import pytest

from repro.hlpl.runtime import Runtime
from repro.sim.engine import Strand
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp
from tests.conftest import tiny_config


@pytest.fixture
def rt():
    return Runtime(Machine(tiny_config(), "mesi"))


def strand(cost=1):
    def gen():
        yield ComputeOp(cost)

    return Strand(gen())


class TestPushPop:
    def test_push_records_ready_clock(self, rt):
        rt.machine.cores[0].compute(500)
        s = strand()
        rt.scheduler.push(0, s)
        assert s.ready_clock == 500
        assert rt.scheduler.total_ready == 1

    def test_own_pop_takes_newest(self, rt):
        sched = rt.scheduler
        s1, s2 = strand(), strand()
        sched.push(0, s1)
        sched.push(0, s2)
        worker = rt.engine.workers[0]
        sched.on_idle(worker)
        assert worker.strand is s2  # LIFO for the owner
        assert sched.total_ready == 1

    def test_steal_takes_oldest(self, rt):
        sched = rt.scheduler
        s1, s2 = strand(), strand()
        sched.push(0, s1)
        sched.push(0, s2)
        thief = rt.engine.workers[1]
        for _ in range(64):  # random victim selection: probe until found
            sched.on_idle(thief)
            if thief.strand is not None:
                break
        assert thief.strand is s1  # FIFO for thieves
        assert rt.machine.cores[1].stats.successful_steals == 1

    def test_assign_respects_causality(self, rt):
        sched = rt.scheduler
        rt.machine.cores[0].compute(1000)
        s = strand()
        sched.push(0, s)  # ready at t=1000
        thief = rt.engine.workers[1]  # clock 0
        for _ in range(64):
            sched.on_idle(thief)
            if thief.strand is not None:
                break
        assert rt.machine.cores[1].clock >= 1000

    def test_spin_when_empty(self, rt):
        sched = rt.scheduler
        worker = rt.engine.workers[3]
        before = rt.machine.cores[3].clock
        sched.on_idle(worker)
        assert worker.strand is None
        assert rt.machine.cores[3].clock > before
        assert rt.machine.cores[3].stats.spin_loads == 1


class TestVictimSelection:
    def test_never_probes_self(self, rt):
        sched = rt.scheduler
        for _ in range(200):
            assert sched._next_victim(2) != 2

    def test_prefers_local_socket(self, rt):
        sched = rt.scheduler
        cfg = rt.machine.config
        per_socket = cfg.cores_per_socket * cfg.threads_per_core
        picks = [sched._next_victim(0) for _ in range(400)]
        local = sum(1 for v in picks if v < per_socket)
        assert local > len(picks) * 0.6  # ~75% expected

    def test_traffic_toggle(self, rt):
        sched = rt.scheduler
        sched.model_traffic = False
        worker = rt.engine.workers[1]
        sched.on_idle(worker)
        assert rt.machine.cores[1].stats.loads == 0  # fixed-cost mode


class TestTermination:
    def test_finished_stops_idle_offering(self, rt):
        sched = rt.scheduler
        assert sched.has_work_for(rt.engine.workers[0])
        sched.finished = True
        assert not sched.has_work_for(rt.engine.workers[0])
