"""Golden-trace regression corpus (tests/golden/stats_digests.json).

Every benchmark x protocol cell at the pinned configuration must hash to
exactly the committed digest: the corpus freezes the simulator's full
counter state (cycles, per-core stats, coherence message matrix), so any
behavioural drift — intentional or not — fails here first.

After an INTENTIONAL simulator change, regenerate with

    PYTHONPATH=src python scripts/update_golden.py

inspect the cycle/instruction deltas in the git diff, and commit the
refreshed corpus alongside the change.
"""

import json
import os

import pytest

from repro.analysis.conformance import stats_digest
from repro.analysis.run import run_benchmark
from repro.common.config import dual_socket

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "stats_digests.json"
)

with open(GOLDEN_PATH, encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)


def test_corpus_metadata_is_pinned():
    assert GOLDEN["schema"] == "warden-repro/golden/v1"
    assert GOLDEN["machine"] == dual_socket().name
    assert GOLDEN["size"] == "test" and GOLDEN["seed"] == 42
    # every benchmark and golden synthetic workload appears under every
    # registered protocol
    from repro.bench import PAPER_ORDER
    from repro.coherence.registry import available_protocols
    from repro.workloads import GOLDEN_SYNTH

    cells = {tuple(key.split("/")) for key in GOLDEN["entries"]}
    expected = {
        (name, proto)
        for name in list(PAPER_ORDER) + list(GOLDEN_SYNTH)
        for proto in available_protocols()
    }
    assert cells == expected


@pytest.mark.parametrize("cell", sorted(GOLDEN["entries"]))
def test_stats_match_golden_digest(cell):
    name, protocol = cell.split("/")
    expected = GOLDEN["entries"][cell]
    result = run_benchmark(
        name, protocol, dual_socket(),
        size=GOLDEN["size"], seed=GOLDEN["seed"], use_disk_cache=False,
    )
    got = stats_digest(result.stats)
    assert got == expected["digest"], (
        f"RunStats drift in {cell}: digest {got[:16]}... != golden "
        f"{expected['digest'][:16]}... (golden cycles="
        f"{expected['cycles']}, got cycles={result.stats.cycles}). "
        "If this change is intentional, regenerate the corpus with "
        "`PYTHONPATH=src python scripts/update_golden.py` and commit "
        "the diff."
    )
