"""Core timing model tests: blocking loads, store buffer, RMW fences."""

import pytest

from repro.common.config import dual_socket
from repro.sim.core import CoreModel
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.ops import StoreBatchOp, StoreOp
from tests.conftest import tiny_config


@pytest.fixture
def core():
    return CoreModel(dual_socket(), thread=0)


class TestLoads:
    def test_load_blocks_for_full_latency(self, core):
        core.load(200)
        assert core.clock == 200
        assert core.stats.loads == 1

    def test_load_stall_excludes_l1_hit_time(self, core):
        core.load(200)
        assert core.stats.load_stall_cycles == 200 - 6

    def test_l1_hit_has_no_stall(self, core):
        core.load(6)
        assert core.stats.load_stall_cycles == 0

    def test_spin_loads_counted(self, core):
        core.load(6, spin=True)
        core.load(6)
        assert core.stats.spin_loads == 1
        assert core.stats.loads == 2


class TestStoreBuffer:
    def test_store_issues_in_one_cycle(self, core):
        core.store(300)
        assert core.clock == 1  # latency hidden

    def test_buffer_fills_then_stalls(self, core):
        cap = core.config.store_buffer_entries
        for _ in range(cap):
            core.store(10_000)
        clock_full = core.clock
        assert clock_full == cap  # no stall yet
        core.store(10_000)  # must wait for the oldest to drain
        assert core.clock > clock_full + 1
        assert core.stats.store_buffer_stall_cycles > 0

    def test_drain_frees_slots(self, core):
        core.store(10)
        core.compute(100)  # store completes in the background
        cap = core.config.store_buffer_entries
        for _ in range(cap):
            core.store(5)
        # oldest entries drained during compute: no stall for a while
        assert core.stats.store_buffer_stall_cycles == 0

    def test_completions_are_monotonic(self, core):
        core.store(1000)
        core.store(1)  # completes AFTER the first (TSO ordering)
        assert list(core._store_buffer) == sorted(core._store_buffer)


class TestStoreBufferAccounting:
    def test_fill_stall_charges_exact_cycles(self, core):
        cap = core.config.store_buffer_entries
        for _ in range(cap):
            core.store(10_000)
        oldest = core._store_buffer[0]
        clock_before = core.clock
        core.store(10_000)
        # the stall is exactly the wait for the oldest entry to drain,
        # plus the usual 1-cycle issue
        assert core.stats.store_buffer_stall_cycles == oldest - clock_before
        assert core.clock == oldest + 1

    def test_depth_tracks_issue_and_drain(self, core):
        core.store(50)
        core.store(50)
        assert core.store_buffer_depth() == 2
        core.compute(200)  # clock passes both completions
        assert core.store_buffer_depth() == 0

    def test_load_time_drains_buffer_before_next_store(self, core):
        cap = core.config.store_buffer_entries
        for _ in range(cap):
            core.store(40)
        core.load(2000)  # blocking load: buffered stores complete meanwhile
        core.store(40)
        assert core.stats.store_buffer_stall_cycles == 0

    def test_drain_preserves_fifo_order(self, core):
        core.store(100)
        core.store(200)
        core.store(300)
        # TSO: later stores cannot complete before earlier ones
        completions = list(core._store_buffer)
        assert completions == sorted(completions)
        assert len(set(completions)) == 3
        core.compute(completions[0] - core.clock)
        # draining removes a prefix, never a middle entry
        core._drain_store_buffer()
        assert list(core._store_buffer) == completions[1:]

    def test_batched_stores_charge_same_stalls_as_scalar(self):
        """StoreBatchOp retirement must hit the same store()/compute()
        sequence — and therefore the same fill stalls — as per-op stepping."""
        count = 2 * dual_socket().store_buffer_entries + 8

        def run(batched):
            machine = Machine(tiny_config(), "mesi")
            engine = Engine(machine)
            base = machine.sbrk(64 * count)

            def kern():
                if batched:
                    yield StoreBatchOp(base, 64, count, 8)
                else:
                    for i in range(count):
                        yield StoreOp(base + 64 * i, 8)

            engine.pin(0, kern())
            engine.run()
            return machine.cores[0]

        scalar = run(batched=False)
        fused = run(batched=True)
        assert scalar.stats.store_buffer_stall_cycles > 0
        assert (
            fused.stats.store_buffer_stall_cycles
            == scalar.stats.store_buffer_stall_cycles
        )
        assert fused.clock == scalar.clock
        assert fused.stats.stores == scalar.stats.stores


class TestRmw:
    def test_rmw_blocks_fully(self, core):
        core.rmw(500)
        assert core.clock == 500
        assert core.stats.rmws == 1

    def test_rmw_drains_store_buffer_first(self, core):
        core.store(1000)  # completes at ~1001
        core.rmw(10)
        # the fence waited for the pending store
        assert core.clock >= 1001 + 10
        assert core.stats.store_buffer_stall_cycles >= 999
        assert not core._store_buffer


class TestComputeAdvance:
    def test_compute_counts_instructions(self, core):
        core.compute(42)
        assert core.clock == 42
        assert core.stats.compute_instrs == 42

    def test_advance_does_not_count_instructions(self, core):
        core.advance(42)
        assert core.clock == 42
        assert core.stats.instructions == 0

    def test_instruction_totals(self, core):
        core.load(6)
        core.store(6)
        core.rmw(6)
        core.compute(10)
        assert core.stats.instructions == 13
