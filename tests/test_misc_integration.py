"""Cross-cutting integration tests: presets, input warming, write phases."""


from repro.bench.common import input_array
from repro.common.config import many_socket
from repro.common.types import AccessType
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from tests.conftest import tiny_config


class TestManySocketPreset:
    def test_topology(self):
        cfg = many_socket(4)
        assert cfg.num_sockets == 4
        assert cfg.num_cores == 48
        assert cfg.name == "many-socket-4"

    def test_runs_a_program(self):
        def root(ctx):
            arr = yield from ctx.tabulate(64, lambda c, i: c.value(i), grain=8)
            total = yield from ctx.reduce(
                0, 64, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        machine = Machine(many_socket(4, cores_per_socket=2), "warden")
        result, stats = Runtime(machine).run(root)
        assert result == sum(range(64))
        machine.protocol.check_invariants()


class TestInputWarming:
    def test_input_array_is_llc_resident(self):
        def root(ctx):
            arr = yield from input_array(ctx, list(range(32)), name="in")
            coh = ctx.rt.machine.run_stats.coherence
            dram_before = coh.dram_accesses
            value = yield from arr.get(0)
            # the first read hit the LLC, not DRAM (input pre-warmed)
            assert coh.dram_accesses == dram_before
            return value

        machine = Machine(tiny_config(), "mesi")
        result, stats = Runtime(machine).run(root)
        assert result == 0

    def test_input_values_preserved(self):
        values = [7, -3, 10**12, 0]

        def root(ctx):
            arr = yield from input_array(ctx, values, name="in")
            out = []
            for i in range(len(values)):
                out.append((yield from arr.get(i)))
            return out

        machine = Machine(tiny_config(), "mesi")
        result, _ = Runtime(machine).run(root)
        assert result == values


class TestWritePhases:
    def test_ward_phase_scatter_is_coherent(self):
        """Scattered multi-writer stores through ward_begin/ward_end end up
        globally visible after the phase (the inject primitive pattern)."""

        def root(ctx, n):
            arr = yield from ctx.alloc_array(n, fill=0, name="scatter")
            phase = ctx.ward_begin(arr)

            def body(c, i):
                yield from arr.set((i * 17) % n, 1)

            yield from ctx.parallel_for(0, n, body, grain=1)
            ctx.ward_end(phase)
            total = yield from ctx.reduce(
                0, n, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        machine = Machine(tiny_config(), "warden")
        result, stats = Runtime(machine).run(root, 64)
        assert result == 64  # 17 coprime with 64: a permutation
        machine.protocol.check_invariants()

    def test_ward_phase_noop_on_mesi(self):
        def root(ctx):
            arr = yield from ctx.alloc_array(8, fill=0)
            phase = ctx.ward_begin(arr)
            assert phase is None
            ctx.ward_end(phase)
            return "ok"
            yield  # pragma: no cover

        machine = Machine(tiny_config(), "mesi")
        result, _ = Runtime(machine).run(root)
        assert result == "ok"


class TestMachineSeparation:
    def test_two_machines_do_not_share_state(self):
        m1 = Machine(tiny_config(), "warden")
        m2 = Machine(tiny_config(), "warden")
        a = m1.sbrk(64, 64)
        m1.add_ward_region(0, a, a + 64)
        assert len(m1.protocol.region_table) == 1
        assert len(m2.protocol.region_table) == 0

    def test_access_types_round_trip(self):
        m = Machine(tiny_config(), "mesi")
        a = m.sbrk(64)
        for atype in AccessType:
            m.access(0, a, 8, atype)
        stats = m.finalize()
        assert stats.cores.loads == 1
        assert stats.cores.stores == 1
        assert stats.cores.rmws == 1
