"""Table-1 ping-pong microbenchmark tests."""

import pytest

from repro.bench.microbench import (
    PAPER_TABLE1,
    SCENARIOS,
    TimedCell,
    run_pingpong,
    run_table1,
)


class TestTimedCell:
    def test_old_value_until_visible(self):
        cell = TimedCell(0)
        cell.write(1, visible_at=100)
        assert cell.read(99) == 0
        assert cell.read(100) == 1

    def test_initial_value_visible_immediately(self):
        assert TimedCell(7).read(0) == 7


class TestPingPong:
    def test_scenario_latency_ordering(self):
        res = run_table1(iterations=100)
        same_core = res["same-core"].cycles_per_iteration
        same_socket = res["same-socket"].cycles_per_iteration
        cross = res["cross-socket"].cycles_per_iteration
        assert same_core < same_socket < cross

    def test_matches_paper_sniper_within_2x(self):
        res = run_table1(iterations=100)
        for scenario in ("same-socket", "cross-socket"):
            ours = res[scenario].cycles_per_iteration
            sniper = PAPER_TABLE1[scenario]["sniper"]
            assert 0.5 < ours / sniper < 2.0

    def test_same_core_is_cheap(self):
        res = run_pingpong("same-core", iterations=100)
        assert res.cycles_per_iteration < 60

    def test_iterations_complete(self):
        res = run_pingpong("same-socket", iterations=50)
        assert res.iterations == 50
        assert res.total_cycles > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_pingpong("same-planet")

    def test_all_scenarios_have_paper_numbers(self):
        assert set(SCENARIOS) == set(PAPER_TABLE1)

    def test_warden_protocol_also_runs(self):
        # the shared word is not in any region: WARDen == MESI here
        mesi = run_pingpong("same-socket", iterations=50, protocol="mesi")
        warden = run_pingpong("same-socket", iterations=50, protocol="warden")
        assert warden.cycles_per_iteration == pytest.approx(
            mesi.cycles_per_iteration
        )
