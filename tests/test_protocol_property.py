"""Property-based protocol tests (hypothesis), over the whole protocol zoo.

Per-protocol invariants on random traces:

* every registered protocol keeps ``check_invariants()`` clean;
* the directory protocols (MESI, MOESI) preserve Single-Writer-
  Multiple-Reader after every store;
* MOESI's O state always implies a dirty owner copy (owned-implies-dirty);
* SI/SD never sends an invalidation or downgrade, and a sync point leaves
  no stale copy behind (the next read must refetch from the home LLC).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.registry import available_protocols
from repro.common.types import AccessType, CoherenceState
from repro.sim.machine import Machine
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
O = CoherenceState.OWNED
W = CoherenceState.WARD

access_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),                      # thread
        st.integers(0, 31),                     # block index
        st.integers(0, 7),                      # word within block
        st.sampled_from([LOAD, STORE, AccessType.RMW]),
    ),
    min_size=1,
    max_size=200,
)


@pytest.mark.parametrize("protocol", available_protocols())
@settings(max_examples=40, deadline=None)
@given(trace=access_strategy)
def test_invariants_hold_on_random_traces(protocol, trace):
    m = Machine(tiny_config(), protocol)
    base = m.sbrk(64 * 32, 64)
    for thread, block, word, atype in trace:
        m.access(thread, base + block * 64 + word * 8, 8, atype)
    m.protocol.check_invariants()


@pytest.mark.parametrize("protocol", ("mesi", "moesi"))
@settings(max_examples=40, deadline=None)
@given(trace=access_strategy)
def test_swmr_after_every_write(protocol, trace):
    """Single-Writer-Multiple-Reader: after a store, no other core holds a
    writable copy of that block.  Holds for the directory protocols; SI/SD
    deliberately gives it up (DRF programs never notice) and WARDen's W
    state relaxes it inside regions."""
    m = Machine(tiny_config(), protocol)
    base = m.sbrk(64 * 32, 64)
    for thread, block, word, atype in trace:
        addr = base + block * 64 + word * 8
        m.access(thread, addr, 8, atype)
        if atype.is_write:
            writer_core = m.config.core_of_thread(thread)
            block_addr = base + block * 64
            for core in range(m.config.num_cores):
                if core == writer_core:
                    continue
                copy = m.protocol.private_block(core, block_addr)
                assert copy is None or not copy.state.grants_write


@settings(max_examples=40, deadline=None)
@given(trace=access_strategy)
def test_moesi_owned_implies_dirty(trace):
    """Whenever the directory holds a block in O, the owner's private copy
    is in O with a nonzero written mask — the whole point of the state is
    sourcing dirty data to readers without a memory writeback."""
    m = Machine(tiny_config(), "moesi")
    base = m.sbrk(64 * 32, 64)
    for thread, block, word, atype in trace:
        m.access(thread, base + block * 64 + word * 8, 8, atype)
        for directory in m.protocol.dirs:
            for entry in directory.entries():
                if entry.state is not O:
                    continue
                assert entry.owner is not None
                copy = m.protocol.private_block(entry.owner, entry.addr)
                assert copy is not None and copy.state is O
                assert copy.written_mask, (
                    f"owner copy of {entry.addr:#x} is clean in O state"
                )
    m.protocol.check_invariants()


@settings(max_examples=40, deadline=None)
@given(trace=access_strategy, region_blocks=st.sets(st.integers(0, 31)))
def test_sisd_never_disturbs_remote_caches(trace, region_blocks):
    """SI/SD's defining property: zero invalidations, zero downgrades,
    empty directories — regardless of sharing pattern or region churn."""
    m = Machine(tiny_config(), "sisd")
    base = m.sbrk(64 * 32, 64)
    regions = [
        m.add_ward_region(0, base + b * 64, base + b * 64 + 64)
        for b in sorted(region_blocks)
    ]
    for thread, block, word, atype in trace:
        m.access(thread, base + block * 64 + word * 8, 8, atype)
    for region in regions:
        m.remove_ward_region(0, region)
    st0 = m.run_stats.coherence
    assert st0.invalidations == 0 and st0.downgrades == 0
    for directory in m.protocol.dirs:
        assert len(directory) == 0
    m.protocol.check_invariants()


@settings(max_examples=40, deadline=None)
@given(trace=access_strategy, region_blocks=st.sets(st.integers(0, 31),
                                                    min_size=1))
def test_sisd_no_stale_read_after_self_invalidate(trace, region_blocks):
    """After the sync point (region removal) no core retains any copy of
    the region's blocks: a subsequent load cannot observe stale data — it
    must miss and refetch the reconciled value from the home LLC."""
    m = Machine(tiny_config(), "sisd")
    base = m.sbrk(64 * 32, 64)
    covered = {
        b: m.add_ward_region(0, base + b * 64, base + b * 64 + 64)
        for b in sorted(region_blocks)
    }
    for thread, block, word, atype in trace:
        m.access(thread, base + block * 64 + word * 8, 8, atype)
    for region in covered.values():
        m.remove_ward_region(0, region)
    for b in (b for b, region in covered.items() if region is not None):
        block_addr = base + b * 64
        for core in range(m.config.num_cores):
            copy = m.protocol.private_block(core, block_addr)
            assert copy is None, (
                f"core {core} still caches {block_addr:#x} "
                f"({copy.state if copy else '?'}) after the sync point"
            )
    m.protocol.check_invariants()


@settings(max_examples=40, deadline=None)
@given(trace=access_strategy, region_blocks=st.sets(st.integers(0, 31)))
def test_warden_never_invalidates_or_downgrades_in_regions(trace, region_blocks):
    """While a region is active, accesses to its blocks generate no
    invalidations and no downgrades (the point of the W state)."""
    m = Machine(tiny_config(), "warden")
    base = m.sbrk(64 * 32, 64)
    regions = [
        m.add_ward_region(0, base + b * 64, base + b * 64 + 64)
        for b in sorted(region_blocks)
    ]
    st0 = m.run_stats.coherence
    before_inv, before_dg = st0.invalidations, st0.downgrades
    in_region_events = 0
    for thread, block, word, atype in trace:
        addr = base + block * 64 + word * 8
        inv0, dg0 = st0.invalidations, st0.downgrades
        m.access(thread, addr, 8, atype)
        if block in region_blocks:
            in_region_events += (st0.invalidations - inv0) + (st0.downgrades - dg0)
    assert in_region_events == 0
    for region in regions:
        m.remove_ward_region(0, region)
    m.protocol.check_invariants()


@settings(max_examples=30, deadline=None)
@given(trace=access_strategy, seed=st.integers(0, 5))
def test_warden_reconciliation_reaches_coherent_state(trace, seed):
    """After all regions are removed, the directory is back to pure MESI
    states and invariants hold — whatever happened inside the regions."""
    m = Machine(tiny_config(), "warden")
    base = m.sbrk(64 * 32, 64)
    rng = random.Random(seed)
    live = []
    for i, (thread, block, word, atype) in enumerate(trace):
        if rng.random() < 0.1:
            start = base + rng.randrange(32) * 64
            region = m.add_ward_region(0, start, start + 64 * rng.randrange(1, 4))
            if region is not None:
                live.append(region)
        if live and rng.random() < 0.08:
            m.remove_ward_region(0, live.pop(rng.randrange(len(live))))
        m.access(thread, base + block * 64 + word * 8, 8, atype)
    for region in live:
        m.remove_ward_region(0, region)
    for directory in m.protocol.dirs:
        for entry in directory.entries():
            assert entry.state is not W
    m.protocol.check_invariants()


@settings(max_examples=30, deadline=None)
@given(trace=access_strategy)
def test_warden_with_no_regions_matches_mesi_exactly(trace):
    machines = [Machine(tiny_config(), p) for p in ("mesi", "warden")]
    results = []
    for m in machines:
        base = m.sbrk(64 * 32, 64)
        lats = [
            m.access(t, base + b * 64 + w * 8, 8, a) for t, b, w, a in trace
        ]
        results.append((lats, m.run_stats.coherence.total_messages))
    assert results[0] == results[1]
