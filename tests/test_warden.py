"""WARDen protocol tests: the W state, region semantics, reconciliation."""

import pytest

from repro.common.types import AccessType, CoherenceState
from repro.sim.machine import Machine
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW
S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED
I = CoherenceState.INVALID
W = CoherenceState.WARD


@pytest.fixture
def m():
    return Machine(tiny_config(), "warden")


def priv(machine, core, addr):
    return machine.protocol.private_block(core, addr)


def entry(machine, addr):
    return machine.protocol.dir_entry(addr)


def ward_block(m, nbytes=64):
    a = m.sbrk(nbytes, 64)
    region = m.add_ward_region(0, a, a + nbytes)
    assert region is not None
    return a, region


class TestWardEntry:
    def test_first_touch_in_region_enters_w(self, m):
        a, _ = ward_block(m)
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is W
        assert entry(m, a).state is W

    def test_read_in_region_gets_effectively_exclusive_copy(self, m):
        # §5.1: GetS on a WARD block returns an exclusive copy
        a, _ = ward_block(m)
        m.access(0, a, 8, LOAD)
        assert priv(m, 0, a).state is W
        assert priv(m, 0, a).state.grants_write

    def test_block_registered_with_region(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, STORE)
        assert a in region.blocks

    def test_sharing_event_transitions_existing_owner(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, STORE)  # plain MESI M
        region = m.add_ward_region(0, a, a + 64)
        m.access(1, a, 8, STORE)  # sharing event inside the region
        e = entry(m, a)
        assert e.state is W
        assert e.sharers == {0, 1}
        assert priv(m, 0, a).state is W  # absorbed, not invalidated
        assert m.run_stats.coherence.invalidations == 0
        m.remove_ward_region(0, region)

    def test_outside_region_unaffected(self, m):
        ward_block(m)
        b = m.sbrk(64, 64)
        m.access(0, b, 8, STORE)
        assert priv(m, 0, b).state is M  # plain MESI behaviour


class TestNoCoherenceInW:
    def test_concurrent_writers_no_invalidations(self, m):
        a, _ = ward_block(m)
        for core in range(4):
            m.access(core, a + 8 * core, 8, STORE)
        st = m.run_stats.coherence
        assert st.invalidations == 0
        assert st.downgrades == 0
        for core in range(4):
            assert priv(m, core, a).state is W

    def test_reader_does_not_downgrade_writer(self, m):
        a, _ = ward_block(m)
        m.access(0, a, 8, STORE)
        m.access(1, a + 8, 8, LOAD)
        assert m.run_stats.coherence.downgrades == 0
        assert priv(m, 0, a).state is W  # untouched

    def test_ward_accesses_counted(self, m):
        a, _ = ward_block(m)
        m.access(0, a, 8, STORE)
        m.access(0, a, 8, STORE)  # private W hit
        assert m.run_stats.coherence.ward_accesses == 2

    def test_upgrade_of_s_copy_in_region(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)  # both S
        region = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)  # upgrade approved without invalidations
        assert m.run_stats.coherence.invalidations == 0
        assert priv(m, 0, a).state is W
        assert priv(m, 1, a).state is S  # other copy left alone
        m.remove_ward_region(0, region)
        m.protocol.check_invariants()


class TestReconciliation:
    def test_no_sharing_single_writer_kept_shared(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, STORE)
        m.remove_ward_region(0, region)
        blk = priv(m, 0, a)
        assert blk is not None and blk.state is S  # retained, merged at LLC
        assert blk.written_mask == 0
        e = entry(m, a)
        assert e.state is S and e.sharers == {0}
        assert m.run_stats.coherence.reconciled_blocks == 1

    def test_false_sharing_stale_copies_invalidated(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, STORE)       # core 0 writes bytes 0-7
        m.access(1, a + 8, 8, STORE)   # core 1 writes bytes 8-15
        m.remove_ward_region(0, region)
        # neither copy saw the other's sectors: both must go
        assert priv(m, 0, a) is None
        assert priv(m, 1, a) is None
        assert entry(m, a).state is I
        st = m.run_stats.coherence
        assert st.reconciled_shared_blocks == 1
        assert st.reconciled_true_sharing_blocks == 0
        assert st.writebacks == 2

    def test_true_sharing_detected(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, STORE)
        m.access(1, a, 8, STORE)  # same sector: benign WAW
        m.remove_ward_region(0, region)
        st = m.run_stats.coherence
        assert st.reconciled_true_sharing_blocks == 1

    def test_true_sharing_full_writer_retained(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, STORE)
        m.access(1, a, 8, STORE)
        # core 1 wrote the full written-sector union: it stays, S
        m.remove_ward_region(0, region)
        assert priv(m, 1, a).state is S
        assert entry(m, a).sharers == {0, 1}  # core 0 also wrote the union

    def test_clean_readers_survive_reconciliation(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        m.remove_ward_region(0, region)
        assert priv(m, 0, a).state is S
        assert priv(m, 1, a).state is S
        assert entry(m, a).state is S

    def test_reader_after_reconcile_hits_llc_without_forward(self, m):
        a, region = ward_block(m)
        m.access(0, a, 8, STORE)
        m.remove_ward_region(0, region)
        m.access(1, a, 8, LOAD)
        assert m.run_stats.coherence.downgrades == 0

    def test_overlapping_region_defers_reconcile(self, m):
        a = m.sbrk(64, 64)
        r1 = m.add_ward_region(0, a, a + 64)
        r2 = m.add_ward_region(0, a, a + 64)
        m.access(0, a, 8, STORE)
        m.remove_ward_region(0, r1)
        assert entry(m, a).state is W  # still covered by r2
        m.remove_ward_region(0, r2)
        assert entry(m, a).state is not W

    def test_remove_none_region_is_noop(self, m):
        m.remove_ward_region(0, None)

    def test_reconcile_cycles_accounted(self, m):
        a, region = ward_block(m, 256)
        for i in range(4):
            m.access(0, a + 64 * i, 8, STORE)
        m.remove_ward_region(0, region)
        expected = 4 * m.config.reconcile_cycles_per_block
        assert m.protocol.reconcile_cycles == expected


class TestEvictionDuringRegion:
    def test_ward_eviction_flushes_early(self, m):
        # §5.3: eviction before the region ends pre-pays reconciliation
        stride = m.protocol.l2[0].num_sets * 64
        ways = m.protocol.l2[0].assoc
        base = m.sbrk(stride * (ways + 2), 64)
        region = m.add_ward_region(0, base, base + stride * (ways + 2))
        for i in range(ways + 1):
            m.access(0, base + i * stride, 8, STORE)
        st = m.run_stats.coherence
        assert st.writebacks >= 1
        e = entry(m, base)
        assert 0 not in e.sharers  # dropped from the sharer list
        m.remove_ward_region(0, region)
        m.protocol.check_invariants()


class TestRegionCamLimits:
    def test_full_cam_falls_back_to_mesi(self):
        cfg = tiny_config().replace(max_ward_regions=1)
        m = Machine(cfg, "warden")
        a = m.sbrk(64, 64)
        b = m.sbrk(64, 64)
        r1 = m.add_ward_region(0, a, a + 64)
        assert r1 is not None
        r2 = m.add_ward_region(0, b, b + 64)
        assert r2 is None  # CAM full
        m.access(0, b, 8, STORE)
        m.access(1, b, 8, STORE)
        assert m.run_stats.coherence.invalidations == 1  # plain MESI


class TestLegacyEquivalence:
    def test_without_regions_warden_equals_mesi(self):
        """Legacy applications run unencumbered (§5.1): identical event
        counts and latencies when no region is ever registered."""
        import random

        rng = random.Random(7)
        cfgs = [Machine(tiny_config(), p) for p in ("mesi", "warden")]
        trace = [
            (
                rng.randrange(4),
                rng.randrange(64) * 64 + rng.randrange(8) * 8,
                rng.choice([LOAD, STORE, RMW]),
            )
            for _ in range(600)
        ]
        lats = [[], []]
        for i, machine in enumerate(cfgs):
            base = machine.sbrk(64 * 64, 64)
            for thread, off, atype in trace:
                lats[i].append(machine.access(thread, base + off, 8, atype))
        assert lats[0] == lats[1]
        a, b = (m.run_stats.coherence for m in cfgs)
        assert a.invalidations == b.invalidations
        assert a.downgrades == b.downgrades
        assert a.total_messages == b.total_messages
