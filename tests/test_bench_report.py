"""Bench report schema accessors and baseline comparison logic.

All synthetic reports — no simulation; see tests/test_epoch.py and the
perf-smoke CI job for measured-throughput coverage.
"""

from repro.analysis.bench import (
    compare_to_baseline,
    comparison_entries,
    host_meta,
)


def _row(benchmark, protocol, size, wall_s, instructions):
    return {
        "benchmark": benchmark,
        "protocol": protocol,
        "size": size,
        "wall_s": wall_s,
        "instructions": instructions,
        "steps_per_second": instructions / wall_s,
    }


def _report(rows, **extra):
    wall = sum(r["wall_s"] for r in rows)
    instrs = sum(r["instructions"] for r in rows)
    report = {
        "schema": 2,
        "suite": "full",
        "machine": "dual-socket",
        "runs": rows,
        "totals": {
            "wall_s": wall,
            "instructions": instrs,
            "steps_per_second": instrs / wall,
        },
        "meta": {"python": "3.11.0"},
    }
    report.update(extra)
    return report


class TestSchemaAccessors:
    def test_schema2_host_meta_lives_in_meta(self):
        report = _report([_row("fib", "MESI", "small", 1.0, 1000)])
        report["meta"]["host_cpus"] = 4
        assert host_meta(report)["host_cpus"] == 4

    def test_schema1_host_keys_read_from_comparisons(self):
        # schema-1 reports stashed host_cpus/note next to the real entries
        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            comparisons={
                "host_cpus": 1,
                "note": "legacy layout",
                "fig8_matrix_small": {"serial_s": 9.8},
            },
        )
        del report["meta"]
        meta = host_meta(report)
        assert meta["host_cpus"] == 1
        assert meta["note"] == "legacy layout"

    def test_meta_wins_over_legacy_keys(self):
        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            comparisons={"host_cpus": 1},
        )
        report["meta"]["host_cpus"] = 8
        assert host_meta(report)["host_cpus"] == 8

    def test_comparison_entries_filters_host_keys(self):
        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            comparisons={
                "host_cpus": 1,
                "note": "x",
                "fig8_matrix_small": {"serial_s": 9.8},
                "epoch_batched_vs_pr2": {"speedup": 1.5},
            },
        )
        entries = comparison_entries(report)
        assert set(entries) == {"fig8_matrix_small", "epoch_batched_vs_pr2"}

    def test_reports_without_comparisons(self):
        report = _report([_row("fib", "MESI", "small", 1.0, 1000)])
        assert comparison_entries(report) == {}
        assert host_meta(report) == report["meta"]


class TestCompareToBaseline:
    def test_same_suite_uses_totals(self):
        rows = [_row("fib", "MESI", "small", 1.0, 1000)]
        ok, msg = compare_to_baseline(_report(rows), _report(rows))
        assert ok
        assert "[totals]" in msg

    def test_regression_detected(self):
        fast = [_row("fib", "MESI", "small", 1.0, 1000)]
        slow = [_row("fib", "MESI", "small", 2.0, 1000)]
        ok, msg = compare_to_baseline(_report(slow), _report(fast), 0.30)
        assert not ok
        assert msg.startswith("REGRESSION")

    def test_quick_vs_full_compares_matching_rows_only(self):
        quick_rows = [_row("fib", "MESI", "small", 1.0, 1000)]
        full_rows = [
            _row("fib", "MESI", "small", 1.0, 1000),
            # an extra, much faster row that would flatter the full totals
            _row("quickhull", "MESI", "small", 0.1, 10_000),
        ]
        ok, msg = compare_to_baseline(_report(quick_rows), _report(full_rows))
        assert ok  # identical on the matched row; totals would say 0.02x
        assert "1 matching baseline rows" in msg

    def test_no_matching_rows_falls_back_to_totals(self):
        quick = [_row("fib", "MESI", "small", 1.0, 1000)]
        other = [_row("grep", "WARDen", "test", 1.0, 1000)]
        ok, msg = compare_to_baseline(_report(quick), _report(other))
        assert ok
        assert "[totals]" in msg

    def test_empty_baseline_skips(self):
        report = _report([_row("fib", "MESI", "small", 1.0, 1000)])
        baseline = {"totals": {"steps_per_second": 0}, "runs": []}
        ok, msg = compare_to_baseline(report, baseline)
        assert ok
        assert "skipping" in msg
