"""Bench report schema accessors and baseline comparison logic.

All synthetic reports — no simulation; see tests/test_epoch.py and the
perf-smoke CI job for measured-throughput coverage.
"""

from repro.analysis.bench import (
    compare_to_baseline,
    comparison_entries,
    host_meta,
)


def _row(benchmark, protocol, size, wall_s, instructions):
    return {
        "benchmark": benchmark,
        "protocol": protocol,
        "size": size,
        "wall_s": wall_s,
        "instructions": instructions,
        "steps_per_second": instructions / wall_s,
    }


def _report(rows, **extra):
    wall = sum(r["wall_s"] for r in rows)
    instrs = sum(r["instructions"] for r in rows)
    report = {
        "schema": 2,
        "suite": "full",
        "machine": "dual-socket",
        "runs": rows,
        "totals": {
            "wall_s": wall,
            "instructions": instrs,
            "steps_per_second": instrs / wall,
        },
        "meta": {"python": "3.11.0"},
    }
    report.update(extra)
    return report


class TestSchemaAccessors:
    def test_schema2_host_meta_lives_in_meta(self):
        report = _report([_row("fib", "MESI", "small", 1.0, 1000)])
        report["meta"]["host_cpus"] = 4
        assert host_meta(report)["host_cpus"] == 4

    def test_schema1_host_keys_read_from_comparisons(self):
        # schema-1 reports stashed host_cpus/note next to the real entries
        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            comparisons={
                "host_cpus": 1,
                "note": "legacy layout",
                "fig8_matrix_small": {"serial_s": 9.8},
            },
        )
        del report["meta"]
        meta = host_meta(report)
        assert meta["host_cpus"] == 1
        assert meta["note"] == "legacy layout"

    def test_meta_wins_over_legacy_keys(self):
        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            comparisons={"host_cpus": 1},
        )
        report["meta"]["host_cpus"] = 8
        assert host_meta(report)["host_cpus"] == 8

    def test_comparison_entries_filters_host_keys(self):
        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            comparisons={
                "host_cpus": 1,
                "note": "x",
                "fig8_matrix_small": {"serial_s": 9.8},
                "epoch_batched_vs_pr2": {"speedup": 1.5},
            },
        )
        entries = comparison_entries(report)
        assert set(entries) == {"fig8_matrix_small", "epoch_batched_vs_pr2"}

    def test_reports_without_comparisons(self):
        report = _report([_row("fib", "MESI", "small", 1.0, 1000)])
        assert comparison_entries(report) == {}
        assert host_meta(report) == report["meta"]


class TestCompareToBaseline:
    def test_same_suite_uses_totals(self):
        rows = [_row("fib", "MESI", "small", 1.0, 1000)]
        ok, msg = compare_to_baseline(_report(rows), _report(rows))
        assert ok
        assert "[totals]" in msg

    def test_regression_detected(self):
        fast = [_row("fib", "MESI", "small", 1.0, 1000)]
        slow = [_row("fib", "MESI", "small", 2.0, 1000)]
        ok, msg = compare_to_baseline(_report(slow), _report(fast), 0.30)
        assert not ok
        assert msg.startswith("REGRESSION")

    def test_quick_vs_full_compares_matching_rows_only(self):
        quick_rows = [_row("fib", "MESI", "small", 1.0, 1000)]
        full_rows = [
            _row("fib", "MESI", "small", 1.0, 1000),
            # an extra, much faster row that would flatter the full totals
            _row("quickhull", "MESI", "small", 0.1, 10_000),
        ]
        ok, msg = compare_to_baseline(_report(quick_rows), _report(full_rows))
        assert ok  # identical on the matched row; totals would say 0.02x
        assert "1 matching baseline rows" in msg

    def test_no_matching_rows_falls_back_to_totals(self):
        quick = [_row("fib", "MESI", "small", 1.0, 1000)]
        other = [_row("grep", "WARDen", "test", 1.0, 1000)]
        ok, msg = compare_to_baseline(_report(quick), _report(other))
        assert ok
        assert "[totals]" in msg

    def test_empty_baseline_skips(self):
        report = _report([_row("fib", "MESI", "small", 1.0, 1000)])
        baseline = {"totals": {"steps_per_second": 0}, "runs": []}
        ok, msg = compare_to_baseline(report, baseline)
        assert ok
        assert "skipping" in msg


class TestFindDefaultBaseline:
    @staticmethod
    def _write(tmp_path, name, stamp, mode=None):
        import json

        report = _report(
            [_row("fib", "MESI", "small", 1.0, 1000)],
            meta={"python": "3.11.0", "timestamp": stamp},
        )
        if mode is not None:
            report["mode"] = mode
        (tmp_path / name).write_text(json.dumps(report))
        return report

    def test_picks_newest_by_timestamp(self, tmp_path):
        from repro.analysis.bench import find_default_baseline

        self._write(tmp_path, "BENCH_old.json", "2026-01-01T00:00:00Z")
        self._write(tmp_path, "BENCH_new.json", "2026-06-01T00:00:00Z")
        path, report = find_default_baseline(tmp_path)
        assert path is not None and path.name == "BENCH_new.json"
        assert report["meta"]["timestamp"] == "2026-06-01T00:00:00Z"

    def test_filters_by_mode_and_excludes_out_path(self, tmp_path):
        from repro.analysis.bench import find_default_baseline

        self._write(tmp_path, "BENCH_sim.json", "2026-01-01T00:00:00Z")
        self._write(
            tmp_path, "BENCH_replay.json", "2026-06-01T00:00:00Z",
            mode="replay",
        )
        path, _ = find_default_baseline(tmp_path, mode="sim")
        assert path.name == "BENCH_sim.json"  # replay report is newer but skipped
        path, _ = find_default_baseline(tmp_path, mode="replay")
        assert path.name == "BENCH_replay.json"
        # the report being written never compares against itself
        path, report = find_default_baseline(
            tmp_path, mode="replay", exclude=tmp_path / "BENCH_replay.json"
        )
        assert path is None and report is None

    def test_empty_directory(self, tmp_path):
        from repro.analysis.bench import find_default_baseline

        assert find_default_baseline(tmp_path) == (None, None)


def test_replay_mode_suite_is_bit_identical_and_tagged(tmp_path, monkeypatch):
    """End-to-end: a replay-mode bench run produces the same simulated work
    (instructions/cycles) as the sim-mode rows it mirrors, and tags itself."""
    from repro.analysis.bench import render_report, run_bench_suite
    from repro.analysis.pool import DEFAULT_CACHE_DIR
    from repro.common.config import dual_socket
    import repro.analysis.bench as bench_mod

    # point the trace store at tmp (keep the repo cache dir clean)
    from repro.replay import TraceStore

    orig = TraceStore.__init__

    def patched(self, root=None):
        orig(self, root if root is not None else tmp_path)

    monkeypatch.setattr(TraceStore, "__init__", patched)
    monkeypatch.setattr(bench_mod, "QUICK_SUITE", [("fib", "test")])
    sim = run_bench_suite(quick=True, mode="sim")
    replay = run_bench_suite(quick=True, mode="replay")
    assert replay["mode"] == "replay" and sim["mode"] == "sim"
    assert "[replay]" in render_report(replay)
    for sim_row, replay_row in zip(sim["runs"], replay["runs"]):
        assert sim_row["instructions"] == replay_row["instructions"]
        assert sim_row["cycles"] == replay_row["cycles"]
