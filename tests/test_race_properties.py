"""Property tests for the vector-clock race-detector core.

Seeded-fuzz style (see ``test_protocol_fuzz.py``): seeds come from
``REPRO_FUZZ_SEEDS`` (default ``1,2,3``) and every failure prints the exact
replay command.  Properties checked over random fork/join trees:

* **fork monotonicity** — each child clock dominates the parent clock at
  the fork, with a fresh component of exactly 1 for the child itself;
* **join monotonicity** — the parent clock after a join dominates every
  joined child's final clock;
* **HB transitivity** — on sampled access epochs, a ≺ b and b ≺ c imply
  a ≺ c;
* **race symmetry** — for concurrent access pairs, the per-address verdict
  (race / benign WAW / atomic / clean) does not depend on the order the
  detector observes the two accesses in;
* **join erases races** — the parent touching every address after all
  children joined adds no findings.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.types import AccessType
from repro.hlpl.task import TaskNode
from repro.verify.race import RaceDetector, happens_before, vc_join

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW


def fuzz_seeds():
    text = os.environ.get("REPRO_FUZZ_SEEDS", "1,2,3")
    return tuple(int(s) for s in text.replace(" ", "").split(",") if s)


SEEDS = fuzz_seeds()


def replay_hint(test_id: str, seed: int) -> str:
    return (
        f"fuzz failure (seed {seed}); replay with:\n"
        f"  REPRO_FUZZ_SEEDS={seed} PYTHONPATH=src python -m pytest "
        f"'tests/test_race_properties.py::{test_id}' -q"
    )


def run_replayable(test_id: str, seed: int, body) -> None:
    try:
        body()
    except Exception as exc:  # noqa: BLE001 - reframe every fuzz failure
        raise AssertionError(f"{replay_hint(test_id, seed)}\n{exc!r}") from exc


def _dominates(big, small) -> bool:
    return all(big.get(t, 0) >= c for t, c in small.items())


# ----------------------------------------------------------------------
# 1. Clock-structure properties over random trees
# ----------------------------------------------------------------------

def _random_tree_check(rng: random.Random) -> None:
    """Build a random fork/join tree, asserting the clock laws at every
    structural step and collecting epochs for the transitivity check."""
    det = RaceDetector(raise_on_race=False)
    root = TaskNode(None)
    det.on_root(root)
    samples = []  # (task_id, own_clock, vc_copy) observation points

    def sample(task):
        vc = det.clock_of(task)
        samples.append((task.task_id, vc[task.task_id], vc))

    def grow(task, depth):
        sample(task)
        forks = rng.randint(0, 2) if depth < 3 else 0
        for _ in range(forks):
            parent_vc = det.clock_of(task)
            children = [TaskNode(task) for _ in range(rng.randint(2, 3))]
            det.on_fork(task, children)
            for child in children:
                child_vc = det.clock_of(child)
                assert _dominates(child_vc, parent_vc), "fork monotonicity"
                assert child_vc[child.task_id] == 1, "fresh child component"
            assert det.clock_of(task)[task.task_id] == (
                parent_vc[task.task_id] + 1
            ), "parent component advances at fork"
            for child in children:
                grow(child, depth + 1)
            child_vcs = [det.clock_of(c) for c in children]
            det.on_join(task, children)
            joined = det.clock_of(task)
            for cvc in child_vcs:
                assert _dominates(joined, cvc), "join monotonicity"
            sample(task)

    grow(root, 0)

    # HB transitivity over sampled epochs: a ≺ b iff b's clock covers a.
    def hb(a, b):
        return happens_before((a[1], a[0]), b[2])

    for _ in range(300):
        a, b, c = (rng.choice(samples) for _ in range(3))
        if hb(a, b) and hb(b, c):
            assert hb(a, c), f"transitivity broken: {a} {b} {c}"


@pytest.mark.parametrize("seed", SEEDS)
def test_fork_join_monotonicity_and_transitivity(seed):
    rng = random.Random(seed)
    run_replayable(
        f"test_fork_join_monotonicity_and_transitivity[{seed}]",
        seed,
        lambda: [_random_tree_check(rng) for _ in range(5)],
    )


def test_vc_join_is_least_upper_bound():
    rng = random.Random(7)
    for _ in range(100):
        a = {rng.randint(0, 9): rng.randint(1, 9) for _ in range(rng.randint(0, 5))}
        b = {rng.randint(0, 9): rng.randint(1, 9) for _ in range(rng.randint(0, 5))}
        j = vc_join(dict(a), b)
        assert _dominates(j, a) and _dominates(j, b)
        assert all(j[t] == max(a.get(t, 0), b.get(t, 0)) for t in j)
        assert vc_join(dict(j), b) == j  # absorbing


# ----------------------------------------------------------------------
# 2. Race symmetry over random concurrent access pairs
# ----------------------------------------------------------------------

def _verdicts(det: RaceDetector):
    return (
        {f.addr for f in det.races},
        {f.addr for f in det.benign_waws},
        det.atomic_updates,
    )


def _expected(addr_ops, in_region) -> str:
    (a1, a2) = addr_ops
    if a1 is LOAD and a2 is LOAD:
        return "clean"
    if a1 is RMW and a2 is RMW:
        return "atomic"
    if LOAD in (a1, a2):
        return "race"
    return "benign" if in_region else "race"


def _run_script(script, region_span):
    det = RaceDetector(raise_on_race=False)
    root = TaskNode(None)
    det.on_root(root)
    children = [TaskNode(root) for _ in range(4)]
    det.on_fork(root, children)
    det.region_begin(*region_span)
    for child_index, thread, addr, atype in script:
        det.on_access(children[child_index], thread, addr, 8, atype)
    # Join erases concurrency: parent touches everything afterwards.
    det.on_join(root, children)
    pre = _verdicts(det)
    for _, _, addr, _ in script:
        det.on_access(root, 0, addr, 8, LOAD)
        det.on_access(root, 0, addr, 8, STORE)
    assert _verdicts(det) == pre, "post-join parent accesses raced"
    return pre


def _symmetry_check(rng: random.Random) -> None:
    region_span = (0, 1024)
    pairs = []
    for i in range(rng.randint(2, 8)):
        in_region = rng.random() < 0.5
        addr = (8 * i) if in_region else (4096 + 8 * i)
        c1, c2 = rng.sample(range(4), 2)
        ops = (rng.choice((LOAD, STORE, RMW)), rng.choice((LOAD, STORE, RMW)))
        pairs.append((addr, in_region, (c1, c2), ops))

    forward, backward = [], []
    for addr, _, (c1, c2), (op1, op2) in pairs:
        forward.append((c1, c1, addr, op1))
        forward.append((c2, c2, addr, op2))
        backward.append((c2, c2, addr, op2))
        backward.append((c1, c1, addr, op1))
    rng.shuffle(forward)

    fwd = _run_script(forward, region_span)
    bwd = _run_script(backward, region_span)
    assert fwd[0] == bwd[0], "raced addresses differ by observation order"
    assert fwd[1] == bwd[1], "benign addresses differ by observation order"
    assert fwd[2] == bwd[2], "atomic counts differ by observation order"

    raced, benign, atomic = fwd
    for addr, in_region, _, ops in pairs:
        want = _expected(ops, in_region)
        if want == "race":
            assert addr in raced, f"expected race at {addr:#x} ({ops})"
        elif want == "benign":
            assert addr in benign and addr not in raced
        elif want == "clean":
            assert addr not in raced and addr not in benign
    assert atomic == sum(
        1 for _, _, _, ops in pairs if _expected(ops, False) == "atomic"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_race_symmetry(seed):
    rng = random.Random(seed * 1000 + 1)
    run_replayable(
        f"test_race_symmetry[{seed}]",
        seed,
        lambda: [_symmetry_check(rng) for _ in range(10)],
    )
