"""Workload front-end integration: CLI exit codes, registry plumbing,
fingerprints, and the unregistered-protocol replay fix (satellite 4).
"""

import json

import pytest

import repro.cli as cli
from repro.analysis.pool import RunTask, task_fingerprint
from repro.analysis.run import set_disk_cache
from repro.cli import build_parser, main
from repro.coherence.registry import available_protocols, protocol_class
from repro.common.config import dual_socket
from repro.common.errors import ConfigError, ReproError, UnknownProtocolError
from repro.replay import record_benchmark, replay_trace
from repro.replay.kernel import ReplayKernel
from repro.replay.trace import Trace
from repro.workloads import make_trace


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Keep CLI invocations from writing .warden-cache/ into the repo."""
    monkeypatch.setattr(cli, "DEFAULT_CACHE_DIR", str(tmp_path / "cache"))
    yield
    set_disk_cache(None)


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "workload.trace"
    path.write_text(make_trace("rwmix", seed=5, ops_per_thread=25).to_text())
    return str(path)


# ----------------------------------------------------------------------
# ingest / synth subcommands
# ----------------------------------------------------------------------

class TestIngestSynthCLI:
    def test_ingest_summary(self, trace_file, capsys):
        assert main(["ingest", trace_file]) == 0
        out = capsys.readouterr().out
        assert "ops" in out and "threads" in out and "checksum" in out

    def test_ingest_run_single_protocol(self, trace_file, capsys):
        assert main(["ingest", trace_file, "--run", "--protocol", "sisd"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_ingest_matrix_bit_identity(self, trace_file, capsys):
        assert main(["ingest", trace_file, "--matrix"]) == 0
        out = capsys.readouterr().out
        for protocol in available_protocols():
            assert protocol in out
        assert "DIVERGED" not in out

    def test_ingest_malformed_exits_2_with_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("0 R 0x40\n1 FROB 0x80\n")
        assert main(["ingest", str(bad)]) == 2
        err = capsys.readouterr().err
        assert f"{bad}:2:" in err and "unknown op" in err
        assert "Traceback" not in err

    def test_ingest_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["ingest", str(tmp_path / "nope.trace")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_synth_writes_parseable_trace(self, tmp_path, capsys):
        out_path = tmp_path / "z.trace"
        assert main([
            "synth", "zipf", "--seed", "9", "--ops", "30",
            "--set", "skew=2.0", "--set", "threads=4",
            "--out", str(out_path),
        ]) == 0
        assert main(["ingest", str(out_path)]) == 0
        assert "threads   : 4" in capsys.readouterr().out

    def test_synth_stdout(self, capsys):
        assert main(["synth", "ring", "--ops", "8", "--out", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("#") and " A 0x" in out

    def test_synth_is_seed_deterministic(self, tmp_path):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        for path in (a, b):
            assert main(["synth", "phase", "--seed", "3", "--ops", "20",
                         "--out", str(path)]) == 0
        assert a.read_text() == b.read_text()

    def test_synth_bad_knob_exits_2(self, tmp_path, capsys):
        assert main(["synth", "zipf", "--set", "bogus=1",
                     "--out", str(tmp_path / "x.trace")]) == 2
        assert "bad knob" in capsys.readouterr().err

    def test_synth_malformed_set_exits_2(self, tmp_path, capsys):
        assert main(["synth", "zipf", "--set", "skew",
                     "--out", str(tmp_path / "x.trace")]) == 2
        assert "name=value" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --workload plumbing on run / bench / verify
# ----------------------------------------------------------------------

class TestWorkloadPlumbing:
    def test_run_workload_synth(self, capsys):
        assert main(["run", "--workload", "synth-falseshare",
                     "--size", "test", "--protocol", "mesi",
                     "--no-disk-cache"]) == 0
        assert "synth-falseshare" in capsys.readouterr().out

    def test_run_workload_trace(self, trace_file, capsys):
        assert main(["run", "--workload", f"trace:{trace_file}",
                     "--size", "test", "--no-disk-cache"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_run_positional_synth_name(self, capsys):
        assert main(["run", "synth-ring", "--size", "test",
                     "--protocol", "sisd", "--no-disk-cache"]) == 0
        assert "synth-ring" in capsys.readouterr().out

    def test_run_unknown_name_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "synth-bogus"])

    def test_run_conflicting_names_exit_2(self, trace_file, capsys):
        assert main(["run", "fib", "--workload", f"trace:{trace_file}",
                     "--no-disk-cache"]) == 2
        assert "pass one" in capsys.readouterr().err

    def test_run_no_name_exits_2(self, capsys):
        assert main(["run", "--no-disk-cache"]) == 2
        assert "no workload" in capsys.readouterr().err

    def test_run_missing_trace_file_exits_2(self, tmp_path, capsys):
        assert main(["run", "--workload", f"trace:{tmp_path}/gone.trace",
                     "--no-disk-cache"]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "Traceback" not in err

    def test_verify_workload(self, capsys):
        assert main(["verify", "--workload", "synth-rwmix",
                     "--no-disk-cache"]) == 0
        assert "conform" in capsys.readouterr().out

    def test_verify_json_includes_workload(self, trace_file, capsys):
        assert main(["verify", "--workload", f"trace:{trace_file}",
                     "--json", "--no-disk-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["benchmark"] == f"trace:{trace_file}"

    def test_bench_parser_accepts_workloads(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--workload", "synth-zipf",
             "--workload", "synth-ring"]
        )
        assert args.workload == ["synth-zipf", "synth-ring"]

    def test_bench_suite_times_extra_workload_rows(self, monkeypatch):
        from repro.analysis import bench as bench_mod

        monkeypatch.setattr(bench_mod, "QUICK_SUITE", [])
        report = bench_mod.run_bench_suite(
            quick=True, extra_rows=[("synth-falseshare", "test")]
        )
        rows = report["runs"]
        assert {row["benchmark"] for row in rows} == {"synth-falseshare"}
        assert {row["protocol"] for row in rows} == {"MESI", "WARDen"}


# ----------------------------------------------------------------------
# Fingerprints: trace files are content-addressed, not path-addressed
# ----------------------------------------------------------------------

class TestTraceFingerprints:
    def test_fingerprint_tracks_file_content(self, tmp_path):
        path = tmp_path / "fp.trace"
        config = dual_socket()

        def fp():
            return task_fingerprint(RunTask(
                benchmark=f"trace:{path}", protocol="mesi", config=config,
                size="test", seed=42,
            ), code="pinned")

        path.write_text("0 R 0x0\n")
        first = fp()
        assert fp() == first  # stable for identical content
        path.write_text("0 W 0x0\n")
        assert fp() != first  # edited file invalidates the key

    def test_missing_file_fingerprint_is_sentinel(self, tmp_path):
        config = dual_socket()
        fp = task_fingerprint(RunTask(
            benchmark=f"trace:{tmp_path}/void.trace", protocol="mesi",
            config=config, size="test", seed=42,
        ), code="pinned")
        assert isinstance(fp, str) and fp


# ----------------------------------------------------------------------
# Satellite 4: unregistered protocol keys exit 2, never KeyError
# ----------------------------------------------------------------------

class TestUnknownProtocol:
    def test_registry_error_type(self):
        with pytest.raises(UnknownProtocolError) as excinfo:
            protocol_class("dragon")
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert isinstance(err, KeyError)  # legacy guards keep working
        assert err.known == sorted(available_protocols())
        for key in available_protocols():
            assert key in str(err)

    def test_kernel_rejects_doctored_meta(self):
        trace, _ = record_benchmark(
            "synth-ring", "mesi", dual_socket(), size="test", seed=42
        )
        trace.meta["protocol"] = "dragon"
        with pytest.raises(UnknownProtocolError, match="dragon"):
            ReplayKernel(trace)
        # round-tripping through the on-disk format changes nothing
        revived = Trace.from_bytes(trace.to_bytes())
        with pytest.raises(UnknownProtocolError):
            replay_trace(revived)

    def test_replay_trace_cli_exits_2_listing_protocols(
        self, tmp_path, capsys
    ):
        trace, _ = record_benchmark(
            "synth-ring", "mesi", dual_socket(), size="test", seed=42
        )
        trace.meta["protocol"] = "dragon"
        path = tmp_path / "doctored.wtrace"
        path.write_bytes(trace.to_bytes())
        assert main(["replay", "--trace", str(path)]) == 2
        err = capsys.readouterr().err
        assert "dragon" in err
        for key in available_protocols():
            assert key in err
        assert "Traceback" not in err and "KeyError" not in err

    def test_replay_trace_cli_roundtrip_ok(self, tmp_path, capsys):
        trace, recorded = record_benchmark(
            "synth-ring", "warden", dual_socket(), size="test", seed=42
        )
        path = tmp_path / "good.wtrace"
        path.write_bytes(trace.to_bytes())
        assert main(["replay", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"cycles    : {recorded.stats.cycles}" in out

    def test_replay_garbage_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.wtrace"
        path.write_bytes(b"not a trace at all")
        assert main(["replay", "--trace", str(path)]) == 2
        assert "not a valid .wtrace" in capsys.readouterr().err

    def test_replay_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["replay", "--trace", str(tmp_path / "gone.wtrace")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_replay_no_args_exits_2(self, capsys):
        assert main(["replay"]) == 2
        assert "no workload" in capsys.readouterr().err

    def test_machine_still_raises_config_error(self):
        from repro.sim.machine import Machine

        with pytest.raises(ConfigError):
            Machine(dual_socket(), "dragon")
