"""Value-level WARD semantics tests: any reconciliation merge order is
correct for WARD-compliant programs (§5.2)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.coherence_checker import ReconciliationModel, WardMemoryModel


class TestReconciliationModel:
    def test_false_sharing_merges_exactly(self):
        model = ReconciliationModel(8, initial=[0] * 8)
        copies = [
            ([1, 1, 0, 0, 0, 0, 0, 0], 0b00000011),
            ([0, 0, 2, 2, 0, 0, 0, 0], 0b00001100),
        ]
        merged = model.merge(copies)
        assert merged == [1, 1, 2, 2, 0, 0, 0, 0]

    def test_unwritten_sectors_keep_home_values(self):
        model = ReconciliationModel(4, initial=[9, 9, 9, 9])
        merged = model.merge([([5, 0, 0, 0], 0b0001)])
        assert merged == [5, 9, 9, 9]

    def test_false_sharing_is_order_independent(self):
        copies = [
            ([1, 0, 0, 0], 0b0001),
            ([0, 2, 0, 0], 0b0010),
            ([0, 0, 3, 0], 0b0100),
        ]
        outcomes = set()
        for perm in itertools.permutations(copies):
            model = ReconciliationModel(4)
            outcomes.add(tuple(model.merge(perm)))
        assert outcomes == {(1, 2, 3, 0)}

    def test_apathetic_waw_same_value_order_independent(self):
        # prime-sieve style: every writer stores the same value
        copies = [([7, 0], 0b01), ([7, 0], 0b01)]
        outcomes = {
            tuple(ReconciliationModel(2).merge(perm))
            for perm in itertools.permutations(copies)
        }
        assert outcomes == {(7, 0)}

    def test_true_sharing_different_values_order_dependent(self):
        # non-apathetic WAW: the hardware may pick either — exactly why the
        # WARD definition requires apathy (§3.1 condition 2)
        copies = [([1], 0b1), ([2], 0b1)]
        outcomes = {
            tuple(ReconciliationModel(1).merge(perm))
            for perm in itertools.permutations(copies)
        }
        assert outcomes == {(1,), (2,)}

    def test_false_sharing_classifier(self):
        disjoint = [([0], 0b01), ([0], 0b10)]
        overlap = [([0], 0b01), ([0], 0b01)]
        assert ReconciliationModel.is_false_sharing(disjoint)
        assert not ReconciliationModel.is_false_sharing(overlap)

    def test_wrong_sector_count_rejected(self):
        with pytest.raises(ValueError):
            ReconciliationModel(2, initial=[0])
        with pytest.raises(ValueError):
            ReconciliationModel(2).merge([([0], 0b1)])


class TestWardMemoryModel:
    def test_sequential_consistency_outside_regions(self):
        m = WardMemoryModel()
        m.store(0, 100, "x")
        assert m.load(1, 100) == "x"

    def test_incoherent_views_inside_region(self):
        m = WardMemoryModel()
        m.store(0, 100, "old")
        m.begin_region(64, 256)
        m.store(0, 100, "new")
        assert m.load(0, 100) == "new"   # own write visible
        assert m.load(1, 100) == "old"   # other thread: stale (allowed!)
        m.end_region()
        assert m.load(1, 100) == "new"

    def test_first_touch_seeds_from_global(self):
        m = WardMemoryModel()
        m.store(0, 100, 5)
        m.begin_region(0, 256)
        assert m.load(2, 100) == 5

    def test_one_region_at_a_time(self):
        m = WardMemoryModel()
        m.begin_region(0, 64)
        with pytest.raises(RuntimeError):
            m.begin_region(64, 128)

    def test_merge_order_must_be_permutation(self):
        m = WardMemoryModel()
        m.begin_region(0, 64)
        m.store(0, 8, 1)
        with pytest.raises(ValueError):
            m.end_region(merge_order=[0, 1])


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 15)),  # (thread, slot)
        min_size=1,
        max_size=30,
    ),
    order_seed=st.randoms(use_true_random=False),
)
def test_ward_compliant_program_is_merge_order_independent(writes, order_seed):
    """Property: if each slot is written by at most one thread (no
    cross-thread WAW) and nobody reads others' writes, the final memory is
    the same for every merge order — the heart of the WARD guarantee."""
    # assign each slot to exactly one owning thread to satisfy WARD
    slot_owner = {}
    ward_writes = []
    for thread, slot in writes:
        owner = slot_owner.setdefault(slot, thread)
        ward_writes.append((owner, slot))

    def run(order):
        m = WardMemoryModel()
        m.begin_region(0, 16 * 8)
        for seq, (thread, slot) in enumerate(ward_writes):
            m.store(thread, slot * 8, (thread, slot, seq))
        threads = sorted({t for t, _ in ward_writes})
        order_list = list(threads)
        order_seed.shuffle(order_list) if order == "shuffled" else None
        m.end_region(merge_order=order_list)
        return dict(m.memory)

    assert run("sorted") == run("shuffled")
