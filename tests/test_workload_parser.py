"""Trace-parser fuzz + property tests (workload front end, satellite 1).

Covers: canonical round-trip on generated corpora, spelling/radix
tolerance, malformed/truncated/mixed-radix rejection with file:line
diagnostics (CLI exit 2, never a traceback), and engine-vs-replay
bit-identity on ingested traces under all four registered protocols.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conformance import stats_digest
from repro.analysis.run import run_benchmark
from repro.coherence.registry import available_protocols
from repro.common.config import dual_socket
from repro.replay import record_benchmark, replay_trace
from repro.workloads import (
    MemTrace,
    TraceFormatError,
    load_trace_file,
    parse_trace_text,
)
from repro.workloads.memtrace import (
    K_LOAD,
    K_RMW,
    K_STORE,
    MAX_ACCESS_SIZE,
    MAX_TRACE_THREADS,
)

# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=31),            # thread
        st.sampled_from([K_LOAD, K_STORE, K_RMW]),         # kind
        st.integers(min_value=0, max_value=1 << 40),       # addr
        st.integers(min_value=1, max_value=MAX_ACCESS_SIZE),  # size
    ),
    min_size=1,
    max_size=200,
)


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_to_text_parse_round_trip(ops):
    trace = MemTrace(list(ops))
    parsed = parse_trace_text(trace.to_text(), source="round-trip")
    assert parsed == trace
    assert parsed.checksum() == trace.checksum()


@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_parse_is_spelling_insensitive(ops, seed):
    """Alternate op mnemonics, radix, prefixes, comments and whitespace
    all decode to the same logical trace."""
    rng = random.Random(seed)
    spellings = {
        K_LOAD: ["R", "r", "L", "ld", "READ", "load", "rd"],
        K_STORE: ["W", "w", "S", "st", "WRITE", "store", "wr"],
        K_RMW: ["A", "a", "RMW", "rmw", "ATOMIC"],
    }
    lines = ["# header comment", ""]
    for thread, kind, addr, size in ops:
        prefix = rng.choice(["", "p", "t", "c", "P", "T", "C"])
        op = rng.choice(spellings[kind])
        addr_text = f"{addr:#x}" if rng.random() < 0.5 else str(addr)
        comment = rng.choice(["", "  # note", "  // note"])
        pad = " " * rng.randint(1, 3)
        lines.append(
            f"{prefix}{thread}{pad}{op}{pad}{addr_text} {size}{comment}"
        )
    parsed = parse_trace_text("\n".join(lines), source="spellings")
    assert parsed == MemTrace(list(ops))


def test_default_size_is_eight():
    trace = parse_trace_text("0 R 0x40\n")
    assert trace.ops == [(0, K_LOAD, 0x40, 8)]


def test_thread_grouping_preserves_program_order():
    text = "0 R 0x0\n1 W 0x40\n0 W 0x80\n1 R 0x40\n"
    trace = parse_trace_text(text)
    assert trace.threads() == [0, 1]
    assert trace.by_thread()[0] == [(K_LOAD, 0x0, 8), (K_STORE, 0x80, 8)]
    assert trace.by_thread()[1] == [(K_STORE, 0x40, 8), (K_LOAD, 0x40, 8)]


def test_checksum_is_thread_order_independent():
    a = parse_trace_text("0 R 0x0\n1 W 0x40\n")
    b = parse_trace_text("1 W 0x40\n0 R 0x0\n")
    assert a.checksum() == b.checksum()
    c = parse_trace_text("0 W 0x40\n1 R 0x0\n")  # kinds swapped
    assert a.checksum() != c.checksum()


# ----------------------------------------------------------------------
# Rejection diagnostics: file:line, one exception type, never a traceback
# ----------------------------------------------------------------------

REJECTED = [
    ("0 R\n", 1, "expected 'thread op address"),           # truncated line
    ("0 R 0x40 8 extra\n", 1, "expected 'thread op"),      # too many fields
    ("0 R 0x40\nx R 0x40\n", 2, "thread id"),              # bad thread
    ("0 R 0x40\n-1 R 0x40\n", 2, "thread id"),             # negative thread
    ("0 X 0x40\n", 1, "unknown op"),                       # unknown op
    ("0 R 0xZZ\n", 1, "malformed hex"),                    # bad hex digits
    ("0 R 0x\n", 1, "malformed hex"),                      # bare 0x
    ("0 R 12ab\n", 1, "mixed-radix"),                      # decimal w/ hex digits
    ("0 R deadbeef\n", 1, "mixed-radix"),                  # unprefixed hex
    ("0 R 0x40 0\n", 1, "size 0 outside"),                 # zero size
    (f"0 R 0x40 {MAX_ACCESS_SIZE + 1}\n", 1, "outside"),   # oversized
    ("0 R 0x40 4.5\n", 1, "malformed size"),               # non-integer size
    ("", 1, "no memory operations"),                       # empty file
    ("# only comments\n\n", 2, "no memory operations"),    # comment-only
]


@pytest.mark.parametrize("text,lineno,fragment", REJECTED)
def test_malformed_lines_rejected_with_location(text, lineno, fragment):
    with pytest.raises(TraceFormatError) as excinfo:
        parse_trace_text(text, source="bad.trace")
    err = excinfo.value
    assert err.source == "bad.trace"
    assert err.lineno == lineno
    assert fragment in err.reason
    assert str(err).startswith(f"bad.trace:{lineno}: ")


def test_too_many_threads_rejected():
    text = "".join(f"{t} R 0x0\n" for t in range(MAX_TRACE_THREADS + 1))
    with pytest.raises(TraceFormatError) as excinfo:
        parse_trace_text(text)
    assert "distinct thread ids" in excinfo.value.reason


def test_unreadable_and_binary_files_rejected(tmp_path):
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace_file(str(tmp_path / "missing.trace"))
    assert excinfo.value.lineno == 0
    assert "cannot read" in excinfo.value.reason

    binary = tmp_path / "blob.trace"
    binary.write_bytes(b"\x00\xff\xfe binary junk \x80")
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace_file(str(binary))
    assert "not a text trace" in excinfo.value.reason


@given(junk=st.text(max_size=120))
@settings(max_examples=60, deadline=None)
def test_fuzzed_text_never_escapes_trace_format_error(junk):
    """Arbitrary text either parses or raises TraceFormatError — nothing
    else (the CLI maps that single type to exit 2)."""
    try:
        trace = parse_trace_text(junk, source="fuzz")
        assert len(trace) >= 1
    except TraceFormatError as exc:
        assert exc.source == "fuzz"
        assert exc.lineno >= 1


# ----------------------------------------------------------------------
# Engine-vs-replay bit-identity on ingested traces (the acceptance bar)
# ----------------------------------------------------------------------

INGEST_TEXT = """\
# mixed-spelling external trace exercising sharing, rmw, and block splits
p0 LOAD 0x0
p1 W 0x0 4
0 R 0x3c 16        # crosses a 64B block boundary
1 rmw 0x80
t2 store 192 8
2 READ 0x0
c3 A 0xc0
3 ld 0x100 64
0 wr 0x100 8
"""


@pytest.fixture(scope="module")
def ingested_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("ingest") / "external.trace"
    path.write_text(INGEST_TEXT)
    return str(path)


@pytest.mark.parametrize("protocol", sorted(available_protocols()))
def test_engine_vs_replay_bit_identity_on_ingested_trace(
    ingested_trace_path, protocol
):
    name = f"trace:{ingested_trace_path}"
    config = dual_socket()
    engine = run_benchmark(
        name, protocol, config, size="test", seed=42,
        use_cache=False, use_disk_cache=False,
    )
    trace, recorded = record_benchmark(
        name, protocol, config, size="test", seed=42
    )
    replayed = replay_trace(trace, config)
    assert stats_digest(engine.stats) == stats_digest(recorded.stats)
    assert stats_digest(engine.stats) == stats_digest(replayed.stats)
    # and the simulated result equals the host-side checksum
    expected = load_trace_file(ingested_trace_path).checksum()
    assert engine.result == expected


def test_ingested_result_is_protocol_independent(ingested_trace_path):
    name = f"trace:{ingested_trace_path}"
    config = dual_socket()
    results = {
        protocol: run_benchmark(
            name, protocol, config, size="test", seed=42,
            use_cache=False, use_disk_cache=False,
        ).result
        for protocol in available_protocols()
    }
    assert len(set(results.values())) == 1
