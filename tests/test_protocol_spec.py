"""Static checking of the protocol tables (the protocol-lint satellite).

Two halves: broken specs must be *detected* (each validator check fires
on a minimal counterexample), and every registered spec must validate
clean against its implementing class — the same gate
``scripts/protocol_lint.py`` runs in CI.
"""

import pytest

from repro.coherence.registry import (
    available_protocols,
    protocol_class,
    protocol_spec,
)
from repro.coherence.spec import (
    BUILTIN_ACTIONS,
    ProtocolSpec,
    Row,
    TransitionTable,
)
from repro.common.types import CoherenceState


def tiny_spec(rows, states=("I", "V"), events=("load",), impossible=(),
              **kwargs):
    return ProtocolSpec(
        name="tiny",
        states=states,
        tables=(
            TransitionTable(
                role="cache", events=events, rows=tuple(rows),
                impossible=tuple(impossible),
            ),
        ),
        **kwargs,
    )


def codes(spec, handler_cls=None):
    return {issue.code for issue in spec.validate(handler_cls)}


class TestValidatorDetectsBrokenSpecs:
    def test_clean_tiny_spec_has_no_issues(self):
        spec = tiny_spec([
            Row("I", "load", "V", ("miss",)),
            Row("V", "load", "V", ("silent",)),
        ])
        assert spec.validate() == []

    def test_missing_row_detected(self):
        spec = tiny_spec([Row("I", "load", "V", ("miss",))])
        assert codes(spec) == {"missing-row"}

    def test_impossible_declaration_silences_missing_row(self):
        spec = tiny_spec(
            [Row("I", "load", "V", ("miss",))],
            impossible=(("V", "load"),),
        )
        assert spec.validate() == []

    def test_duplicate_row_detected(self):
        row = Row("I", "load", "V", ("miss",))
        spec = tiny_spec([row, row], impossible=(("V", "load"),))
        assert codes(spec) == {"duplicate-row"}

    def test_guard_disambiguates_rows(self):
        spec = tiny_spec(
            [
                Row("I", "load", "V", ("miss",), guard="warm"),
                Row("I", "load", "I", ("stall",), guard="cold"),
                Row("V", "load", "V", ("silent",)),
            ],
        )
        assert spec.validate() == []

    def test_unknown_state_detected(self):
        spec = tiny_spec(
            [
                Row("I", "load", "V", ("miss",), guard="warm"),
                Row("I", "load", "X", ("miss",), guard="cold"),
                Row("V", "load", "V", ("silent",)),
            ],
        )
        assert codes(spec) == {"unknown-state"}

    def test_unknown_event_detected(self):
        spec = tiny_spec(
            [
                Row("I", "load", "V", ("miss",)),
                Row("V", "load", "V", ("silent",)),
                Row("V", "snoop", "I", ()),
            ],
        )
        assert codes(spec) == {"unknown-event"}

    def test_unknown_initial_and_ward_states_detected(self):
        spec = tiny_spec(
            [
                Row("I", "load", "V", ("miss",)),
                Row("V", "load", "V", ("silent",)),
            ],
            initial="Q",
            ward_states=("Z",),
        )
        assert "unknown-state" in codes(spec)

    def test_unreachable_state_detected(self):
        spec = tiny_spec(
            [
                Row("I", "load", "I", ("stall",)),
                Row("V", "load", "V", ("silent",)),
            ],
        )
        assert codes(spec) == {"unreachable-state"}

    def test_unknown_action_requires_handler_class(self):
        spec = tiny_spec(
            [
                Row("I", "load", "V", ("summon_data",)),
                Row("V", "load", "V", ("silent",)),
            ],
        )
        # Without a class the action is just a name; with one it must
        # resolve (directly or through the handlers map) to a method.
        assert spec.validate() == []
        assert codes(spec, handler_cls=object) == {"unknown-action"}

    def test_handlers_map_resolves_actions(self):
        class Impl:
            def fetch_it(self):
                pass

        spec = tiny_spec(
            [
                Row("I", "load", "V", ("summon_data",)),
                Row("V", "load", "V", ("silent",)),
            ],
            handlers={"summon_data": "fetch_it"},
        )
        assert spec.validate(handler_cls=Impl) == []


class TestRegisteredSpecs:
    @pytest.mark.parametrize("key", available_protocols())
    def test_spec_validates_clean_against_its_class(self, key):
        issues = protocol_spec(key).validate(protocol_class(key))
        assert not issues, "\n".join(str(i) for i in issues)

    @pytest.mark.parametrize("key", available_protocols())
    def test_class_carries_compiled_fast_path(self, key):
        cls = protocol_class(key)
        for attr in ("_silent_write", "_silent_next", "_upgrade_states",
                     "_ward_states"):
            assert hasattr(cls, attr), f"{key} missing {attr}"
        assert cls.SPEC is protocol_spec(key)

    def test_compiled_sets_match_protocol_semantics(self):
        S = CoherenceState
        mesi = protocol_class("mesi")
        assert mesi._silent_write == {S.EXCLUSIVE, S.MODIFIED}
        assert mesi._silent_next == {S.EXCLUSIVE: S.MODIFIED}
        assert mesi._upgrade_states == {S.SHARED}
        assert mesi._ward_states == frozenset()

        moesi = protocol_class("moesi")
        assert moesi._silent_write == {S.EXCLUSIVE, S.MODIFIED}
        assert moesi._upgrade_states == {S.OWNED, S.SHARED}

        warden = protocol_class("warden")
        assert warden._silent_write == {S.EXCLUSIVE, S.MODIFIED, S.WARD}
        assert warden._ward_states == {S.WARD}

        sisd = protocol_class("sisd")
        assert sisd._silent_write == {S.SHARED, S.MODIFIED, S.WARD}
        assert sisd._silent_next == {S.SHARED: S.MODIFIED}
        assert sisd._upgrade_states == frozenset()

    def test_registry_is_deterministic_and_complete(self):
        assert available_protocols() == ["mesi", "moesi", "sisd", "warden"]
        assert protocol_class("WARDen") is protocol_class("warden")
        with pytest.raises(KeyError):
            protocol_class("mosi")

    def test_builtin_actions_never_shadow_handlers(self):
        for key in available_protocols():
            spec = protocol_spec(key)
            assert not BUILTIN_ACTIONS & set(spec.handlers)
