"""Runtime tests: fork/join semantics, heap lifecycle, WARD marking,
disentanglement enforcement."""

import pytest

from repro.common.errors import DisentanglementError
from repro.hlpl.policy import MarkingPolicy
from repro.hlpl.runtime import CLOSURE_WORDS, Runtime
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp
from tests.conftest import tiny_config


def run(root_fn, *args, protocol="mesi", policy=MarkingPolicy.FULL, **rt_kwargs):
    machine = Machine(tiny_config(), protocol)
    rt = Runtime(machine, policy=policy, **rt_kwargs)
    result, stats = rt.run(root_fn, *args)
    machine.protocol.check_invariants()
    return result, stats, rt


class TestForkJoin:
    def test_root_result_returned(self):
        def root(ctx):
            yield ComputeOp(1)
            return "done"

        result, _, _ = run(root)
        assert result == "done"

    def test_child_heaps_merge_into_parent(self):
        heaps = {}

        def child(ctx):
            arr = yield from ctx.alloc_array(4, fill=0)
            heaps["child_heap"] = arr.heap
            return arr

        def root(ctx):
            heaps["root_task"] = ctx.task
            (arr,) = yield from ctx.par(child)
            # after the join the child's data belongs to the root's heap
            value = yield from arr.get(0)
            return value

        result, _, _ = run(root)
        assert result == 0
        assert heaps["child_heap"].live_owner is heaps["root_task"]

    def test_join_waits_for_all_children(self):
        done = []

        def child(k):
            def body(ctx):
                yield ComputeOp(10 * (k + 1))
                done.append(k)
                return k
            return body

        def root(ctx):
            results = yield from ctx.par(*[child(k) for k in range(5)])
            assert sorted(done) == list(range(5))
            return results

        result, _, _ = run(root)
        assert result == list(range(5))

    def test_closure_traffic_generated(self):
        def root(ctx):
            yield from ctx.par(lambda c: c.value(1), lambda c: c.value(2))
            return None

        _, stats, _ = run(root)
        # parent writes CLOSURE_WORDS per child; each child reads them back
        assert stats.cores.stores >= 2 * CLOSURE_WORDS
        assert stats.cores.loads >= 2 * CLOSURE_WORDS

    def test_join_counter_uses_atomics(self):
        def root(ctx):
            yield from ctx.par(lambda c: c.value(1), lambda c: c.value(2))
            return None

        _, stats, _ = run(root)
        assert stats.cores.rmws >= 2  # one decrement per child

    def test_join_records_recycled(self):
        def root(ctx):
            for _ in range(5):
                yield from ctx.par(lambda c: c.value(1), lambda c: c.value(2))
            return None

        _, _, rt = run(root)
        pools = rt._counter_pool
        assert sum(len(v) for v in pools.values()) == 1  # reused, not leaked


class TestWardMarking:
    def test_pages_marked_and_unmarked(self):
        def root(ctx):
            arr = yield from ctx.alloc_array(8, fill=0)
            yield from ctx.par(lambda c: c.value(1), lambda c: c.value(2))
            return None

        _, stats, _ = run(root, protocol="warden")
        coh = stats.coherence
        assert coh.ward_region_adds > 0
        # every add is eventually matched by a remove at a fork or join
        assert coh.ward_region_removes <= coh.ward_region_adds

    def test_policy_none_marks_nothing(self):
        def root(ctx):
            arr = yield from ctx.tabulate(16, lambda c, i: c.value(i), grain=4)
            return arr.to_list()

        _, stats, _ = run(root, protocol="warden", policy=MarkingPolicy.NONE)
        assert stats.coherence.ward_region_adds == 0
        assert stats.coherence.ward_accesses == 0

    def test_leaf_pages_policy_skips_constructs(self):
        def root(ctx):
            arr = yield from ctx.tabulate(16, lambda c, i: c.value(i), grain=4)
            return arr.to_list()

        _, full_stats, _ = run(root, protocol="warden", policy=MarkingPolicy.FULL)
        _, leaf_stats, _ = run(
            root, protocol="warden", policy=MarkingPolicy.LEAF_PAGES
        )
        assert leaf_stats.coherence.ward_region_adds < full_stats.coherence.ward_region_adds

    def test_mesi_machine_never_registers_regions(self):
        def root(ctx):
            arr = yield from ctx.tabulate(16, lambda c, i: c.value(i), grain=4)
            return None

        _, stats, _ = run(root, protocol="mesi")
        assert stats.coherence.ward_region_adds == 0

    def test_no_active_regions_after_run(self):
        def root(ctx):
            arr = yield from ctx.tabulate(64, lambda c, i: c.value(i), grain=8)
            total = yield from ctx.reduce(
                0, 64, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        machine = Machine(tiny_config(), "warden")
        rt = Runtime(machine)
        result, stats = rt.run(root)
        assert result == sum(range(64))
        # every construct region was closed; any region still active must be
        # a leaf page of a live heap (marked, never unmarked by a fork)
        active = machine.protocol.region_table.active_regions()
        assert (
            stats.coherence.ward_region_removes
            == stats.coherence.ward_region_adds - len(active)
        )


class TestDisentanglement:
    def test_sibling_access_rejected(self):
        leaked = {}

        def writer(ctx):
            arr = yield from ctx.alloc_array(4, fill=0)
            leaked["arr"] = arr
            yield ComputeOp(200)  # stay alive while the sibling misbehaves
            return None

        def reader(ctx):
            yield ComputeOp(1)
            value = yield from leaked["arr"].get(0)  # sibling's heap!
            return value

        def root(ctx):
            yield from ctx.par(writer, reader)
            return None

        with pytest.raises(DisentanglementError):
            run(root)

    def test_ancestor_access_allowed(self):
        def root(ctx):
            arr = yield from ctx.alloc_array(4, fill=7)

            def child(c):
                value = yield from arr.get(0)  # ancestor heap: legal
                return value

            results = yield from ctx.par(child, child)
            return results

        result, _, _ = run(root)
        assert result == [7, 7]

    def test_check_can_be_disabled(self):
        leaked = {}

        def writer(ctx):
            arr = yield from ctx.alloc_array(4, fill=0)
            leaked["arr"] = arr
            yield ComputeOp(200)
            return None

        def reader(ctx):
            yield ComputeOp(1)
            value = yield from leaked["arr"].get(0)
            return value

        def root(ctx):
            yield from ctx.par(writer, reader)
            return "survived"

        result, _, _ = run(root, check_disentanglement=False)
        assert result == "survived"


class TestDeterminism:
    def test_same_seed_same_cycles(self):
        def root(ctx):
            arr = yield from ctx.tabulate(64, lambda c, i: c.value(i), grain=8)
            total = yield from ctx.reduce(
                0, 64, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        cycles = []
        for _ in range(2):
            machine = Machine(tiny_config(), "warden")
            rt = Runtime(machine, seed=5)
            _, stats = rt.run(root)
            cycles.append(stats.cycles)
        assert cycles[0] == cycles[1]

    def test_different_seed_perturbs_schedule(self):
        def root(ctx):
            arr = yield from ctx.tabulate(128, lambda c, i: c.value(i), grain=8)
            total = yield from ctx.reduce(
                0, 128, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        results = set()
        for seed in range(4):
            machine = Machine(tiny_config(), "warden")
            rt = Runtime(machine, seed=seed)
            result, stats = rt.run(root)
            assert result == sum(range(128))
            results.add(stats.cycles)
        assert len(results) > 1  # schedules actually differ
