"""Statistics container tests."""

import pytest

from repro.common.stats import CoherenceStats, CoreStats, EnergyStats, RunStats
from repro.common.types import MessageType


class TestCoherenceStats:
    def test_message_counting_by_link(self):
        s = CoherenceStats()
        s.count_message(MessageType.GET_S, "intra")
        s.count_message(MessageType.GET_S, "intra", 2)
        s.count_message(MessageType.DATA, "socket")
        assert s.total_messages == 4
        assert s.messages_by_link() == {"intra": 3, "socket": 1}

    def test_data_message_count(self):
        s = CoherenceStats()
        s.count_message(MessageType.DATA, "intra", 3)
        s.count_message(MessageType.INV, "intra", 5)
        assert s.data_message_count() == 3

    def test_ward_coverage(self):
        s = CoherenceStats()
        assert s.ward_coverage == 0.0
        s.total_accesses = 10
        s.ward_accesses = 4
        assert s.ward_coverage == pytest.approx(0.4)

    def test_merge_accumulates(self):
        a, b = CoherenceStats(), CoherenceStats()
        a.invalidations = 2
        b.invalidations = 3
        b.downgrades = 1
        b.count_message(MessageType.INV, "intra")
        a.merge(b)
        assert a.invalidations == 5
        assert a.downgrades == 1
        assert a.total_messages == 1


class TestCoreStats:
    def test_instruction_total(self):
        s = CoreStats(loads=1, stores=2, rmws=3, compute_instrs=4)
        assert s.instructions == 10

    def test_merge(self):
        a = CoreStats(loads=1, spin_loads=1)
        b = CoreStats(loads=2, steal_attempts=5, successful_steals=1)
        a.merge(b)
        assert a.loads == 3
        assert a.steal_attempts == 5
        assert a.spin_loads == 1


class TestEnergyStats:
    def test_processor_sums_all_components(self):
        e = EnergyStats(cache_nj=1, dram_nj=2, network_nj=3,
                        core_dynamic_nj=4, core_static_nj=5)
        assert e.processor_nj == 15
        assert e.interconnect_nj == 3


class TestRunStats:
    def test_ipc(self):
        s = RunStats(num_threads=4)
        s.cycles = 100
        s.cores.compute_instrs = 200
        assert s.ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert RunStats().ipc == 0.0

    def test_inv_dg_per_kilo_instr(self):
        s = RunStats()
        s.cores.compute_instrs = 2000
        s.coherence.invalidations = 6
        s.coherence.downgrades = 4
        assert s.inv_dg_per_kilo_instr() == pytest.approx(5.0)

    def test_inv_dg_zero_instructions(self):
        assert RunStats().inv_dg_per_kilo_instr() == 0.0


class TestSerialization:
    def _populated(self) -> RunStats:
        s = RunStats(benchmark="fib", protocol="warden", machine="dual",
                     cycles=1234, num_threads=8)
        s.coherence.invalidations = 7
        s.coherence.downgrades = 3
        s.coherence.total_accesses = 100
        s.coherence.ward_accesses = 40
        s.coherence.count_message(MessageType.GET_S, "intra", 5)
        s.coherence.count_message(MessageType.DATA, "socket", 2)
        s.cores.loads = 50
        s.cores.stores = 25
        s.cores.steal_attempts = 4
        s.energy.cache_nj = 10.5
        s.energy.network_nj = 2.5
        return s

    def test_coherence_round_trip(self):
        s = self._populated().coherence
        back = CoherenceStats.from_dict(s.to_dict())
        assert back.to_dict() == s.to_dict()
        assert back.messages == s.messages
        assert back.invalidations == 7

    def test_core_and_energy_round_trip(self):
        s = self._populated()
        assert CoreStats.from_dict(s.cores.to_dict()) == s.cores
        assert EnergyStats.from_dict(s.energy.to_dict()) == s.energy

    def test_run_stats_round_trip(self):
        s = self._populated()
        d = s.to_dict()
        back = RunStats.from_dict(d)
        assert back.to_dict() == d
        assert back.cycles == 1234
        assert back.coherence.ward_coverage == pytest.approx(0.4)

    def test_to_dict_is_json_safe(self):
        import json

        d = self._populated().to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["derived"]["inv_plus_downgrades"] == 10
        assert d["coherence"]["messages"] == {
            "Data|socket": 2, "GetS|intra": 5,
        }

    def test_from_dict_ignores_unknown_fields(self):
        back = CoreStats.from_dict({"loads": 3, "not_a_field": 9})
        assert back.loads == 3
