"""Engine tests: pinned strands, min-clock ordering, completion handling."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import AccessType
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp, ForkOp, LoadOp, StoreOp
from tests.conftest import tiny_config


@pytest.fixture
def machine():
    return Machine(tiny_config(), "mesi")


@pytest.fixture
def engine(machine):
    return Engine(machine)


class TestPinnedMode:
    def test_runs_to_completion(self, engine, machine):
        def kern():
            yield ComputeOp(10)
            yield ComputeOp(5)

        engine.pin(0, kern())
        engine.run()
        assert machine.cores[0].clock == 15

    def test_collects_return_value(self, engine):
        results = []

        def kern():
            yield ComputeOp(1)
            return 42

        engine.pin(0, kern(), on_done=lambda v, w: results.append(v))
        engine.run()
        assert results == [42]

    def test_double_pin_rejected(self, engine):
        engine.pin(0, iter(()))
        with pytest.raises(SimulationError):
            engine.pin(0, iter(()))

    def test_min_clock_interleaving(self, engine, machine):
        order = []

        def kern(tag, cost):
            for _ in range(3):
                order.append((tag, machine.cores[0 if tag == "a" else 1].clock))
                yield ComputeOp(cost)

        engine.pin(0, kern("a", 10))
        engine.pin(1, kern("b", 100))
        engine.run()
        # thread a (cheap ops) runs several steps while b's clock is ahead
        clocks = [c for _, c in order]
        assert sorted(clocks) == clocks  # global time order never reverses

    def test_memory_ops_return_latency(self, engine, machine):
        seen = []

        def kern():
            a = machine.sbrk(64)
            lat = yield LoadOp(a, 8)
            seen.append(lat)
            lat = yield StoreOp(a, 8)
            seen.append(lat)

        engine.pin(0, kern())
        engine.run()
        assert seen[0] > machine.config.l1.latency  # cold miss
        assert seen[1] == machine.config.l1.latency  # hit after the load


class TestGuards:
    def test_max_steps_guard(self, engine):
        def forever():
            while True:
                yield ComputeOp(1)

        engine.pin(0, forever())
        engine.max_steps = 100
        with pytest.raises(SimulationError):
            engine.run()

    def test_fork_without_handler_rejected(self, engine):
        def kern():
            yield ForkOp(None, [])

        engine.pin(0, kern())
        with pytest.raises(SimulationError):
            engine.run()

    def test_unknown_op_rejected(self, engine):
        def kern():
            yield "bogus"

        engine.pin(0, kern())
        with pytest.raises(SimulationError):
            engine.run()


class TestHooks:
    def test_access_hook_sees_every_memory_op(self, engine, machine):
        seen = []
        engine.access_hook = lambda w, op, atype: seen.append(atype)

        def kern():
            a = machine.sbrk(64)
            yield LoadOp(a, 8)
            yield StoreOp(a, 8)
            yield ComputeOp(1)

        engine.pin(0, kern())
        engine.run()
        assert seen == [AccessType.LOAD, AccessType.STORE]

    def test_current_worker_tracked(self, engine, machine):
        observed = []

        def kern():
            observed.append(engine.current_worker.thread)
            yield ComputeOp(1)

        engine.pin(2, kern())
        engine.run()
        assert observed == [2]
