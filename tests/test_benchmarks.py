"""Benchmark suite tests: every kernel computes the reference answer under
both protocols, satisfies the WARD property dynamically, and leaves the
protocol in a consistent state."""

import pytest

from repro.analysis.run import run_benchmark
from repro.bench import BENCHMARKS, DISAGGREGATED_SUBSET, PAPER_ORDER
from repro.common.config import dual_socket
from tests.conftest import tiny_config

ALL = sorted(BENCHMARKS)


class TestRegistry:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARKS) == 14

    def test_paper_order_complete(self):
        assert sorted(PAPER_ORDER) == ALL

    def test_disaggregated_subset_matches_fig12(self):
        assert DISAGGREGATED_SUBSET == ["dmm", "grep", "nn", "palindrome"]

    @pytest.mark.parametrize("name", ALL)
    def test_every_benchmark_has_all_sizes(self, name):
        bench = BENCHMARKS[name]
        for size in ("test", "small", "default"):
            assert bench.scale(size) > 0
        assert bench.scale("test") <= bench.scale("default")

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            BENCHMARKS["fib"].scale("gigantic")

    @pytest.mark.parametrize("name", ALL)
    def test_workloads_are_deterministic(self, name):
        bench = BENCHMARKS[name]
        assert bench.workload("test", seed=1) == bench.workload("test", seed=1)


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("protocol", ["mesi", "warden"])
class TestCorrectness:
    def test_matches_reference(self, name, protocol):
        # run_benchmark raises ResultMismatchError on any deviation and
        # (for warden) runs the dynamic WARD checker
        result = run_benchmark(
            name,
            protocol,
            dual_socket(),
            size="test",
            check_ward=(protocol == "warden"),
            use_cache=False,
        )
        assert result.stats.cycles > 0
        assert result.stats.instructions > 0


@pytest.mark.parametrize("name", ALL)
def test_benchmarks_run_on_tiny_machines(name):
    """The kernels are machine-agnostic: a 2x2 machine with tiny caches
    (heavy evictions) still computes the right answer under WARDen."""
    result = run_benchmark(
        name, "warden", tiny_config(), size="test", check_ward=True,
        use_cache=False,
    )
    assert result.stats.cycles > 0


@pytest.mark.parametrize("name", ALL)
def test_warden_reduces_or_matches_coherence_events(name):
    """WARDen never *adds* invalidations+downgrades on the paper machine."""
    mesi = run_benchmark(name, "mesi", dual_socket(), size="test", use_cache=False)
    warden = run_benchmark(name, "warden", dual_socket(), size="test", use_cache=False)
    m = mesi.stats.coherence.invalidations + mesi.stats.coherence.downgrades
    w = warden.stats.coherence.invalidations + warden.stats.coherence.downgrades
    # small slack: scheduler timing differs slightly between the two runs
    assert w <= m * 1.15 + 20


class TestWardActivity:
    @pytest.mark.parametrize("name", ["primes", "msort", "make_array", "grep"])
    def test_warden_actually_exercises_regions(self, name):
        result = run_benchmark(
            name, "warden", dual_socket(), size="test", use_cache=False
        )
        coh = result.stats.coherence
        assert coh.ward_region_adds > 0
        assert coh.ward_accesses > 0

    def test_primes_has_benign_waw_races(self):
        """The paper's flagship example: flags carries true cross-thread
        WAWs (same value) that the checker observes without violations."""
        from repro.bench import BENCHMARKS
        from repro.hlpl.runtime import Runtime
        from repro.sim.machine import Machine
        from repro.verify.ward_checker import WardChecker

        bench = BENCHMARKS["primes"]
        machine = Machine(dual_socket(), "warden")
        checker = WardChecker(region_table=machine.protocol.region_table)
        rt = Runtime(machine, access_monitor=checker)
        result, _ = rt.run(bench.root_task, bench.workload("small"))
        assert result == bench.reference(bench.workload("small"))
        assert checker.clean
        # the benign cross-thread write-write races really happened
        assert checker.waw_events > 0
