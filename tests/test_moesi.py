"""MOESI protocol tests: the O state — dirty sharing without writebacks.

The O(wned) state lets a modified line be shared directly cache-to-cache:
the writer keeps the dirty data (M -> O) and sources it to readers, so a
read of a hot modified line costs neither an invalidation nor a memory
writeback.  Writebacks happen only when the owner finally evicts.
"""

import pytest

from repro.common.types import AccessType, CoherenceState
from repro.sim.machine import Machine
from tests.conftest import tiny_config

LOAD = AccessType.LOAD
STORE = AccessType.STORE
RMW = AccessType.RMW
I = CoherenceState.INVALID
S = CoherenceState.SHARED
O = CoherenceState.OWNED
E = CoherenceState.EXCLUSIVE
M = CoherenceState.MODIFIED


@pytest.fixture
def m():
    return Machine(tiny_config(), "moesi")


def priv(machine, core, addr):
    return machine.protocol.private_block(core, addr)


def entry(machine, addr):
    return machine.protocol.dir_entry(addr)


def dirty_line(machine, addr=None, core=0):
    """Put one block in M on ``core`` (store on an uncached address)."""
    if addr is None:
        addr = machine.sbrk(64, 64)
    machine.access(core, addr, 8, STORE)
    assert priv(machine, core, addr).state is M
    return addr


class TestOwnedEntry:
    def test_read_of_modified_line_enters_owned(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        assert priv(m, 0, a).state is O
        assert priv(m, 1, a).state is S
        e = entry(m, a)
        assert e.state is O
        assert e.owner == 0 and e.sharers == {1}
        m.protocol.check_invariants()

    def test_dirty_share_costs_no_writeback(self, m):
        a = dirty_line(m, core=0)
        wb0 = m.run_stats.coherence.writebacks
        m.access(1, a, 8, LOAD)
        assert m.run_stats.coherence.writebacks == wb0
        assert m.run_stats.coherence.extra["dirty_shares"] == 1

    def test_owner_keeps_written_mask_through_downgrade(self, m):
        a = dirty_line(m, core=0)
        mask = priv(m, 0, a).written_mask
        assert mask
        m.access(1, a, 8, LOAD)
        assert priv(m, 0, a).written_mask == mask

    def test_further_readers_source_from_owner(self, m):
        a = dirty_line(m, core=0)
        for core in (1, 2, 3):
            m.access(core, a, 8, LOAD)
            assert priv(m, core, a).state is S
        e = entry(m, a)
        assert e.state is O and e.owner == 0
        assert e.sharers == {1, 2, 3}
        m.protocol.check_invariants()

    def test_under_mesi_the_same_pattern_writes_back(self):
        # The contrast MOESI exists for: MESI downgrades M -> S with a
        # writeback, MOESI keeps the line dirty in the owner's cache.
        mesi, moesi = (
            Machine(tiny_config(), p) for p in ("mesi", "moesi")
        )
        for mm in (mesi, moesi):
            a = dirty_line(mm, core=0)
            mm.access(1, a, 8, LOAD)
        assert mesi.run_stats.coherence.writebacks == 1
        assert moesi.run_stats.coherence.writebacks == 0


class TestOwnedStores:
    def test_owner_store_upgrades_back_to_m(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        inv0 = m.run_stats.coherence.invalidations
        m.access(0, a, 8, STORE)
        assert priv(m, 0, a).state is M
        assert priv(m, 1, a) is None or priv(m, 1, a).state is I
        e = entry(m, a)
        assert e.state is M and e.owner == 0 and not e.sharers
        assert m.run_stats.coherence.invalidations == inv0 + 1
        m.protocol.check_invariants()

    def test_sharer_store_takes_dirty_data_from_owner(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        m.access(1, a, 8, STORE)  # sharer upgrades: owner must die dirty-free
        assert priv(m, 1, a).state is M
        assert priv(m, 0, a) is None or priv(m, 0, a).state is I
        e = entry(m, a)
        assert e.state is M and e.owner == 1
        m.protocol.check_invariants()

    def test_third_party_store_invalidates_owner_and_sharers(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        m.access(2, a, 8, STORE)
        assert priv(m, 2, a).state is M
        for core in (0, 1):
            assert priv(m, core, a) is None or priv(m, core, a).state is I
        e = entry(m, a)
        assert e.state is M and e.owner == 2 and not e.sharers
        m.protocol.check_invariants()

    def test_rmw_on_owned_line_serializes_like_a_store(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        m.access(1, a, 8, RMW)
        e = entry(m, a)
        assert e.state is M and e.owner == 1
        m.protocol.check_invariants()


class TestOwnedEviction:
    def test_owner_eviction_finally_writes_back(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        wb0 = m.run_stats.coherence.writebacks
        m.protocol._evict_private(0, priv(m, 0, a))
        assert m.run_stats.coherence.writebacks == wb0 + 1
        e = entry(m, a)
        assert e.state is S and e.owner is None and e.sharers == {1}
        m.protocol.check_invariants()

    def test_owner_eviction_with_no_sharers_goes_invalid(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        m.protocol._evict_private(1, priv(m, 1, a))  # sharer leaves first
        m.protocol._evict_private(0, priv(m, 0, a))
        assert entry(m, a).state is I
        m.protocol.check_invariants()

    def test_sharer_eviction_keeps_owner_entry(self, m):
        a = dirty_line(m, core=0)
        m.access(1, a, 8, LOAD)
        m.protocol._evict_private(1, priv(m, 1, a))
        e = entry(m, a)
        assert e.state is O and e.owner == 0 and not e.sharers
        assert priv(m, 0, a).state is O
        m.protocol.check_invariants()


class TestPlainMESIBehaviourPreserved:
    def test_private_lines_still_use_e_and_m(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        assert priv(m, 0, a).state is E
        m.access(0, a, 8, STORE)  # silent E -> M
        assert priv(m, 0, a).state is M
        assert entry(m, a).state is E  # silent upgrade: dir still E

    def test_clean_sharing_never_creates_owned(self, m):
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        m.access(1, a, 8, LOAD)
        e = entry(m, a)
        assert e.state is S and e.owner is None
        assert not m.run_stats.coherence.extra.get("dirty_shares")

    def test_silently_upgraded_line_stays_on_mesi_path(self, m):
        # Private M behind a directory-E entry: a remote load must take
        # MESI's forward path (writeback + S), not manufacture an O entry
        # the directory never granted.
        a = m.sbrk(64, 64)
        m.access(0, a, 8, LOAD)
        m.access(0, a, 8, STORE)
        assert entry(m, a).state is E and priv(m, 0, a).state is M
        wb0 = m.run_stats.coherence.writebacks
        m.access(1, a, 8, LOAD)
        assert m.run_stats.coherence.writebacks == wb0 + 1
        assert entry(m, a).state is S
        assert priv(m, 0, a).state is S
        m.protocol.check_invariants()
