"""Shared fixtures: small machines so protocol tests stay fast."""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.sim.machine import Machine


def tiny_config(num_sockets: int = 2, cores_per_socket: int = 2) -> MachineConfig:
    """A small machine (tiny caches force evictions in protocol tests)."""
    return MachineConfig(
        name=f"tiny-{num_sockets}x{cores_per_socket}",
        num_sockets=num_sockets,
        cores_per_socket=cores_per_socket,
        l1=CacheConfig(1024, 2, 64, latency=6),
        l2=CacheConfig(4096, 4, 64, latency=16),
        l3=CacheConfig(16384, 4, 64, latency=71),
    )


@pytest.fixture
def config():
    return tiny_config()


@pytest.fixture
def mesi(config):
    return Machine(config, "mesi")


@pytest.fixture
def warden(config):
    return Machine(config, "warden")


@pytest.fixture(params=["mesi", "warden"])
def machine(request, config):
    return Machine(config, request.param)
